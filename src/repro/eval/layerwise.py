"""Figure 5 — in-vivo vs ex-vivo privacy across cutting points.

For each candidate conv cut (SVHN: conv 0/2/4/6, LeNet: conv 0/1/2) and
each in-vivo noise level, measure the ex-vivo privacy (1/MI) of the noisy
activation.  The paper's observation: deeper layers start from higher
ex-vivo privacy (less MI to begin with), and the *proportional* information
loss for matched in-vivo noise is consistent across layers (similar slopes
in Figure 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import Config
from repro.core import (
    NoiseCollection,
    SplitInferenceModel,
    materialize_activations_cached,
)
from repro.eval.experiments import build_pipeline, load_benchmark
from repro.eval.reporting import format_table
from repro.privacy import estimate_leakage, mi_to_ex_vivo_privacy

#: The cuts the paper probes per network.
PAPER_CUTS = {"svhn": ("conv0", "conv2", "conv4", "conv6"), "lenet": ("conv0", "conv1", "conv2")}


@dataclass(frozen=True)
class LayerPrivacyPoint:
    """One (cut, noise level) measurement.

    Attributes:
        cut: Cutting-point name.
        in_vivo: Noise level (1/SNR) actually realised.
        ex_vivo: 1/MI of the noisy activation.
        mi_bits: The underlying MI estimate.
    """

    cut: str
    in_vivo: float
    ex_vivo: float
    mi_bits: float


@dataclass
class LayerwiseResult:
    """The Figure 5 panel for one network."""

    benchmark: str
    baseline_mi: dict[str, float]
    points: list[LayerPrivacyPoint]

    def series(self, cut: str) -> list[LayerPrivacyPoint]:
        return sorted(
            (p for p in self.points if p.cut == cut), key=lambda p: p.in_vivo
        )

    def information_loss_fraction(self, point: LayerPrivacyPoint) -> float:
        """Fractional MI loss of one measurement vs its cut's baseline."""
        baseline = self.baseline_mi[point.cut]
        return (baseline - point.mi_bits) / baseline if baseline > 0 else 0.0

    def format(self) -> str:
        rows = [
            (
                p.cut,
                f"{p.in_vivo:.3g}",
                f"{p.ex_vivo:.4g}",
                f"{p.mi_bits:.3f}",
                f"{100 * self.information_loss_fraction(p):.1f}",
            )
            for p in sorted(self.points, key=lambda p: (p.cut, p.in_vivo))
        ]
        return format_table(
            ["cut", "in vivo (1/SNR)", "ex vivo (1/MI)", "MI (bits)", "info loss (%)"],
            rows,
            title=f"Figure 5 ({self.benchmark}): in vivo vs ex vivo privacy per layer",
        )


#: Noise levels swept per cut (in-vivo privacy 1/SNR).
DEFAULT_LEVELS = (0.2, 0.6, 1.0)


def run_layerwise(
    benchmark_name: str,
    config: Config,
    cuts: tuple[str, ...] | None = None,
    levels: tuple[float, ...] = DEFAULT_LEVELS,
    trained: bool = True,
    iterations: int | None = None,
    n_members: int = 2,
    verbose: bool = False,
) -> LayerwiseResult:
    """Measure the Figure 5 points for one network.

    Args:
        benchmark_name: ``svhn`` or ``lenet`` for the paper's panels (any
            registered network works).
        config: Seed/scale configuration.
        cuts: Cut subset; defaults to the paper's choices.
        levels: In-vivo privacy levels to probe.
        trained: Train noise at each (cut, level) with decay-on-target
            (paper behaviour).  ``False`` skips training and injects fresh
            Laplace noise of matched variance — much faster, identical
            in-vivo level, used by quick checks.
        iterations: Noise-training iterations when ``trained``.
        n_members: Collection size per point when ``trained``.
    """
    bundle, benchmark = load_benchmark(benchmark_name, config, verbose=verbose)
    if cuts is None:
        cuts = PAPER_CUTS.get(benchmark_name, tuple(bundle.model.cut_names()))
    iters = iterations or config.scale.noise_iterations
    scale = config.scale
    rng = np.random.default_rng(config.child_seed("layerwise"))

    baseline_mi: dict[str, float] = {}
    points: list[LayerPrivacyPoint] = []
    for cut in cuts:
        split = SplitInferenceModel(bundle.model, cut)
        # Cached: trained pipelines below re-materialise the same cut.
        activations, _ = materialize_activations_cached(split, bundle.test_set)
        images = bundle.test_set.images
        baseline = estimate_leakage(
            images,
            activations,
            n_components=scale.mi_components,
            max_samples=scale.mi_samples,
            rng=np.random.default_rng(config.child_seed("mi", cut)),
        ).mi_bits
        baseline_mi[cut] = baseline
        power = float(np.mean(np.square(activations, dtype=np.float64)))
        for level in levels:
            if trained:
                pipeline = build_pipeline(
                    bundle, benchmark, config, cut=cut, target_in_vivo=level
                )
                collection = pipeline.collect(n_members, iters)
                noisy = activations + collection.sample_batch(rng, len(activations))
                realised = collection.mean_in_vivo_privacy()
            else:
                b = math.sqrt(level * power / 2.0)
                noise = rng.laplace(0.0, b, size=activations.shape).astype(np.float32)
                noisy = activations + noise
                realised = float(noise.var()) / power
            mi = estimate_leakage(
                images,
                noisy,
                n_components=scale.mi_components,
                max_samples=scale.mi_samples,
                rng=np.random.default_rng(config.child_seed("mi", cut, level)),
            ).mi_bits
            points.append(
                LayerPrivacyPoint(
                    cut=cut,
                    in_vivo=realised,
                    ex_vivo=mi_to_ex_vivo_privacy(mi),
                    mi_bits=mi,
                )
            )
            if verbose:
                print(f"{cut} level={level:g}: MI {baseline:.3f} -> {mi:.3f} bits")
    return LayerwiseResult(
        benchmark=benchmark_name, baseline_mi=baseline_mi, points=points
    )
