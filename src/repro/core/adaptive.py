"""Adaptive operating-point search on the accuracy/privacy knob.

The paper exposes λ and the Laplace init as manually tuned knobs ("it
should be tuned carefully for each network", §2.4).  This extension
automates the outer loop: :class:`OperatingPointSearch` bisection-searches
the noise level (target in-vivo privacy) for the most private operating
point whose accuracy loss stays within a user budget — the quantity a
deployment actually specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.trainer import NoiseTrainingResult
from repro.errors import ConfigurationError, TrainingError


@dataclass(frozen=True)
class SearchProbe:
    """One evaluated noise level during the search."""

    level: float
    accuracy_loss_percent: float
    in_vivo_privacy: float


@dataclass
class SearchResult:
    """Outcome of an operating-point search.

    Attributes:
        best: The most private probe within the accuracy budget (None when
            even the lowest level violates the budget).
        probes: Every evaluated level, in evaluation order.
    """

    best: SearchProbe | None
    probes: list[SearchProbe] = field(default_factory=list)


class OperatingPointSearch:
    """Bisection search over noise levels under an accuracy-loss budget.

    Args:
        evaluate: Maps a noise level (target in-vivo privacy) to
            ``(accuracy_loss_percent, realised_in_vivo)`` — typically a
            closure that builds a pipeline, trains a small collection, and
            measures.  Accuracy loss is assumed monotone (noisier = worse),
            which holds on average for Shredder-trained noise.
        max_accuracy_loss_percent: The deployment's accuracy budget.
        low / high: Search bracket for the noise level.
        iterations: Bisection steps (each costs one noise training).
    """

    def __init__(
        self,
        evaluate: Callable[[float], tuple[float, float]],
        max_accuracy_loss_percent: float,
        low: float = 0.05,
        high: float = 4.0,
        iterations: int = 5,
    ) -> None:
        if max_accuracy_loss_percent <= 0:
            raise ConfigurationError("accuracy budget must be positive")
        if not 0 < low < high:
            raise ConfigurationError(f"invalid bracket [{low}, {high}]")
        if iterations < 1:
            raise ConfigurationError("need at least one iteration")
        self.evaluate = evaluate
        self.budget = max_accuracy_loss_percent
        self.low = low
        self.high = high
        self.iterations = iterations

    def run(self) -> SearchResult:
        """Run the bisection and return the best in-budget probe."""
        result = SearchResult(best=None)

        def probe(level: float) -> SearchProbe:
            loss, privacy = self.evaluate(level)
            entry = SearchProbe(
                level=level, accuracy_loss_percent=loss, in_vivo_privacy=privacy
            )
            result.probes.append(entry)
            if loss <= self.budget and (
                result.best is None
                or entry.in_vivo_privacy > result.best.in_vivo_privacy
            ):
                result.best = entry
            return entry

        low, high = self.low, self.high
        lowest = probe(low)
        if lowest.accuracy_loss_percent > self.budget:
            # Even the quietest level blows the budget; report and stop.
            return result
        if probe(high).accuracy_loss_percent <= self.budget:
            # The noisiest level is already affordable.
            return result
        for _ in range(self.iterations):
            mid = (low + high) / 2.0
            entry = probe(mid)
            if entry.accuracy_loss_percent <= self.budget:
                low = mid
            else:
                high = mid
        return result


def accuracy_budget_evaluator(
    pipeline_factory: Callable[[float], "object"],
    iterations: int | None = None,
    n_members: int = 2,
) -> Callable[[float], tuple[float, float]]:
    """Build the ``evaluate`` closure for :class:`OperatingPointSearch`.

    Args:
        pipeline_factory: Maps a noise level to a ready
            :class:`~repro.core.pipeline.ShredderPipeline` (e.g. a partial
            of :func:`repro.eval.experiments.build_pipeline`).
        iterations: Noise-training iterations per probe.
        n_members: Collection size per probe.
    """

    def evaluate(level: float) -> tuple[float, float]:
        pipeline = pipeline_factory(level)
        collection = pipeline.collect(n_members, iterations)
        clean = pipeline.clean_accuracy()
        noisy = pipeline.noisy_accuracy(collection)
        return 100.0 * (clean - noisy), collection.mean_in_vivo_privacy()

    return evaluate


def require_converged(result: NoiseTrainingResult, minimum_accuracy: float) -> None:
    """Raise :class:`TrainingError` when a run failed to recover accuracy.

    A guard for automated pipelines: noise training that ends below the
    given accuracy means λ / the init scale need retuning, and downstream
    privacy numbers would be misleading.
    """
    if result.final_accuracy < minimum_accuracy:
        raise TrainingError(
            f"noise training converged to accuracy {result.final_accuracy:.3f} "
            f"< required {minimum_accuracy:.3f}; retune lambda or the init scale"
        )
