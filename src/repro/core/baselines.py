"""Noise baselines Shredder is compared against (paper Figure 1).

* :func:`laplace_mechanism_noise` — the classic ε-differential-privacy
  Laplace mechanism applied to the activation (the "accuracy-agnostic
  noise addition" region of Figure 1): calibrated to sensitivity/ε, with
  no knowledge of the task, so accuracy collapses quickly as ε shrinks.
* :func:`matched_variance_noise` — fresh Laplace/Gaussian noise matched to
  a trained collection's variance; isolates the value of *learning* the
  noise rather than just its magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.core.sampler import NoiseCollection
from repro.errors import ConfigurationError


def laplace_mechanism_noise(
    shape: tuple[int, ...],
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-sample Laplace-mechanism noise with scale ``sensitivity / ε``.

    Args:
        shape: Batch-shaped output, e.g. ``(N, C, H, W)``.
        sensitivity: L1 sensitivity of the released quantity (for bounded
            activations, their max-min range is the usual surrogate).
        epsilon: Privacy budget; smaller = noisier.
        rng: Randomness.
    """
    if sensitivity <= 0:
        raise ConfigurationError(f"sensitivity must be positive, got {sensitivity}")
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    scale = sensitivity / epsilon
    return rng.laplace(0.0, scale, size=shape).astype(np.float32)


def activation_sensitivity(activations: np.ndarray) -> float:
    """Range-based L1 sensitivity surrogate for an activation tensor."""
    activations = np.asarray(activations)
    if activations.size == 0:
        raise ConfigurationError("cannot derive sensitivity of an empty batch")
    return float(activations.max() - activations.min())


def matched_variance_noise(
    collection: NoiseCollection,
    n: int,
    rng: np.random.Generator,
    family: str = "laplace",
) -> np.ndarray:
    """Fresh noise with the same element variance as a trained collection.

    Args:
        collection: Trained noise distribution to match.
        n: Number of per-sample tensors to draw.
        rng: Randomness.
        family: ``"laplace"`` or ``"gaussian"``.
    """
    stacked = np.stack([s.tensor for s in collection.samples])
    std = float(stacked.std())
    shape = (n, *collection.activation_shape)
    if family == "laplace":
        return rng.laplace(0.0, std / np.sqrt(2.0), size=shape).astype(np.float32)
    if family == "gaussian":
        return rng.normal(0.0, std, size=shape).astype(np.float32)
    raise ConfigurationError(f"unknown noise family {family!r}")
