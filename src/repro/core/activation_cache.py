"""Process-wide cache of materialised cut-point activations.

Every :class:`~repro.core.trainer.NoiseTrainer` (and several eval paths)
starts by pushing an entire dataset through the frozen local half of the
split network.  Benchmarks and sweeps construct many pipelines over the
same ``(model, cut, dataset)`` triple — λ sweeps, layerwise panels,
repeated collection training — and each used to recompute the identical
activations from scratch.  This module memoises them.

Entries are keyed on the identity of the frozen model and dataset plus the
cut name and batch size.  Each entry keeps strong references to the model
and dataset it was computed from, which both pins the arrays' provenance
and guarantees the ``id()``-based key can never be recycled while the
entry lives.  The cache is bounded LRU; the arrays it returns are shared,
so callers must treat them as read-only (every current consumer does —
training and eval code index or add, never mutate in place).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.split import SplitInferenceModel
    from repro.nn import Dataset


@dataclass
class _CacheEntry:
    model: object
    dataset: object
    activations: np.ndarray
    labels: np.ndarray


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


class ActivationCache:
    """Bounded LRU cache of ``materialize_activations`` results.

    Args:
        max_entries: Entries kept before least-recently-used eviction.
            Activation tensors can be large at paper scale, so the default
            is deliberately small; one entry per (model, cut, split) pair
            in flight is enough for every current workload.
        max_bytes: Total activation-array budget; least-recently-used
            entries are evicted past it (the most recent entry is always
            kept so a single oversized materialisation still caches).
    """

    def __init__(self, max_entries: int = 8, max_bytes: int = 512 * 1024 * 1024) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be positive, got {max_entries}"
            )
        if max_bytes < 1:
            raise ConfigurationError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(
        split: "SplitInferenceModel", dataset: "Dataset", batch_size: int
    ) -> tuple:
        # The state fingerprint guards against in-place mutation of a
        # cached model (load_state_dict, continued training — including
        # BatchNorm running statistics, which live in buffers rather than
        # parameters): any change alters the sums with overwhelming
        # probability, turning the stale entry into a harmless miss.
        fingerprint = tuple(
            float(p.data.sum(dtype=np.float64)) for p in split.model.parameters()
        ) + tuple(
            float(np.asarray(buffer).sum(dtype=np.float64))
            for _, buffer in split.model.named_buffers()
        )
        return (id(split.model), split.cut, id(dataset), batch_size, fingerprint)

    def get_or_compute(
        self,
        split: "SplitInferenceModel",
        dataset: "Dataset",
        batch_size: int = 128,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Activations and labels for ``dataset`` at ``split``'s cut.

        Computes through :meth:`SplitInferenceModel.materialize_activations`
        on a miss; returns the shared cached arrays on a hit.  Treat the
        result as read-only.
        """
        key = self._key(split, dataset, batch_size)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry.activations, entry.labels
        self.stats.misses += 1
        activations, labels = split.materialize_activations(
            dataset, batch_size=batch_size
        )
        self._entries[key] = _CacheEntry(
            model=split.model,
            dataset=dataset,
            activations=activations,
            labels=labels,
        )
        while len(self._entries) > self.max_entries or (
            len(self._entries) > 1 and self.total_bytes() > self.max_bytes
        ):
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return activations, labels

    def total_bytes(self) -> int:
        """Bytes held by cached activation and label arrays."""
        return sum(
            entry.activations.nbytes + entry.labels.nbytes
            for entry in self._entries.values()
        )

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()


_GLOBAL_CACHE = ActivationCache()


def get_activation_cache() -> ActivationCache:
    """The process-wide cache used by trainers and eval helpers."""
    return _GLOBAL_CACHE


def clear_activation_cache() -> None:
    """Reset the process-wide cache (tests, memory pressure)."""
    _GLOBAL_CACHE.clear()


def materialize_activations_cached(
    split: "SplitInferenceModel", dataset: "Dataset", batch_size: int = 128
) -> tuple[np.ndarray, np.ndarray]:
    """Cached drop-in for ``split.materialize_activations(dataset)``."""
    return _GLOBAL_CACHE.get_or_compute(split, dataset, batch_size=batch_size)
