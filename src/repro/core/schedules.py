"""λ schedules for noise training.

Paper §3.2: "When the in vivo notion of privacy reaches a certain desired
level, λ is decayed to stabilize privacy and facilitate the learning
process."  :class:`DecayOnTarget` implements exactly that behaviour;
:class:`ConstantLambda` covers the fixed-λ scenarios of §2.4 (including
λ = 0, the privacy-agnostic baseline of Figure 4).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class LambdaSchedule:
    """Maps (step, current in-vivo privacy) to the λ used at that step."""

    def coefficient(self, step: int, in_vivo_privacy: float) -> float:
        raise NotImplementedError  # pragma: no cover - abstract

    def clone(self) -> "LambdaSchedule":
        """A fresh schedule with any decay state reset.

        Batched collection training gives every member its own schedule
        clone so one member reaching its privacy target cannot decay λ for
        the others.
        """
        raise NotImplementedError  # pragma: no cover - abstract


class ConstantLambda(LambdaSchedule):
    """A fixed λ (λ = 0 gives the privacy-agnostic baseline)."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"lambda must be non-negative, got {value}")
        self.value = float(value)

    def coefficient(self, step: int, in_vivo_privacy: float) -> float:
        return self.value

    def clone(self) -> "ConstantLambda":
        return self  # stateless, safe to share

    def __repr__(self) -> str:
        return f"ConstantLambda({self.value})"


class DecayOnTarget(LambdaSchedule):
    """Decay λ once the in-vivo privacy target is reached (paper §3.2).

    While privacy is below ``target`` the schedule returns ``base``; when
    the target is reached λ is multiplied by ``decay`` (repeatedly, each
    time privacy is still above target at a query), stabilising privacy so
    cross-entropy recovery dominates the remaining updates.

    Args:
        base: Initial λ.
        target: Desired in-vivo privacy (1/SNR) level.
        decay: Multiplicative decay factor in (0, 1).
        floor: λ never decays below this value.
    """

    def __init__(
        self, base: float, target: float, decay: float = 0.5, floor: float = 0.0
    ) -> None:
        if base < 0:
            raise ConfigurationError(f"base lambda must be non-negative, got {base}")
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        if target <= 0:
            raise ConfigurationError(f"target privacy must be positive, got {target}")
        self.base = float(base)
        self.target = float(target)
        self.decay = float(decay)
        self.floor = float(floor)
        self._current = float(base)
        self.reached_at_step: int | None = None

    def coefficient(self, step: int, in_vivo_privacy: float) -> float:
        if in_vivo_privacy >= self.target:
            if self.reached_at_step is None:
                self.reached_at_step = step
            self._current = max(self._current * self.decay, self.floor)
        return self._current

    def clone(self) -> "DecayOnTarget":
        return DecayOnTarget(self.base, self.target, self.decay, self.floor)

    def __repr__(self) -> str:
        return (
            f"DecayOnTarget(base={self.base}, target={self.target}, "
            f"decay={self.decay})"
        )
