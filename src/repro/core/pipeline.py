"""End-to-end Shredder pipeline — the library's main entry point.

``ShredderPipeline`` ties everything together for one backbone and cut:

1. split the frozen pre-trained network at the cut point,
2. initialise a noise tensor from ``Laplace(mu, b)``,
3. train it with the Eq. 3 loss (λ knob, optional decay-on-target),
4. optionally build a noise collection (§2.5) — by default all members
   train simultaneously in one batched loop (``NoiseTrainer.train_many``),
   which matches member-at-a-time training numerically at a fraction of
   the wall clock,
5. measure clean/noisy accuracy and the input↔activation mutual
   information with and without noise (the Table 1 quantities),
6. ``deploy()`` the trained collection as a serving session — by default
   the batched multi-user runtime of :mod:`repro.serve`, with the
   sequential Figure 2 path retained as the bit-for-bit reference — or
   ``deploy_many()`` several named deployments onto one shared-pool
   serving control plane (:class:`repro.serve.ControlPlane`).

Activations of the frozen local half are materialised through the shared
:mod:`repro.core.activation_cache`, so repeated pipelines over the same
(backbone, cut, dataset) triple skip that forward pass entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import Config, get_scale
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edge.channel import Channel
from repro.core.distribution import FittedNoiseDistribution
from repro.core.loss import ShredderLoss
from repro.core.noise_tensor import NoiseTensor
from repro.core.sampler import NoiseCollection, NoiseSample
from repro.core.schedules import LambdaSchedule
from repro.core.split import SplitInferenceModel
from repro.core.trainer import NoiseTrainer, NoiseTrainingResult
from repro.models.zoo import PretrainedBundle
from repro.privacy.metrics import (
    LeakageEstimate,
    estimate_leakage,
    information_loss_percent,
)


@dataclass
class ShredderReport:
    """The Table 1 row for one (network, cut, λ, init) configuration.

    Attributes:
        model_name: Backbone name.
        cut: Cut-point name.
        clean_accuracy: Frozen backbone accuracy, no noise.
        noisy_accuracy: Accuracy with the trained noise injected.
        accuracy_loss_percent: ``clean − noisy`` in percentage points.
        original_mi_bits: I(x; a) without noise (the zero-leakage line).
        shredded_mi_bits: I(x; a′) with trained noise.
        mi_loss_percent: Percent reduction (Table 1's headline metric).
        final_in_vivo_privacy: 1/SNR of the trained noise.
        noise_elements: Trainable noise parameters.
        model_parameters: Backbone weight count.
        params_ratio_percent: noise / model parameters × 100 (Table 1).
        epochs: Equivalent training epochs of noise training (Table 1).
    """

    model_name: str
    cut: str
    clean_accuracy: float
    noisy_accuracy: float
    accuracy_loss_percent: float
    original_mi_bits: float
    shredded_mi_bits: float
    mi_loss_percent: float
    final_in_vivo_privacy: float
    noise_elements: int
    model_parameters: int
    params_ratio_percent: float
    epochs: float


class ShredderPipeline:
    """Runs Shredder for one pre-trained backbone.

    Args:
        bundle: A :class:`~repro.models.zoo.PretrainedBundle` (frozen model
            plus its normalised data splits).
        cut: Cut point; defaults to the last conv layer (paper default).
        lambda_coeff: The λ knob of Eq. 3.
        init_loc / init_scale: Laplace initialisation ``mu`` and ``b``.
        schedule: Optional λ schedule (decay-on-target etc.).
        lr: Adam learning rate for the noise.
        config: Seed/scale configuration.
        eval_subset: When set, the trainer's intermediate accuracy probes
            use a rotating held-out subset of this size instead of the full
            eval set (final probes stay full-set; see
            :class:`~repro.core.trainer.NoiseTrainer`).
    """

    def __init__(
        self,
        bundle: PretrainedBundle,
        cut: str | None = None,
        lambda_coeff: float = 1e-3,
        init_loc: float = 0.0,
        init_scale: float = 1.0,
        schedule: LambdaSchedule | None = None,
        lr: float = 1e-2,
        config: Config | None = None,
        eval_subset: int | None = None,
    ) -> None:
        self.bundle = bundle
        self.config = config or Config(scale=get_scale())
        self.split = SplitInferenceModel(bundle.model, cut)
        self.lambda_coeff = lambda_coeff
        self.init_loc = init_loc
        self.init_scale = init_scale
        self.lr = lr
        self.trainer = NoiseTrainer(
            self.split,
            bundle.train_set,
            bundle.test_set,
            loss=ShredderLoss(lambda_coeff),
            schedule=schedule,
            lr=lr,
            batch_size=self.config.scale.batch_size,
            rng=np.random.default_rng(self.config.child_seed("noise-batches")),
            eval_subset=eval_subset,
            eval_rng=np.random.default_rng(self.config.child_seed("eval-subset")),
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def new_noise(self, seed_tag: object = 0) -> NoiseTensor:
        """A fresh Laplace-initialised noise tensor."""
        rng = np.random.default_rng(self.config.child_seed("noise-init", seed_tag))
        return NoiseTensor.from_laplace(
            self.split.activation_shape, rng, loc=self.init_loc, scale=self.init_scale
        )

    def train_noise(
        self, iterations: int | None = None, seed_tag: object = 0
    ) -> NoiseTrainingResult:
        """Train one noise tensor (paper §2.4)."""
        iterations = iterations or self.config.scale.noise_iterations
        return self.trainer.train(self.new_noise(seed_tag), iterations)

    def collect(
        self,
        n_members: int,
        iterations: int | None = None,
        batched: bool = True,
    ) -> NoiseCollection:
        """Build a §2.5 noise collection.

        By default all members train simultaneously in one batched loop
        (:meth:`NoiseTrainer.train_many`): member ``i`` starts from the
        same ``seed_tag=i`` initialisation and consumes the same batch
        stream as the sequential loop would, so the resulting collection
        matches repeated :meth:`train_noise` calls within floating-point
        tolerance — at a fraction of the wall clock.

        Every member trains under its own clone of the λ schedule in both
        modes (one member hitting its decay target must not decay λ for
        the others), which keeps the two paths numerically equivalent for
        stateful schedules as well.

        Args:
            n_members: Collection size.
            iterations: Training steps per member (scale default).
            batched: ``False`` forces the original member-at-a-time loop
                (kept for parity testing and benchmarking).
        """
        iterations = iterations or self.config.scale.noise_iterations
        collection = NoiseCollection(self.split.activation_shape)
        if batched and n_members > 1:
            noises = [self.new_noise(seed_tag=index) for index in range(n_members)]
            for result in self.trainer.train_many(noises, iterations):
                collection.add(
                    result.noise, result.final_accuracy, result.final_in_vivo_privacy
                )
            return collection
        shared_schedule = self.trainer.schedule
        try:
            for index in range(n_members):
                self.trainer.schedule = shared_schedule.clone()
                result = self.train_noise(iterations, seed_tag=index)
                collection.add(
                    result.noise, result.final_accuracy, result.final_in_vivo_privacy
                )
        finally:
            self.trainer.schedule = shared_schedule
        return collection

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _noise_for_eval(
        self, noise: np.ndarray | NoiseCollection | FittedNoiseDistribution | None
    ) -> np.ndarray | None:
        """Resolve a noise source to per-sample tensors for the eval set.

        A :class:`NoiseCollection` or :class:`FittedNoiseDistribution` is
        sampled once per test inference (§2.5 deployment); a plain array is
        broadcast as-is (note a single fixed tensor is a constant shift and
        leaves MI unchanged — use a collection or fitted distribution to
        measure deployment-time privacy).
        """
        if noise is None:
            return None
        if isinstance(noise, (NoiseCollection, FittedNoiseDistribution)):
            rng = np.random.default_rng(self.config.child_seed("noise-sampling"))
            return noise.sample_batch(rng, len(self.trainer.eval_labels))
        return np.asarray(noise, dtype=np.float32)

    def measure_leakage(
        self,
        noise: np.ndarray | NoiseCollection | FittedNoiseDistribution | None = None,
    ) -> LeakageEstimate:
        """I(x; a′) on the (shuffled) test set, as in §3."""
        scale = self.config.scale
        test = self.bundle.test_set
        activations = self.trainer.eval_activations
        resolved = self._noise_for_eval(noise)
        if resolved is not None:
            activations = activations + resolved
        return estimate_leakage(
            test.images,
            activations,
            n_components=scale.mi_components,
            max_samples=scale.mi_samples,
            rng=np.random.default_rng(self.config.child_seed("mi-subsample")),
        )

    def noisy_accuracy(
        self, noise: np.ndarray | NoiseCollection | FittedNoiseDistribution
    ) -> float:
        """Held-out accuracy under the given noise source."""
        return self.split.accuracy_from_activations(
            self.trainer.eval_activations,
            self.trainer.eval_labels,
            self._noise_for_eval(noise),
        )

    def clean_accuracy(self) -> float:
        """Held-out accuracy of the frozen backbone without noise."""
        return self.split.accuracy_from_activations(
            self.trainer.eval_activations, self.trainer.eval_labels
        )

    def report(
        self, collection: NoiseCollection, epochs: float | None = None
    ) -> ShredderReport:
        """Assemble the Table 1 row for a trained noise collection.

        Args:
            collection: Noise distribution to deploy (per-inference draws).
            epochs: Equivalent training epochs per member (for the Table 1
                row); defaults to the collection's bookkeeping being absent,
                i.e. 0.0 when unknown.
        """
        clean = self.clean_accuracy()
        noisy = self.noisy_accuracy(collection)
        original = self.measure_leakage(None)
        shredded = self.measure_leakage(collection)
        noise_elements = int(np.prod(self.split.activation_shape))
        model_parameters = self.bundle.model.num_parameters()
        return ShredderReport(
            model_name=self.bundle.model.model_name,
            cut=self.split.cut,
            clean_accuracy=clean,
            noisy_accuracy=noisy,
            accuracy_loss_percent=100.0 * (clean - noisy),
            original_mi_bits=original.mi_bits,
            shredded_mi_bits=shredded.mi_bits,
            mi_loss_percent=information_loss_percent(
                original.mi_bits, shredded.mi_bits
            ),
            final_in_vivo_privacy=collection.mean_in_vivo_privacy(),
            noise_elements=noise_elements,
            model_parameters=model_parameters,
            params_ratio_percent=100.0 * noise_elements / model_parameters,
            epochs=epochs if epochs is not None else 0.0,
        )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        noise: NoiseCollection | None = None,
        *,
        batched: bool = True,
        batch_window: int = 8,
        workers: int = 1,
        batch_timeout: float | None = None,
        deadline_aware: bool | None = None,
        isolate_sessions: bool = False,
        channel: Channel | None = None,
        quantize_bits: int | None = None,
        weight_bits: int | None = None,
        kernel_backend: str = "auto",
        rng: np.random.Generator | None = None,
        max_pending: int | None = None,
        admission_rate_rps: float | None = None,
        shuffle: bool = False,
        shuffle_seed: int | None = None,
    ):
        """Stand up a serving session for this pipeline's split backbone.

        By default this returns the batched serving runtime
        (:class:`repro.serve.BatchedInferenceSession`): a request queue and
        micro-batcher in front of one stacked edge/cloud round trip per
        ``batch_window`` requests.  Asking for more than one cloud worker
        — or for deadline-aware scheduling (``deadline_aware`` /
        ``batch_timeout``) — returns the full serving engine
        (:class:`repro.serve.ServingEngine`) instead.  ``batched=False``
        returns the retained sequential reference path
        (:class:`repro.edge.InferenceSession`).  All paths produce
        bit-identical predictions on the same request stream when given
        identically seeded generators.

        The bundle's datasets are already normalised, so the device is
        configured with identity normalisation.

        Args:
            noise: Trained collection (e.g. from :meth:`collect`); ``None``
                deploys the privacy-free baseline.
            batched: Choose a serving runtime or the sequential path.
            batch_window: Requests stacked per micro-batch.
            workers: Cloud worker threads; ``> 1`` selects the engine.
            batch_timeout: Longest the head request waits for its window
                to fill (engine only; selects the engine when set).
            deadline_aware: Close windows on request SLO slack (engine
                only; selects the engine when set).
            isolate_sessions: Batch-composition policy: ``True`` never
                mixes two sessions in one micro-batch (the mixing index
                reads 0); default ``False`` (``mixed``).
            channel: Link model (default: fast clean link).
            quantize_bits: When set, calibrate an affine quantiser on the
                held-out (noisy) activations and quantise each stacked
                uplink payload once (batched sessions only).
            weight_bits: ``8`` serves every half on int8-quantised
                weights (the opt-in ``int8_weights`` IR rewrite,
                label-agreement-gated).  Available on all deploy paths —
                the sequential reference quantises identically, so
                parity holds within the weight regime.
            kernel_backend: Forward-executor backend for every half of the
                deployment — ``"auto"`` (compiled C kernels when a system
                compiler is available; the default), ``"native"``
                (require them), or ``"numpy"``.  All serving runtimes from
                one ``deploy`` use the selected backend, keeping batched /
                sequential parity intact (see :mod:`repro.edge.executor`).
            rng: Noise-sampling randomness; defaults to a config-derived
                seed so deployments are reproducible.
            max_pending / admission_rate_rps: Admission-control knobs
                (engine only; select the engine when set).  Over capacity
                the engine's ``submit`` raises a typed
                :class:`~repro.errors.AdmissionError`.
            shuffle / shuffle_seed: Enable the seeded cross-session row
                shuffling stage (batched sessions only; see
                :class:`repro.serve.scheduler.Shuffler`).  Parity is
                preserved — the recorded inverse restores per-request
                order bit-exactly.
        """
        from repro.edge import InferenceSession, calibrate
        from repro.serve import BatchedInferenceSession, ServingEngine

        admission_mode = max_pending is not None or admission_rate_rps is not None
        engine_mode = (
            workers != 1
            or batch_timeout is not None
            or deadline_aware is not None
            or admission_mode
        )
        channels = self.bundle.model.input_shape[0]
        mean = np.zeros(channels, dtype=np.float32)
        std = np.ones(channels, dtype=np.float32)
        rng = rng or np.random.default_rng(self.config.child_seed("serving"))
        if not batched:
            if quantize_bits is not None:
                raise ConfigurationError(
                    "quantised payloads are a batched-wire feature; "
                    "deploy(batched=True) to use quantize_bits"
                )
            if shuffle:
                raise ConfigurationError(
                    "row shuffling is a batched-wire feature; "
                    "deploy(batched=True) to use shuffle"
                )
            if engine_mode:
                raise ConfigurationError(
                    "workers / batch_timeout / deadline_aware / max_pending "
                    "/ admission_rate_rps are serving-engine features; "
                    "deploy(batched=True) to use them"
                )
            return InferenceSession(
                self.bundle.model, self.split.cut, mean, std, noise,
                channel=channel, rng=rng, kernel_backend=kernel_backend,
                weight_bits=weight_bits,
            )
        quantization = None
        if quantize_bits is not None:
            calibration = self.trainer.eval_activations
            if noise is not None and len(noise):
                calibration = calibration + noise.sample_batch(
                    np.random.default_rng(self.config.child_seed("quant-calib")),
                    len(calibration),
                )
            quantization = calibrate(calibration, bits=quantize_bits)
        if engine_mode:
            return ServingEngine(
                self.bundle.model, self.split.cut, mean, std, noise,
                channel=channel, rng=rng,
                workers=workers, batch_window=batch_window,
                batch_timeout=0.005 if batch_timeout is None else batch_timeout,
                deadline_aware=True if deadline_aware is None else deadline_aware,
                isolate_sessions=isolate_sessions,
                quantization=quantization, weight_bits=weight_bits,
                kernel_backend=kernel_backend,
                max_pending=max_pending,
                admission_rate_rps=admission_rate_rps,
                shuffle=shuffle, shuffle_seed=shuffle_seed,
            )
        return BatchedInferenceSession(
            self.bundle.model, self.split.cut, mean, std, noise,
            channel=channel, rng=rng, batch_window=batch_window,
            quantization=quantization, weight_bits=weight_bits,
            kernel_backend=kernel_backend,
            isolate_sessions=isolate_sessions,
            shuffle=shuffle, shuffle_seed=shuffle_seed,
        )

    def deploy_many(
        self,
        deployments: dict,
        *,
        workers: int = 2,
        channel: Channel | None = None,
        kernel_backend: str = "auto",
        fault_injector=None,
        clock=None,
        max_workers: int | None = None,
        auto_heal: bool = False,
    ):
        """Stand up one multi-deployment serving control plane.

        Each entry of ``deployments`` becomes a named tenant on a shared
        cloud worker pool (:class:`repro.serve.ControlPlane`): its own
        noise collection, cut, batching window/policy, single-owner noise
        stream, and metrics — while every worker thread serves
        micro-batches from any of them through a per-deployment executor
        cache pre-warmed at registration.

        Args:
            deployments: ``{name: spec}`` where ``spec`` is a
                :class:`repro.serve.DeploymentSpec`, a plain dict of its
                fields, a bare :class:`~repro.core.sampler.NoiseCollection`
                (all other knobs defaulted), or ``None`` (privacy-free
                baseline deployment).  A spec's ``batch_window=None`` asks
                the planner for the largest window meeting the spec's
                ``target_slo_seconds`` at its ``arrival_rate_rps``
                (per-deployment planner windows).
            workers: Cloud worker threads shared by every deployment.
            channel: Link prototype cloned per (worker, deployment).
            kernel_backend: Default executor backend (specs may override;
                one backend per deployment, as in :meth:`deploy`).
            fault_injector: Optional crash-injection hook (see
                :class:`repro.serve.ControlPlane`).
            clock: Time source for scheduling/latency accounting.
            max_workers: Elastic pool ceiling for
                :meth:`~repro.serve.ControlPlane.scale_to` / healing /
                the autoscaler (default: fixed at ``workers``).
            auto_heal: Respawn crashed workers automatically during
                crash recovery.

        Specs may carry admission-control knobs (``max_pending``,
        ``admission_rate_rps``, ``admission_burst``, ``shed_unmeetable``)
        — over capacity, submissions to that deployment raise typed
        :class:`~repro.errors.AdmissionError` /
        :class:`~repro.errors.OverloadError`.

        Returns:
            The control plane with every deployment registered; route
            requests with ``plane.submit(images, deployment=name, ...)``.
        """
        from repro.edge import calibrate
        from repro.serve import ControlPlane, DeploymentSpec

        if not deployments:
            raise ConfigurationError("deploy_many needs at least one deployment")
        plane = ControlPlane(
            workers=workers,
            channel=channel,
            kernel_backend=kernel_backend,
            fault_injector=fault_injector,
            clock=clock,
            max_workers=max_workers,
            auto_heal=auto_heal,
        )
        try:
            for name, raw in deployments.items():
                if raw is None or isinstance(raw, NoiseCollection):
                    spec = DeploymentSpec(noise=raw)
                elif isinstance(raw, DeploymentSpec):
                    spec = raw
                elif isinstance(raw, dict):
                    spec = DeploymentSpec(**raw)
                else:
                    raise ConfigurationError(
                        f"deployment {name!r}: expected a DeploymentSpec, "
                        f"dict, NoiseCollection, or None, got {type(raw).__name__}"
                    )
                model = spec.model or self.bundle.model
                cut = spec.cut or self.split.cut
                quantization = None
                if spec.quantize_bits is not None:
                    if spec.model is not None or cut != self.split.cut:
                        raise ConfigurationError(
                            f"deployment {name!r}: quantize_bits calibrates "
                            "on this pipeline's held-out activations, so it "
                            "requires the pipeline's own model and cut"
                        )
                    calibration = self.trainer.eval_activations
                    if spec.noise is not None and len(spec.noise):
                        calibration = calibration + spec.noise.sample_batch(
                            np.random.default_rng(
                                self.config.child_seed("quant-calib", name)
                            ),
                            len(calibration),
                        )
                    quantization = calibrate(calibration, bits=spec.quantize_bits)
                rng = spec.rng or np.random.default_rng(
                    self.config.child_seed("serving", name)
                )
                plane.register(
                    name,
                    model,
                    cut,
                    noise=spec.noise,
                    rng=rng,
                    batch_window=spec.batch_window,
                    max_rows=spec.max_rows,
                    batch_timeout=spec.batch_timeout,
                    deadline_aware=spec.deadline_aware,
                    isolate_sessions=spec.isolate_sessions,
                    quantization=quantization,
                    weight_bits=spec.weight_bits,
                    kernel_backend=spec.kernel_backend,
                    target_slo_seconds=spec.target_slo_seconds,
                    arrival_rate_rps=spec.arrival_rate_rps,
                    service_seconds_per_sample=spec.service_seconds_per_sample,
                    max_pending=spec.max_pending,
                    admission_rate_rps=spec.admission_rate_rps,
                    admission_burst=spec.admission_burst,
                    shed_unmeetable=spec.shed_unmeetable,
                    shuffle=spec.shuffle,
                    shuffle_seed=spec.shuffle_seed,
                )
        except BaseException:
            # Never leak the worker pool when a late registration fails.
            plane.close()
            raise
        return plane

    def run(
        self, iterations: int | None = None, n_members: int = 4
    ) -> ShredderReport:
        """Train a noise collection and report all Table 1 quantities."""
        iterations = iterations or self.config.scale.noise_iterations
        collection = self.collect(n_members, iterations)
        epochs = iterations * self.config.scale.batch_size / len(
            self.trainer.train_labels
        )
        return self.report(collection, epochs=epochs)
