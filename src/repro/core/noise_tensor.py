"""The trainable noise tensor — Shredder's only learnable object.

Paper §2.1/§2.4: the noise ``n`` has the same (per-sample) shape as the
activation at the cutting point, is initialised from a Laplace distribution
``Laplace(mu, b)`` whose parameters are hyper-parameters, and is trained by
gradient descent while the network weights stay frozen.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import init as nn_init
from repro.nn.module import Parameter


class NoiseTensor(Parameter):
    """Additive noise parameter with shape ``(1, *activation_shape)``.

    The leading singleton dimension broadcasts the same noise tensor over a
    batch of activations; the autograd engine sums the incoming gradient
    over the batch, which is exactly the mini-batch gradient of the loss
    with respect to the shared noise.
    """

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(np.asarray(data, dtype=np.float32), name="shredder_noise")

    @classmethod
    def from_laplace(
        cls,
        activation_shape: tuple[int, ...],
        rng: np.random.Generator,
        loc: float = 0.0,
        scale: float = 1.0,
    ) -> "NoiseTensor":
        """Laplace(mu=loc, b=scale) initialisation (paper §2.4).

        Args:
            activation_shape: Per-sample activation shape (no batch dim),
                e.g. ``(C, H, W)``.
            rng: Initialisation randomness.
            loc: Location parameter ``mu``.
            scale: Scale parameter ``b`` — the knob controlling initial
                in-vivo privacy.
        """
        if any(dim <= 0 for dim in activation_shape):
            raise ConfigurationError(
                f"invalid activation shape {activation_shape}"
            )
        data = nn_init.laplace(
            (1, *activation_shape), rng, loc=loc, scale=scale
        )
        return cls(data)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "NoiseTensor":
        """Wrap a previously trained noise tensor (adds the batch dim
        when given a per-sample array)."""
        array = np.asarray(array, dtype=np.float32)
        if array.ndim >= 1 and array.shape[0] != 1:
            array = array[None]
        return cls(array)

    @property
    def per_sample(self) -> np.ndarray:
        """The noise with the broadcast dimension stripped."""
        return self.data[0]

    def magnitude_l1(self) -> float:
        """``Σ|n_i|`` — the quantity the Eq. 3 regulariser grows."""
        return float(np.abs(self.data).sum())

    def variance(self) -> float:
        """``σ²(n)`` — population variance over the noise elements."""
        return float(self.data.var())
