"""The trainable noise tensor — Shredder's only learnable object.

Paper §2.1/§2.4: the noise ``n`` has the same (per-sample) shape as the
activation at the cutting point, is initialised from a Laplace distribution
``Laplace(mu, b)`` whose parameters are hyper-parameters, and is trained by
gradient descent while the network weights stay frozen.

:class:`MultiNoiseTensor` packs the M independent members of a §2.5 noise
collection into one ``(M, *activation_shape)`` parameter so a single
forward/backward over a member-stacked batch trains all of them at once
(see :meth:`repro.core.trainer.NoiseTrainer.train_many`).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import init as nn_init
from repro.nn.module import Parameter


class NoiseTensor(Parameter):
    """Additive noise parameter with shape ``(1, *activation_shape)``.

    The leading singleton dimension broadcasts the same noise tensor over a
    batch of activations; the autograd engine sums the incoming gradient
    over the batch, which is exactly the mini-batch gradient of the loss
    with respect to the shared noise.
    """

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(np.asarray(data, dtype=np.float32), name="shredder_noise")

    @classmethod
    def from_laplace(
        cls,
        activation_shape: tuple[int, ...],
        rng: np.random.Generator,
        loc: float = 0.0,
        scale: float = 1.0,
    ) -> "NoiseTensor":
        """Laplace(mu=loc, b=scale) initialisation (paper §2.4).

        Args:
            activation_shape: Per-sample activation shape (no batch dim),
                e.g. ``(C, H, W)``.
            rng: Initialisation randomness.
            loc: Location parameter ``mu``.
            scale: Scale parameter ``b`` — the knob controlling initial
                in-vivo privacy.
        """
        if any(dim <= 0 for dim in activation_shape):
            raise ConfigurationError(
                f"invalid activation shape {activation_shape}"
            )
        data = nn_init.laplace(
            (1, *activation_shape), rng, loc=loc, scale=scale
        )
        return cls(data)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "NoiseTensor":
        """Wrap a previously trained noise tensor (adds the batch dim
        when given a per-sample array)."""
        array = np.asarray(array, dtype=np.float32)
        if array.ndim >= 1 and array.shape[0] != 1:
            array = array[None]
        return cls(array)

    @property
    def per_sample(self) -> np.ndarray:
        """The noise with the broadcast dimension stripped."""
        return self.data[0]

    def magnitude_l1(self) -> float:
        """``Σ|n_i|`` — the quantity the Eq. 3 regulariser grows."""
        return float(np.abs(self.data).sum())

    def variance(self) -> float:
        """``σ²(n)`` — population variance over the noise elements."""
        return float(self.data.var())


class MultiNoiseTensor(Parameter):
    """A bank of M independent noise members, shape ``(M, *activation_shape)``.

    Each slice along the leading axis is one §2.5 collection member.  The
    members never mix: the batched training loop adds member ``m`` only to
    member ``m``'s slice of the activation batch, and the loss sums
    per-member terms, so the gradient landing on each slice is exactly the
    gradient an independently trained :class:`NoiseTensor` would receive.
    Adam's elementwise state then evolves every slice identically to M
    sequential runs.
    """

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim < 2:
            raise ConfigurationError(
                f"expected (M, *activation_shape) data, got shape {data.shape}"
            )
        super().__init__(data, name="shredder_noise_bank")

    @classmethod
    def from_members(cls, members: Sequence[NoiseTensor]) -> "MultiNoiseTensor":
        """Stack individually initialised :class:`NoiseTensor`s into a bank."""
        if not members:
            raise ConfigurationError("need at least one noise member")
        shapes = {member.per_sample.shape for member in members}
        if len(shapes) != 1:
            raise ConfigurationError(
                f"members must share one activation shape, got {sorted(map(str, shapes))}"
            )
        return cls(np.stack([member.per_sample for member in members]))

    @classmethod
    def from_laplace(
        cls,
        n_members: int,
        activation_shape: tuple[int, ...],
        rngs: Sequence[np.random.Generator],
        loc: float = 0.0,
        scale: float = 1.0,
    ) -> "MultiNoiseTensor":
        """Laplace-initialise M members from per-member RNG streams."""
        if n_members < 1:
            raise ConfigurationError(f"need at least one member, got {n_members}")
        if len(rngs) != n_members:
            raise ConfigurationError(
                f"need one rng per member: {n_members} members, {len(rngs)} rngs"
            )
        return cls.from_members(
            [
                NoiseTensor.from_laplace(activation_shape, rng, loc=loc, scale=scale)
                for rng in rngs
            ]
        )

    @property
    def n_members(self) -> int:
        return self.data.shape[0]

    @property
    def activation_shape(self) -> tuple[int, ...]:
        return self.data.shape[1:]

    def member(self, index: int) -> np.ndarray:
        """Member ``index`` with the broadcast batch dim restored."""
        return self.data[index][None]

    def members(self) -> Iterator[np.ndarray]:
        """Iterate members as ``(1, *activation_shape)`` arrays."""
        for index in range(self.n_members):
            yield self.member(index)
