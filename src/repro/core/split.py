"""Split-inference wrapper: local half, noise injection, remote half.

This is the runtime object of Figure 2: the user input ``x`` runs through
the local network on the edge producing ``a``, noise is added (``a' = a+n``)
and the remote network computes the prediction from the noisy activation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, TrainingError
from repro.models.base import SplittableModel
from repro.nn import DataLoader, Dataset, Sequential, Tensor, no_grad


class SplitInferenceModel:
    """A backbone split at a cut point, with optional noise at the seam.

    Args:
        model: The frozen backbone.
        cut: Cut-point name (defaults to the paper's choice — the last
            convolution layer).
    """

    def __init__(self, model: SplittableModel, cut: str | None = None) -> None:
        self.model = model
        self.cut = cut or model.last_conv_cut()
        local, remote = model.split(self.cut)
        self.local: Sequential = local
        self.remote: Sequential = remote
        self.activation_shape = model.activation_shape(self.cut)[1:]

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    def activations(self, images: np.ndarray) -> np.ndarray:
        """Clean activations ``a = L(x, θ₁)`` (no autograd, eval mode)."""
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                out = self.local(Tensor(images))
        finally:
            self.model.train(was_training)
        return out.numpy()

    def predict_from_activations(
        self, activations: np.ndarray, noise: np.ndarray | None = None
    ) -> np.ndarray:
        """Cloud-side logits from (possibly noisy) activations."""
        data = activations if noise is None else activations + noise
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                logits = self.remote(Tensor(data))
        finally:
            self.model.train(was_training)
        return logits.numpy()

    def predict(self, images: np.ndarray, noise: np.ndarray | None = None) -> np.ndarray:
        """End-to-end logits with noise injected at the cut."""
        return self.predict_from_activations(self.activations(images), noise)

    # ------------------------------------------------------------------
    # Dataset-level helpers
    # ------------------------------------------------------------------
    def materialize_activations(
        self, dataset: Dataset, batch_size: int = 128
    ) -> tuple[np.ndarray, np.ndarray]:
        """Precompute activations and labels for a whole dataset.

        The local network is frozen and independent of the noise, so noise
        training can run entirely on cached activations — this is the big
        CPU saving that makes the reproduction tractable.
        """
        if len(dataset) == 0:
            raise TrainingError("cannot materialise activations of an empty dataset")
        batches = []
        labels = []
        for images, batch_labels in DataLoader(dataset, batch_size=batch_size):
            batches.append(self.activations(images))
            labels.append(batch_labels)
        return np.concatenate(batches), np.concatenate(labels)

    def accuracy(
        self,
        dataset: Dataset,
        noise: np.ndarray | None = None,
        batch_size: int = 128,
    ) -> float:
        """Top-1 accuracy with optional noise at the cut."""
        correct = 0
        total = 0
        for images, labels in DataLoader(dataset, batch_size=batch_size):
            logits = self.predict(images, noise)
            correct += int((logits.argmax(axis=1) == labels).sum())
            total += len(labels)
        return correct / total

    def accuracy_from_activations(
        self,
        activations: np.ndarray,
        labels: np.ndarray,
        noise: np.ndarray | None = None,
        batch_size: int = 256,
    ) -> float:
        """Accuracy computed from cached activations (fast path)."""
        if len(activations) != len(labels):
            raise ModelError("activations and labels must be paired")
        per_sample = noise is not None and len(noise) == len(labels) and len(noise) > 1
        correct = 0
        for start in range(0, len(labels), batch_size):
            stop = start + batch_size
            batch_noise = noise[start:stop] if per_sample else noise
            logits = self.predict_from_activations(activations[start:stop], batch_noise)
            correct += int((logits.argmax(axis=1) == labels[start:stop]).sum())
        return correct / len(labels)

    def accuracy_from_activations_multi(
        self,
        activations: np.ndarray,
        labels: np.ndarray,
        member_noise: np.ndarray,
        batch_size: int = 256,
    ) -> np.ndarray:
        """Per-member accuracies under an ``(M, *activation_shape)`` bank.

        Evaluating a noise collection member-by-member costs M full remote
        passes; here each activation chunk is tiled across all members and
        pushed through the remote half once, amortising per-op overhead the
        same way batched training does.

        Args:
            activations: ``(N, *activation_shape)`` cached activations.
            labels: ``(N,)`` paired labels.
            member_noise: ``(M, *activation_shape)`` noise bank.
            batch_size: Total rows per remote pass (shared by the members).

        Returns:
            ``(M,)`` array of top-1 accuracies.
        """
        if len(activations) != len(labels):
            raise ModelError("activations and labels must be paired")
        member_noise = np.asarray(member_noise, dtype=np.float32)
        if member_noise.ndim < 2 or member_noise.shape[1:] != activations.shape[1:]:
            raise ModelError(
                f"noise bank shape {member_noise.shape} does not match "
                f"activations {activations.shape}"
            )
        m = len(member_noise)
        chunk = max(1, batch_size // m)
        correct = np.zeros(m, dtype=np.int64)
        for start in range(0, len(labels), chunk):
            stop = min(start + chunk, len(labels))
            rows = stop - start
            # (M, rows, ...) -> one (M*rows, ...) remote pass.
            tiled = activations[None, start:stop] + member_noise[:, None]
            logits = self.predict_from_activations(
                tiled.reshape(m * rows, *activations.shape[1:])
            )
            predictions = logits.argmax(axis=1).reshape(m, rows)
            correct += (predictions == labels[start:stop]).sum(axis=1)
        return correct / len(labels)

    def __repr__(self) -> str:
        return (
            f"SplitInferenceModel({self.model.model_name}, cut={self.cut}, "
            f"activation={self.activation_shape})"
        )
