"""Parametric noise-distribution fitting over a trained collection.

Paper §2.5 describes noise *sampling*: repeat noise training from several
Laplace initialisations, treat the converged tensors as samples of a noise
distribution, and at deployment draw from that distribution per inference.
:class:`~repro.core.sampler.NoiseCollection` realises the empirical reading
(draw one stored member per request).  This module realises the parametric
reading: fit a per-element location/scale family to the members and draw
*fresh* tensors at deployment — the distribution generalises beyond the
finite member set, enlarging the effective noise support without any
training in deployment.

Two families are provided, matching the paper's Laplace framing plus the
Gaussian point of comparison used throughout the noisy-channel literature
it cites [32, 33]:

* ``"laplace"`` — location = per-element median, scale = mean absolute
  deviation around the median (the Laplace MLE).
* ``"gaussian"`` — location = per-element mean, scale = per-element std.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.sampler import NoiseCollection
from repro.errors import ConfigurationError, TrainingError

_FAMILIES = ("laplace", "gaussian")


@dataclass(frozen=True)
class DistributionSummary:
    """Aggregate statistics of a fitted distribution (for reports/tests)."""

    family: str
    n_members: int
    mean_abs_location: float
    mean_scale: float
    location_std: float


class FittedNoiseDistribution:
    """A per-element parametric fit of a trained noise collection.

    Args:
        location: Per-element location parameter, activation-shaped.
        scale: Per-element scale parameter, activation-shaped, >= 0.
        family: ``"laplace"`` or ``"gaussian"``.
        n_members: Members the fit was computed from (bookkeeping).
    """

    def __init__(
        self,
        location: np.ndarray,
        scale: np.ndarray,
        family: str = "laplace",
        n_members: int = 0,
    ) -> None:
        if family not in _FAMILIES:
            raise ConfigurationError(
                f"unknown noise family {family!r}; options: {_FAMILIES}"
            )
        location = np.asarray(location, dtype=np.float32)
        scale = np.asarray(scale, dtype=np.float32)
        if location.shape != scale.shape:
            raise ConfigurationError(
                f"location shape {location.shape} != scale shape {scale.shape}"
            )
        if np.any(scale < 0):
            raise ConfigurationError("scale parameters must be non-negative")
        self.location = location
        self.scale = scale
        self.family = family
        self.n_members = n_members

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls, collection: NoiseCollection, family: str = "laplace"
    ) -> "FittedNoiseDistribution":
        """Fit the per-element family to a collection's members.

        Raises:
            TrainingError: With fewer than two members there is no spread
                to fit — deployment would degenerate to a constant shift.
        """
        if len(collection) < 2:
            raise TrainingError(
                f"need >= 2 collection members to fit a distribution, "
                f"got {len(collection)}"
            )
        stacked = np.stack([s.tensor for s in collection.samples]).astype(np.float64)
        if family == "laplace":
            location = np.median(stacked, axis=0)
            scale = np.mean(np.abs(stacked - location), axis=0)
        elif family == "gaussian":
            location = stacked.mean(axis=0)
            scale = stacked.std(axis=0)
        else:
            raise ConfigurationError(
                f"unknown noise family {family!r}; options: {_FAMILIES}"
            )
        return cls(
            location.astype(np.float32),
            scale.astype(np.float32),
            family=family,
            n_members=len(collection),
        )

    # ------------------------------------------------------------------
    # Sampling (deployment path)
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Per-sample noise shape."""
        return self.location.shape

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one fresh noise tensor (batch dim restored)."""
        return self.sample_batch(rng, 1)

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` independent fresh tensors, one per inference."""
        if n < 1:
            raise ConfigurationError(f"need a positive sample count, got {n}")
        size = (n, *self.location.shape)
        if self.family == "laplace":
            # rng.laplace rejects scale=0; fall back to the location.
            noise = np.where(
                self.scale > 0,
                rng.laplace(self.location, np.maximum(self.scale, 1e-12), size=size),
                self.location,
            )
        else:
            noise = rng.normal(self.location, self.scale, size=size)
        return noise.astype(np.float32)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def element_variance(self) -> np.ndarray:
        """Per-element sampling variance implied by the fit."""
        if self.family == "laplace":
            return 2.0 * np.square(self.scale, dtype=np.float64)
        return np.square(self.scale, dtype=np.float64)

    def summary(self) -> DistributionSummary:
        """Aggregate statistics for reporting."""
        return DistributionSummary(
            family=self.family,
            n_members=self.n_members,
            mean_abs_location=float(np.abs(self.location).mean()),
            mean_scale=float(self.scale.mean()),
            location_std=float(self.location.std()),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the fit as an ``.npz`` archive."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            location=self.location,
            scale=self.scale,
            family=np.array(self.family),
            n_members=np.array(self.n_members),
        )
        if not path.name.endswith(".npz"):
            path = path.with_name(path.name + ".npz")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FittedNoiseDistribution":
        """Read a fit previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"no fitted distribution at {path}")
        with np.load(path) as archive:
            return cls(
                archive["location"],
                archive["scale"],
                family=str(archive["family"]),
                n_members=int(archive["n_members"]),
            )
