"""Signal-to-noise ratio and the *in vivo* notion of privacy.

Paper §2.3: computing mutual information at every training step is far too
expensive, so Shredder trains against ``1/SNR`` with
``SNR = E[a²] / σ²(n)`` — expected squared activation over noise variance.
The numerator is a property of the frozen network and dataset, so it is
computed once and treated as a constant during noise training.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimatorError


def signal_power(activations: np.ndarray) -> float:
    """``E[a²]`` over a batch of clean activations at the cut point."""
    activations = np.asarray(activations)
    if activations.size == 0:
        raise EstimatorError("cannot compute signal power of an empty batch")
    return float(np.mean(np.square(activations, dtype=np.float64)))


def noise_variance(noise: np.ndarray) -> float:
    """``σ²(n)`` — population variance over the noise elements."""
    noise = np.asarray(noise)
    if noise.size == 0:
        raise EstimatorError("cannot compute the variance of an empty noise tensor")
    return float(noise.astype(np.float64).var())


def snr(activations: np.ndarray, noise: np.ndarray) -> float:
    """``SNR = E[a²] / σ²(n)`` (paper §2.3)."""
    variance = noise_variance(noise)
    if variance <= 0:
        raise EstimatorError("noise variance must be positive to compute SNR")
    return signal_power(activations) / variance


def in_vivo_privacy(activations: np.ndarray, noise: np.ndarray) -> float:
    """``1/SNR`` — the training-time privacy proxy."""
    return 1.0 / snr(activations, noise)


def in_vivo_privacy_from_power(power: float, noise: np.ndarray) -> float:
    """``σ²(n) / E[a²]`` with a pre-computed signal power.

    Used inside the training loop, where ``E[a²]`` is constant (the local
    network is frozen) and only the noise variance changes.
    """
    if power <= 0:
        raise EstimatorError(f"signal power must be positive, got {power}")
    return noise_variance(noise) / power


def noise_variance_members(noise: np.ndarray) -> np.ndarray:
    """Per-member ``σ²(n_m)`` over an ``(M, ...)`` noise bank.

    Each entry equals :func:`noise_variance` of the corresponding member
    slice, so batched training sees exactly the per-member statistics the
    sequential loop would compute.
    """
    noise = np.asarray(noise)
    if noise.ndim < 2 or noise.size == 0:
        raise EstimatorError(
            f"expected a non-empty (M, ...) noise bank, got shape {noise.shape}"
        )
    # Two-pass variance, hand-rolled: this runs every training step and
    # np.var's dispatch overhead dominates on member-sized slices.
    flat = noise.reshape(noise.shape[0], -1)
    mean = flat.mean(axis=1, dtype=np.float64)
    centered = flat - mean[:, None]
    return np.einsum("ij,ij->i", centered, centered) / flat.shape[1]


def in_vivo_privacy_members(power: float, noise: np.ndarray) -> np.ndarray:
    """Per-member ``σ²(n_m) / E[a²]`` — the batched 1/SNR vector."""
    if power <= 0:
        raise EstimatorError(f"signal power must be positive, got {power}")
    return noise_variance_members(noise) / power
