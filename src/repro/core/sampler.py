"""Noise distribution collection and sampling (paper §2.5).

Shredder does not deploy a single noise tensor: it repeats noise training
from different Laplace initialisations until it has a *collection* of
tensors, all with similar accuracy and privacy.  The collection is the
empirical noise distribution; at inference time one member is sampled per
request and injected — no training happens in deployment.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, NoiseOwnershipError, TrainingError


class NoiseStream:
    """Single-owner handle on the noise-sampling generator.

    The parity guarantee of the serving runtime rests on every request's
    noise members being drawn *in arrival order from one generator*.  The
    multi-worker engine keeps that true by construction — the dispatcher
    thread samples noise before micro-batches are handed to cloud workers —
    and this wrapper makes the handoff explicit rather than accidental: the
    first thread to draw becomes the owner, and a draw from any other
    thread raises :class:`~repro.errors.NoiseOwnershipError` (a
    :class:`~repro.errors.ConfigurationError` subclass) instead of silently
    interleaving the bit stream (which would make multi-worker runs
    irreproducible).

    ``draws`` counts the rows sampled so far, so callers can audit that the
    batched path consumed the generator exactly as the sequential reference
    would (one draw per sample).

    Args:
        rng: The generator to guard (or a seed; ``None`` seeds from OS
            entropy).
    """

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        if isinstance(rng, np.random.Generator):
            self._rng = rng
        else:
            self._rng = np.random.default_rng(rng)
        self._owner: int | None = None
        self._guard = threading.Lock()
        self.draws = 0

    def acquire(self, rows: int = 0) -> np.random.Generator:
        """The wrapped generator, after asserting calling-thread ownership.

        Args:
            rows: Samples about to be drawn; accounted in :attr:`draws`.
        """
        ident = threading.get_ident()
        with self._guard:
            if self._owner is None:
                self._owner = ident
            elif self._owner != ident:
                raise NoiseOwnershipError(
                    "noise stream drawn from two threads: the dispatcher must "
                    "be the single generator owner (call release() to hand "
                    "the stream to a new owner explicitly)"
                )
            self.draws += int(rows)
        return self._rng

    def release(self) -> None:
        """Explicitly hand the stream over: the next drawing thread owns it."""
        with self._guard:
            self._owner = None


def _sampling_generator(
    rng: "np.random.Generator | NoiseStream", rows: int
) -> np.random.Generator:
    """Unwrap a :class:`NoiseStream` (enforcing ownership) or pass a bare
    generator through untouched."""
    if isinstance(rng, NoiseStream):
        return rng.acquire(rows)
    return rng


@dataclass(frozen=True)
class NoiseSample:
    """One trained noise tensor with its measured qualities."""

    tensor: np.ndarray
    accuracy: float
    in_vivo_privacy: float


class NoiseCollection:
    """An empirical distribution over trained noise tensors.

    Args:
        activation_shape: Per-sample activation shape every member must
            match (e.g. ``(C, H, W)``); the broadcast batch dim is stripped.
    """

    def __init__(self, activation_shape: tuple[int, ...]) -> None:
        self.activation_shape = tuple(activation_shape)
        self._samples: list[NoiseSample] = []
        self._stacked: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add(self, tensor: np.ndarray, accuracy: float, in_vivo_privacy: float) -> None:
        """Add a trained tensor to the collection."""
        tensor = np.asarray(tensor, dtype=np.float32)
        if tensor.ndim == len(self.activation_shape) + 1 and tensor.shape[0] == 1:
            tensor = tensor[0]
        if tensor.shape != self.activation_shape:
            raise ConfigurationError(
                f"noise shape {tensor.shape} does not match collection shape "
                f"{self.activation_shape}"
            )
        self._samples.append(
            NoiseSample(tensor=tensor.copy(), accuracy=accuracy, in_vivo_privacy=in_vivo_privacy)
        )
        self._stacked = None  # invalidate the member-stack cache

    def _member_stack(self) -> np.ndarray:
        """All members as one cached ``(M, *activation_shape)`` array.

        Sampling is a per-inference hot path (one draw per request in the
        §2.5 deployment story); re-stacking every member tensor on every
        call made it O(M · tensor) in Python.  The stack is built once and
        invalidated by :meth:`add`.
        """
        if self._stacked is None:
            self._stacked = np.stack([s.tensor for s in self._samples])
        return self._stacked

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[NoiseSample]:
        return list(self._samples)

    # ------------------------------------------------------------------
    # Sampling (deployment path)
    # ------------------------------------------------------------------
    def sample(self, rng: "np.random.Generator | NoiseStream") -> np.ndarray:
        """Draw one noise tensor uniformly (with the batch dim restored)."""
        if not self._samples:
            raise TrainingError("cannot sample from an empty noise collection")
        index = int(_sampling_generator(rng, 1).integers(0, len(self._samples)))
        return self._samples[index].tensor[None]

    def sample_batch(self, rng: "np.random.Generator | NoiseStream", n: int) -> np.ndarray:
        """Draw ``n`` independent member tensors, one per inference.

        This is the deployment behaviour of §2.5 — and the reason Shredder
        reduces mutual information at all: a *fixed* tensor added to every
        activation is a constant shift with ``I(x; a+c) = I(x; a)``, whereas
        per-inference draws from the collection realise a genuinely noisy
        channel.
        """
        if not self._samples:
            raise TrainingError("cannot sample from an empty noise collection")
        indices = _sampling_generator(rng, n).integers(0, len(self._samples), size=n)
        return self._member_stack()[indices]

    def sample_splits(
        self, rng: "np.random.Generator | NoiseStream", splits: Sequence[int]
    ) -> np.ndarray:
        """Per-request draws for a micro-batch of ``splits`` row counts.

        One vectorised ``rng.integers`` call of ``sum(splits)`` values and
        one stacked member gather.  NumPy's bounded-integer generation
        consumes the bit stream element by element, so this draws exactly
        the indices the equivalent sequence of per-request
        :meth:`sample_batch` calls would — the serving runtime's parity
        contract, locked in by ``tests/core/test_sampler.py``.
        """
        if not self._samples:
            raise TrainingError("cannot sample from an empty noise collection")
        total = int(sum(int(rows) for rows in splits))
        indices = _sampling_generator(rng, total).integers(
            0, len(self._samples), size=total
        )
        return self._member_stack()[indices]

    def sample_elementwise(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a *new* tensor from the per-element empirical marginals.

        An extension beyond uniform member sampling: each element is drawn
        independently from the values that element took across the
        collection, enlarging the effective support of the distribution.
        """
        if len(self._samples) < 2:
            raise TrainingError("element-wise sampling needs >= 2 members")
        picks = rng.integers(0, len(self._samples), size=self.activation_shape)
        flat = self._member_stack().reshape(len(self._samples), -1)
        chosen = flat[picks.reshape(-1), np.arange(flat.shape[1])]
        return chosen.reshape(self.activation_shape)[None]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean_accuracy(self) -> float:
        self._require_nonempty()
        return float(np.mean([s.accuracy for s in self._samples]))

    def mean_in_vivo_privacy(self) -> float:
        self._require_nonempty()
        return float(np.mean([s.in_vivo_privacy for s in self._samples]))

    def _require_nonempty(self) -> None:
        if not self._samples:
            raise TrainingError("noise collection is empty")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the collection as an ``.npz`` archive."""
        self._require_nonempty()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            tensors=np.stack([s.tensor for s in self._samples]),
            accuracies=np.array([s.accuracy for s in self._samples]),
            privacies=np.array([s.in_vivo_privacy for s in self._samples]),
        )
        if not path.name.endswith(".npz"):
            path = path.with_name(path.name + ".npz")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "NoiseCollection":
        """Read a collection previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"no noise collection at {path}")
        with np.load(path) as archive:
            tensors = archive["tensors"]
            accuracies = archive["accuracies"]
            privacies = archive["privacies"]
        collection = cls(tensors.shape[1:])
        for tensor, accuracy, privacy in zip(tensors, accuracies, privacies):
            collection.add(tensor, float(accuracy), float(privacy))
        return collection


def collect_noise_distribution(
    train_one: Callable[[int], NoiseSample],
    n_members: int,
) -> NoiseCollection:
    """Build a collection by repeated noise training (paper §2.5).

    Args:
        train_one: Callable mapping a member index (used to vary the
            initialisation seed) to a trained :class:`NoiseSample`.
        n_members: Number of training repetitions.
    """
    if n_members < 1:
        raise ConfigurationError(f"need at least one member, got {n_members}")
    first = train_one(0)
    shape = first.tensor.shape[1:] if first.tensor.shape[0] == 1 else first.tensor.shape
    collection = NoiseCollection(shape)
    collection.add(first.tensor, first.accuracy, first.in_vivo_privacy)
    for index in range(1, n_members):
        sample = train_one(index)
        collection.add(sample.tensor, sample.accuracy, sample.in_vivo_privacy)
    return collection
