"""Shredder's loss functions (paper Eq. 2 and Eq. 3).

Eq. 2:  ``CE(y, p) + λ · 1/σ²(n)``   — penalise *small* noise variance.
Eq. 3:  ``CE(y, p) − λ · Σ_i |n_i|`` — the "anti-weight-decay" form the
paper actually trains with: the update is the opposite of L2/L1 weight
decay, growing the noise magnitude instead of shrinking it.

``λ`` is the knob trading accuracy for privacy (§2.4): too large and the
noise growth swamps accuracy recovery; too small and privacy stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.noise_tensor import MultiNoiseTensor, NoiseTensor
from repro.errors import ConfigurationError
from repro.nn import Tensor
from repro.nn import functional as F

_VARIANTS = ("l1", "inverse_variance")


@dataclass(frozen=True)
class LossParts:
    """Decomposition of one loss evaluation (for curves and debugging)."""

    total: float
    cross_entropy: float
    privacy_term: float
    lambda_coeff: float


class ShredderLoss:
    """Accuracy/privacy loss over (logits, targets, noise).

    Args:
        lambda_coeff: The privacy knob ``λ`` (paper uses 0.01 / 0.001 /
            0.0001 depending on network size).
        variant: ``"l1"`` for Eq. 3 (default, what the paper trains with)
            or ``"inverse_variance"`` for Eq. 2.
    """

    def __init__(self, lambda_coeff: float, variant: str = "l1") -> None:
        if lambda_coeff < 0:
            raise ConfigurationError(f"lambda must be non-negative, got {lambda_coeff}")
        if variant not in _VARIANTS:
            raise ConfigurationError(
                f"unknown variant {variant!r}; options: {_VARIANTS}"
            )
        self.lambda_coeff = float(lambda_coeff)
        self.variant = variant
        # Per-step constants of :meth:`many`, memoised on the λ vector
        # (λ only changes when a schedule decays).
        self._many_lambdas: tuple[float, ...] | None = None
        self._many_vec: np.ndarray | None = None
        self._many_coeff: np.ndarray | None = None
        self._many_rows: np.ndarray | None = None

    def __call__(
        self, logits: Tensor, targets: np.ndarray, noise: NoiseTensor
    ) -> tuple[Tensor, LossParts]:
        """Evaluate the loss.

        Returns:
            The differentiable total loss plus a float decomposition.
        """
        cross_entropy = F.cross_entropy(logits, targets)
        if self.variant == "l1":
            privacy = noise.abs().sum()
            total = cross_entropy - privacy * self.lambda_coeff
        else:
            mean = noise.mean()
            variance = (noise * noise).mean() - mean * mean
            privacy = 1.0 / (variance + 1e-12)
            total = cross_entropy + privacy * self.lambda_coeff
        parts = LossParts(
            total=total.item(),
            cross_entropy=cross_entropy.item(),
            privacy_term=privacy.item(),
            lambda_coeff=self.lambda_coeff,
        )
        return total, parts

    def many(
        self,
        logits: Tensor,
        targets: np.ndarray,
        noise: MultiNoiseTensor,
        lambdas: Sequence[float],
    ) -> tuple[Tensor, list[LossParts]]:
        """Per-member loss over a member-stacked batch (batched training).

        ``logits`` holds the M members' mini-batches stacked contiguously
        along the batch axis (member ``m`` owns rows ``m*B .. (m+1)*B``).
        The total is ``Σ_m CE_m − λ_m Σ|n_m|`` (or the Eq. 2 analogue), so
        differentiating it gives each member's noise slice exactly the
        gradient of its own independent loss.

        Args:
            logits: ``(M*B, classes)`` member-stacked scores.
            targets: ``(M*B,)`` labels, stacked the same way.
            noise: The ``(M, *activation_shape)`` noise bank.
            lambdas: One λ per member (per-member schedules may diverge).

        Returns:
            The differentiable total plus one :class:`LossParts` per member.
        """
        total, cross_entropies, privacy, sign = self.many_arrays(
            logits, targets, noise, lambdas
        )
        ce_values = cross_entropies.tolist()
        privacy_values = privacy.tolist()
        parts = [
            LossParts(
                total=ce_values[i] + sign * float(lambdas[i]) * privacy_values[i],
                cross_entropy=ce_values[i],
                privacy_term=privacy_values[i],
                lambda_coeff=float(lambdas[i]),
            )
            for i in range(noise.n_members)
        ]
        return total, parts

    def many_arrays(
        self,
        logits: Tensor,
        targets: np.ndarray,
        noise: MultiNoiseTensor,
        lambdas: Sequence[float],
    ) -> tuple[Tensor, np.ndarray, np.ndarray, float]:
        """Hot-loop core of :meth:`many`.

        Returns the differentiable total plus the raw per-member
        cross-entropy and privacy-term arrays (and the privacy sign), so
        the batched trainer can record history columns without building M
        :class:`LossParts` objects per step.
        """
        m = noise.n_members
        if len(lambdas) != m:
            raise ConfigurationError(
                f"need one lambda per member: {m} members, {len(lambdas)} lambdas"
            )
        # The whole loss is ONE fused tape node (values and hand-derived
        # gradients below) rather than a chain of small tensors: it sits
        # inside the per-step hot loop, where dispatch overhead on tiny
        # intermediates is the dominant cost.  λ-derived constants are
        # memoised — λ only changes when a schedule decays.
        lambda_key = tuple(float(value) for value in lambdas)
        member_shape = (m,) + (1,) * (noise.ndim - 1)
        if lambda_key != self._many_lambdas:
            if min(lambda_key) < 0:
                raise ConfigurationError("lambdas must be non-negative")
            self._many_lambdas = lambda_key
            self._many_vec = np.asarray(lambda_key, dtype=np.float64)
            # Matches the tensor-op chain bit for bit: λ is cast to
            # float32 when it reaches the leaf.
            self._many_coeff = (-self._many_vec).astype(np.float32).reshape(
                member_shape
            )
        lambda_vec = self._many_vec
        coeff = self._many_coeff

        n, classes = logits.shape
        if m < 1 or n % m != 0:
            raise ConfigurationError(
                f"batch of {n} does not split into {m} equal member groups"
            )
        per_member = n // m
        # Group-mean cross entropy (same arithmetic as F.cross_entropy,
        # fused here to share intermediates; the buffers backward needs
        # stay freshly allocated, z is recycled).
        z = logits.data - logits.data.max(axis=1, keepdims=True)
        exp_z = np.exp(z)
        denom = exp_z.sum(axis=1, keepdims=True)
        log_probs = np.subtract(z, np.log(denom), out=z)
        if self._many_rows is None or len(self._many_rows) != n:
            self._many_rows = np.arange(n)
        rows = self._many_rows
        losses = log_probs[rows, targets]
        cross_entropies = -losses.reshape(m, per_member).mean(axis=1)

        flat = noise.data.reshape(m, -1)
        if self.variant == "l1":
            privacy = np.abs(flat, dtype=np.float64).sum(axis=1)
            reg_value = -float(np.dot(lambda_vec, privacy))
            grad_noise = coeff * np.sign(noise.data)
            sign = -1.0
        else:
            mean = flat.mean(axis=1, dtype=np.float64)
            variance = np.square(flat, dtype=np.float64).mean(axis=1) - mean * mean
            privacy = 1.0 / (variance + 1e-12)
            reg_value = float(np.dot(lambda_vec, privacy))
            # d(1/(var+eps))/dn = -(2/K)(n - mean)/(var+eps)^2 per member.
            k_elements = flat.shape[1]
            scale = (
                lambda_vec * (-2.0 / k_elements) * privacy * privacy
            ).reshape(member_shape)
            centered = noise.data - mean.astype(np.float32).reshape(member_shape)
            grad_noise = (scale * centered).astype(np.float32)
            sign = 1.0

        total_value = float(cross_entropies.sum(dtype=np.float64)) + reg_value

        def backward(grad: np.ndarray) -> None:
            probs = np.divide(exp_z, denom, out=exp_z)
            probs[rows, targets] -= 1.0
            probs *= grad / per_member
            logits.accumulate_grad(probs)
            noise.accumulate_grad(grad * grad_noise)

        total = Tensor._make(np.asarray(total_value), (logits, noise), backward)
        return total, cross_entropies, privacy, sign

    def with_lambda(self, lambda_coeff: float) -> "ShredderLoss":
        """A copy with a different ``λ`` (used by the decay schedule)."""
        return ShredderLoss(lambda_coeff, self.variant)
