"""Shredder's loss functions (paper Eq. 2 and Eq. 3).

Eq. 2:  ``CE(y, p) + λ · 1/σ²(n)``   — penalise *small* noise variance.
Eq. 3:  ``CE(y, p) − λ · Σ_i |n_i|`` — the "anti-weight-decay" form the
paper actually trains with: the update is the opposite of L2/L1 weight
decay, growing the noise magnitude instead of shrinking it.

``λ`` is the knob trading accuracy for privacy (§2.4): too large and the
noise growth swamps accuracy recovery; too small and privacy stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.noise_tensor import NoiseTensor
from repro.errors import ConfigurationError
from repro.nn import Tensor
from repro.nn import functional as F

_VARIANTS = ("l1", "inverse_variance")


@dataclass(frozen=True)
class LossParts:
    """Decomposition of one loss evaluation (for curves and debugging)."""

    total: float
    cross_entropy: float
    privacy_term: float
    lambda_coeff: float


class ShredderLoss:
    """Accuracy/privacy loss over (logits, targets, noise).

    Args:
        lambda_coeff: The privacy knob ``λ`` (paper uses 0.01 / 0.001 /
            0.0001 depending on network size).
        variant: ``"l1"`` for Eq. 3 (default, what the paper trains with)
            or ``"inverse_variance"`` for Eq. 2.
    """

    def __init__(self, lambda_coeff: float, variant: str = "l1") -> None:
        if lambda_coeff < 0:
            raise ConfigurationError(f"lambda must be non-negative, got {lambda_coeff}")
        if variant not in _VARIANTS:
            raise ConfigurationError(
                f"unknown variant {variant!r}; options: {_VARIANTS}"
            )
        self.lambda_coeff = float(lambda_coeff)
        self.variant = variant

    def __call__(
        self, logits: Tensor, targets: np.ndarray, noise: NoiseTensor
    ) -> tuple[Tensor, LossParts]:
        """Evaluate the loss.

        Returns:
            The differentiable total loss plus a float decomposition.
        """
        cross_entropy = F.cross_entropy(logits, targets)
        if self.variant == "l1":
            privacy = noise.abs().sum()
            total = cross_entropy - privacy * self.lambda_coeff
        else:
            mean = noise.mean()
            variance = (noise * noise).mean() - mean * mean
            privacy = 1.0 / (variance + 1e-12)
            total = cross_entropy + privacy * self.lambda_coeff
        parts = LossParts(
            total=total.item(),
            cross_entropy=cross_entropy.item(),
            privacy_term=privacy.item(),
            lambda_coeff=self.lambda_coeff,
        )
        return total, parts

    def with_lambda(self, lambda_coeff: float) -> "ShredderLoss":
        """A copy with a different ``λ`` (used by the decay schedule)."""
        return ShredderLoss(lambda_coeff, self.variant)
