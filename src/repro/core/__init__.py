"""``repro.core`` — Shredder's noise-learning framework (the paper's
primary contribution).

* :class:`NoiseTensor` — the trainable additive noise (§2.1, §2.4).
* :class:`ShredderLoss` — Eq. 2 / Eq. 3 accuracy-privacy loss.
* :class:`NoiseTrainer` — gradient-based noise training with λ schedules.
* :class:`NoiseCollection` — noise distribution sampling (§2.5).
* :class:`SplitInferenceModel` — the edge/cloud split runtime (Figure 2).
* :class:`ShredderPipeline` — end-to-end train + measure.
"""

from repro.core.activation_cache import (
    ActivationCache,
    clear_activation_cache,
    get_activation_cache,
    materialize_activations_cached,
)
from repro.core.adaptive import (
    OperatingPointSearch,
    SearchProbe,
    SearchResult,
    accuracy_budget_evaluator,
    require_converged,
)
from repro.core.baselines import (
    activation_sensitivity,
    laplace_mechanism_noise,
    matched_variance_noise,
)
from repro.core.distribution import DistributionSummary, FittedNoiseDistribution
from repro.core.loss import LossParts, ShredderLoss
from repro.core.noise_tensor import MultiNoiseTensor, NoiseTensor
from repro.core.pipeline import ShredderPipeline, ShredderReport
from repro.core.sampler import (
    NoiseCollection,
    NoiseSample,
    NoiseStream,
    collect_noise_distribution,
)
from repro.core.schedules import ConstantLambda, DecayOnTarget, LambdaSchedule
from repro.core.snr import (
    in_vivo_privacy,
    in_vivo_privacy_from_power,
    in_vivo_privacy_members,
    noise_variance,
    noise_variance_members,
    signal_power,
    snr,
)
from repro.core.split import SplitInferenceModel
from repro.core.trainer import NoiseTrainer, NoiseTrainingHistory, NoiseTrainingResult

__all__ = [
    "ActivationCache",
    "ConstantLambda",
    "DecayOnTarget",
    "DistributionSummary",
    "FittedNoiseDistribution",
    "MultiNoiseTensor",
    "OperatingPointSearch",
    "SearchProbe",
    "SearchResult",
    "accuracy_budget_evaluator",
    "activation_sensitivity",
    "laplace_mechanism_noise",
    "matched_variance_noise",
    "require_converged",
    "LambdaSchedule",
    "LossParts",
    "NoiseCollection",
    "NoiseStream",
    "NoiseSample",
    "NoiseTensor",
    "NoiseTrainer",
    "NoiseTrainingHistory",
    "NoiseTrainingResult",
    "ShredderLoss",
    "ShredderPipeline",
    "ShredderReport",
    "SplitInferenceModel",
    "clear_activation_cache",
    "collect_noise_distribution",
    "get_activation_cache",
    "in_vivo_privacy",
    "in_vivo_privacy_from_power",
    "in_vivo_privacy_members",
    "materialize_activations_cached",
    "noise_variance",
    "noise_variance_members",
    "signal_power",
    "snr",
]
