"""Gradient-based noise training (the paper's core algorithm).

The training loop of §2.4/§3.2: freeze the network, cast the noise as a
trainable tensor at the cut point, and minimise
``CE(R(a + n), y) − λ Σ|n_i|`` with Adam.  Because the local half is frozen
and not a function of the noise, its activations are precomputed once and
the loop only evaluates the remote half — mathematically identical to
running the full network (``∂L/∂n`` does not involve ``L(x, θ₁)``).

Two training entry points share that machinery:

Intermediate held-out accuracy probes can run on a rotating eval subset
(``eval_subset``) instead of the full eval set — probing only reads, so the
trained noise is unchanged while collection training stops paying the
full-eval-set cost every ``eval_every`` steps (the final probe stays
full-set).

* :meth:`NoiseTrainer.train` — one noise tensor, the paper's loop.
* :meth:`NoiseTrainer.train_many` — all M members of a §2.5 noise
  collection at once.  The remote half is frozen and identical for every
  member, so the M independent mini-batches are stacked along the batch
  axis and trained by ONE forward/backward per step.  Per-member batch
  orders are drawn from the shared RNG in member order — exactly the
  stream M sequential ``train`` calls would consume — and the summed
  per-member loss hands each member's noise slice precisely its own
  gradient, so batched results match sequential training (same seeds)
  within floating-point tolerance at a fraction of the wall clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.activation_cache import materialize_activations_cached
from repro.core.loss import ShredderLoss
from repro.core.noise_tensor import MultiNoiseTensor, NoiseTensor
from repro.core.schedules import ConstantLambda, LambdaSchedule
from repro.core.snr import (
    in_vivo_privacy_from_power,
    in_vivo_privacy_members,
    signal_power,
)
from repro.core.split import SplitInferenceModel
from repro.errors import TrainingError
from repro.nn import Adam, Dataset, Tensor


@dataclass
class NoiseTrainingHistory:
    """Per-iteration training curves (Figure 4's raw material)."""

    iterations: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    cross_entropies: list[float] = field(default_factory=list)
    in_vivo_privacies: list[float] = field(default_factory=list)
    lambdas: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    accuracy_iterations: list[int] = field(default_factory=list)


@dataclass
class NoiseTrainingResult:
    """Outcome of one noise-training run.

    Attributes:
        noise: The trained per-batch-broadcast noise ``(1, C, H, W)``.
        history: Training curves.
        final_in_vivo_privacy: ``σ²(n)/E[a²]`` at the end.
        final_accuracy: Noisy accuracy on the held-out activations.
        signal_power: The constant ``E[a²]`` used during training.
        epochs: Equivalent passes over the training activations.
    """

    noise: np.ndarray
    history: NoiseTrainingHistory
    final_in_vivo_privacy: float
    final_accuracy: float
    signal_power: float
    epochs: float


def _member_noisy_batch(activations: np.ndarray, bank: MultiNoiseTensor) -> Tensor:
    """Member-stacked noisy activations as one fused tape node.

    Forward: broadcast-add each member's noise slice to its own
    ``(rows, ...)`` block of the ``(M, rows, ...)`` gathered activations
    and flatten to ``(M*rows, ...)``.  Backward: the adjoint of the
    broadcast — sum the incoming gradient over each member's rows — lands
    directly on the bank.  One tape node instead of a reshape/add/reshape
    chain; this runs once per training step.
    """
    m, rows = activations.shape[:2]
    shape = bank.activation_shape
    out = (activations + bank.data[:, None]).reshape(m * rows, *shape)

    def backward(grad: np.ndarray) -> None:
        bank.accumulate_grad(grad.reshape(m, rows, *shape).sum(axis=1))

    return Tensor._make(out, (bank,), backward)


class _StreamingEvalPlan:
    """Rotating eval-subset index stream for cheap accuracy probes.

    Each probe takes the next ``subset`` indices of a shuffled permutation
    of the eval set, re-shuffling when exhausted — over many probes the
    whole set is covered (streaming), while each individual probe costs
    ``subset / n`` of a full evaluation.  The plan owns its generator so
    probing never perturbs the training batch stream (which is what keeps
    subset-eval runs bit-identical in their trained noise to full-eval
    runs).
    """

    def __init__(self, n: int, subset: int, rng: np.random.Generator) -> None:
        if subset < 1:
            raise TrainingError(f"eval subset must be >= 1, got {subset}")
        self.n = n
        self.subset = min(subset, n)
        self._rng = rng
        self._order = rng.permutation(n)
        self._cursor = 0

    def indices(self) -> np.ndarray:
        """The next probe's eval-set indices."""
        if self._cursor + self.subset > self.n:
            self._order = self._rng.permutation(self.n)
            self._cursor = 0
        window = self._order[self._cursor : self._cursor + self.subset]
        self._cursor += self.subset
        return window


class NoiseTrainer:
    """Trains noise tensors for a split model.

    Args:
        split: The split backbone (weights frozen by the caller).
        train_set: Dataset whose activations drive the optimisation.
        eval_set: Held-out dataset for accuracy tracking.
        loss: The Shredder loss (λ inside is overridden by ``schedule``).
        schedule: λ schedule; defaults to the loss's constant λ.
        lr: Adam learning rate for the noise tensor.
        batch_size: Mini-batch size over cached activations.
        eval_every: Iterations between held-out accuracy measurements.
        rng: Randomness for batching (noise init happens outside).
        eval_subset: When set, intermediate ``eval_every`` accuracy probes
            use a rotating subset of this many held-out samples instead of
            the full eval set (the final probe always runs on the full set,
            so ``final_accuracy`` stays unbiased).  Subset probing never
            touches the batching RNG, so the trained noise is unchanged.
        eval_rng: Randomness for the subset rotation (fixed default seed).
    """

    def __init__(
        self,
        split: SplitInferenceModel,
        train_set: Dataset,
        eval_set: Dataset,
        loss: ShredderLoss,
        schedule: LambdaSchedule | None = None,
        lr: float = 1e-2,
        batch_size: int = 32,
        eval_every: int = 20,
        rng: np.random.Generator | None = None,
        eval_subset: int | None = None,
        eval_rng: np.random.Generator | None = None,
    ) -> None:
        self.split = split
        self.loss = loss
        self.schedule = schedule or ConstantLambda(loss.lambda_coeff)
        self.lr = lr
        self.batch_size = batch_size
        self.eval_every = eval_every
        self._rng = rng or np.random.default_rng()
        self.eval_subset = eval_subset
        self._eval_rng = eval_rng or np.random.default_rng(0)
        self._eval_plan: _StreamingEvalPlan | None = None
        # The backbone is frozen *and* in eval mode throughout noise
        # training: BatchNorm uses its running statistics and dropout is
        # inactive, exactly as at deployment time.
        split.model.eval()
        # Materialisation goes through the process-wide activation cache:
        # repeated pipelines over the same (model, cut, dataset) — λ sweeps,
        # benchmark suites — skip the local-half forward pass entirely.
        self.train_activations, self.train_labels = materialize_activations_cached(
            split, train_set
        )
        self.eval_activations, self.eval_labels = materialize_activations_cached(
            split, eval_set
        )
        # E[a²] is a constant of the frozen network (paper §2.4: "the
        # numerator in our SNR formulation is constant").
        self.signal_power = signal_power(self.train_activations)

    # ------------------------------------------------------------------
    # Accuracy probing (streaming subset evaluator)
    # ------------------------------------------------------------------
    def _probe_indices(self, final: bool) -> np.ndarray | None:
        """Eval rows for one accuracy probe (``None`` = whole eval set)."""
        if (
            final
            or self.eval_subset is None
            or self.eval_subset >= len(self.eval_labels)
        ):
            return None
        if self._eval_plan is None:
            self._eval_plan = _StreamingEvalPlan(
                len(self.eval_labels), self.eval_subset, self._eval_rng
            )
        return self._eval_plan.indices()

    def _probe_accuracy(self, noise_data: np.ndarray, final: bool) -> float:
        """One accuracy probe for a single noise tensor."""
        indices = self._probe_indices(final)
        if indices is None:
            return self.split.accuracy_from_activations(
                self.eval_activations, self.eval_labels, noise_data
            )
        return self.split.accuracy_from_activations(
            self.eval_activations[indices], self.eval_labels[indices], noise_data
        )

    def _probe_accuracy_multi(
        self, bank_data: np.ndarray, batch_size: int, final: bool
    ) -> np.ndarray:
        """One per-member accuracy probe for a noise bank."""
        indices = self._probe_indices(final)
        if indices is None:
            activations, labels = self.eval_activations, self.eval_labels
        else:
            activations = self.eval_activations[indices]
            labels = self.eval_labels[indices]
        return self.split.accuracy_from_activations_multi(
            activations, labels, bank_data, batch_size=batch_size
        )

    # ------------------------------------------------------------------
    # Batch planning
    # ------------------------------------------------------------------
    def _batch_plan(self, iterations: int) -> np.ndarray:
        """Draw one run's mini-batch index sequence from the shared RNG.

        Replicates the lazy shuffled-epoch logic the training loop always
        used (an initial permutation, re-shuffled whenever a full batch no
        longer fits), consuming the RNG identically — so M sequential
        ``train`` calls and one ``train_many(M)`` call see member-for-member
        identical batches.

        Returns:
            ``(iterations, batch_size)`` index matrix (row = one step).
            When ``batch_size > n`` every step is a fresh whole-set
            permutation and the rows have length ``n`` instead.
        """
        n = len(self.train_labels)
        batch = self.batch_size
        if batch > n:
            # Degenerate geometry: the loop re-shuffles every step and the
            # batch is the whole (permuted) training set.
            self._rng.permutation(n)  # the unused initial permutation
            return np.stack([self._rng.permutation(n) for _ in range(iterations)])
        per_epoch = n // batch
        epochs = -(-iterations // per_epoch)
        # One permutation per epoch with the ragged tail discarded — the
        # exact index stream the lazy loop produces, drawn in one shot.
        flat = np.concatenate(
            [self._rng.permutation(n)[: per_epoch * batch] for _ in range(epochs)]
        )
        return flat.reshape(-1, batch)[:iterations]

    def _check_noise_shape(self, per_sample_shape: tuple[int, ...]) -> None:
        if per_sample_shape != self.split.activation_shape:
            raise TrainingError(
                f"noise shape {per_sample_shape} does not match the "
                f"activation shape {self.split.activation_shape} at cut "
                f"{self.split.cut!r}"
            )

    # ------------------------------------------------------------------
    # Single-tensor training (paper §2.4)
    # ------------------------------------------------------------------
    def train(self, noise: NoiseTensor, iterations: int) -> NoiseTrainingResult:
        """Run ``iterations`` Adam steps on ``noise`` and measure curves."""
        if iterations <= 0:
            raise TrainingError(f"iterations must be positive, got {iterations}")
        self._check_noise_shape(noise.per_sample.shape)
        optimizer = Adam([noise], lr=self.lr)
        history = NoiseTrainingHistory()
        n = len(self.train_labels)
        plan = self._batch_plan(iterations)
        for step, batch in enumerate(plan):
            privacy = in_vivo_privacy_from_power(self.signal_power, noise.data)
            lambda_now = self.schedule.coefficient(step, privacy)
            loss_fn = self.loss.with_lambda(lambda_now)

            activations = Tensor(self.train_activations[batch])
            logits = self.split.remote(activations + noise)
            total, parts = loss_fn(logits, self.train_labels[batch], noise)
            if not np.isfinite(parts.total):
                raise TrainingError(
                    f"noise training diverged at iteration {step} "
                    f"(loss={parts.total})"
                )
            optimizer.zero_grad()
            total.backward()
            optimizer.step()

            history.iterations.append(step)
            history.losses.append(parts.total)
            history.cross_entropies.append(parts.cross_entropy)
            history.in_vivo_privacies.append(privacy)
            history.lambdas.append(lambda_now)
            if step % self.eval_every == 0 or step == iterations - 1:
                accuracy = self._probe_accuracy(
                    noise.data, final=step == iterations - 1
                )
                history.accuracies.append(accuracy)
                history.accuracy_iterations.append(step)

        final_privacy = in_vivo_privacy_from_power(self.signal_power, noise.data)
        return NoiseTrainingResult(
            noise=noise.data.copy(),
            history=history,
            final_in_vivo_privacy=final_privacy,
            final_accuracy=history.accuracies[-1],
            signal_power=self.signal_power,
            epochs=iterations * self.batch_size / n,
        )

    # ------------------------------------------------------------------
    # Batched multi-member training (paper §2.5, one loop for M members)
    # ------------------------------------------------------------------
    def train_many(
        self,
        noises: Sequence[NoiseTensor] | MultiNoiseTensor,
        iterations: int,
    ) -> list[NoiseTrainingResult]:
        """Train M noise members simultaneously in one batched loop.

        Every step stacks the members' mini-batches into one ``(M*B, ...)``
        activation batch, adds each member's noise slice to its own rows,
        runs a single remote forward/backward, and applies one Adam step to
        the ``(M, ...)`` noise bank.  The summed per-member loss (see
        :meth:`ShredderLoss.many`) makes each slice's gradient — and hence
        Adam's elementwise update — identical to what M sequential
        :meth:`train` calls would produce from the same initialisations,
        while amortising all per-op overhead M-fold.

        Per-member λ schedules are independent clones of ``self.schedule``,
        so decay-on-target members trigger individually.

        Args:
            noises: Per-member initialisations, or a ready-made bank.
            iterations: Adam steps (each trains every member once).

        Returns:
            One :class:`NoiseTrainingResult` per member, in input order.
        """
        if iterations <= 0:
            raise TrainingError(f"iterations must be positive, got {iterations}")
        if isinstance(noises, MultiNoiseTensor):
            bank = noises
        else:
            if len(noises) == 0:
                raise TrainingError("train_many needs at least one noise member")
            bank = MultiNoiseTensor.from_members(list(noises))
        self._check_noise_shape(bank.activation_shape)
        m = bank.n_members
        n = len(self.train_labels)
        batch = self.batch_size
        schedules = [self.schedule.clone() for _ in range(m)]
        # Member-major draws replicate the RNG stream of sequential runs;
        # (iterations, M, rows) so each step is a single 2-D gather.
        plan_matrix = np.stack(
            [self._batch_plan(iterations) for _ in range(m)], axis=1
        )

        optimizer = Adam([bank], lr=self.lr)
        # History columns are recorded as arrays and unpacked once at the
        # end: per-member Python bookkeeping inside the step loop would
        # cost as much as the optimiser step itself.
        ce_col = np.empty((iterations, m))
        privacy_col = np.empty((iterations, m))
        reg_col = np.empty((iterations, m))
        lambda_col = np.empty((iterations, m))
        reg_sign = 1.0
        eval_steps: list[int] = []
        eval_rows: list[np.ndarray] = []
        # Constant-λ schedules (the default) do not consume the per-step
        # privacy, so the history variances can be computed in one
        # vectorised pass over per-step bank snapshots after the loop.
        # Snapshots cost (iterations × bank) memory, so large geometries
        # fall back to the per-step computation.
        constant_lambda = all(
            isinstance(schedule, ConstantLambda) for schedule in schedules
        ) and iterations * bank.data.size <= 32_000_000
        if constant_lambda:
            fixed_lambdas = [schedule.value for schedule in schedules]
            lambda_col[:] = fixed_lambdas
            bank_snapshots = np.empty((iterations, *bank.data.shape), dtype=np.float32)
        for step in range(iterations):
            if constant_lambda:
                bank_snapshots[step] = bank.data
                lambdas = fixed_lambdas
            else:
                privacies = in_vivo_privacy_members(self.signal_power, bank.data)
                privacy_col[step] = privacies
                lambdas = [
                    schedules[i].coefficient(step, privacies[i]) for i in range(m)
                ]
                lambda_col[step] = lambdas
            indices = plan_matrix[step]
            noisy = _member_noisy_batch(self.train_activations[indices], bank)
            logits = self.split.remote(noisy)
            targets = self.train_labels[indices].reshape(-1)
            total, cross_entropies, reg_terms, reg_sign = self.loss.many_arrays(
                logits, targets, bank, lambdas
            )
            if not math.isfinite(float(total.data)):
                raise TrainingError(
                    f"noise training diverged at iteration {step} "
                    f"(member losses {cross_entropies + reg_sign * np.asarray(lambdas) * reg_terms})"
                )
            optimizer.zero_grad()
            total.backward()
            optimizer.step()

            ce_col[step] = cross_entropies
            reg_col[step] = reg_terms
            if step % self.eval_every == 0 or step == iterations - 1:
                # Fewer, fuller remote passes are the whole point of the
                # multi-member evaluator; cap total rows to bound memory
                # on wide activations.
                eval_steps.append(step)
                eval_rows.append(
                    self._probe_accuracy_multi(
                        bank.data,
                        batch_size=min(4096, 1024 * m),
                        final=step == iterations - 1,
                    )
                )

        if constant_lambda:
            # Two-pass variance over every (step, member) snapshot,
            # chunked so the float64 centering temporary stays small.
            flat = bank_snapshots.reshape(iterations * m, -1)
            variances = np.empty(len(flat))
            rows_per_chunk = max(1, 4_000_000 // max(1, flat.shape[1]))
            for start in range(0, len(flat), rows_per_chunk):
                stop = min(start + rows_per_chunk, len(flat))
                block = flat[start:stop]
                means = block.mean(axis=1, dtype=np.float64)
                centered = block - means[:, None]
                variances[start:stop] = (
                    np.einsum("ij,ij->i", centered, centered) / flat.shape[1]
                )
            privacy_col[:] = (variances / self.signal_power).reshape(iterations, m)
        totals_col = ce_col + reg_sign * lambda_col * reg_col
        accuracy_matrix = np.stack(eval_rows)
        steps = list(range(iterations))
        final_privacies = in_vivo_privacy_members(self.signal_power, bank.data)
        results = []
        for i in range(m):
            history = NoiseTrainingHistory(
                iterations=steps.copy(),
                losses=totals_col[:, i].tolist(),
                cross_entropies=ce_col[:, i].tolist(),
                in_vivo_privacies=privacy_col[:, i].tolist(),
                lambdas=lambda_col[:, i].tolist(),
                accuracies=accuracy_matrix[:, i].tolist(),
                accuracy_iterations=eval_steps.copy(),
            )
            results.append(
                NoiseTrainingResult(
                    noise=bank.member(i).copy(),
                    history=history,
                    final_in_vivo_privacy=float(final_privacies[i]),
                    final_accuracy=history.accuracies[-1],
                    signal_power=self.signal_power,
                    epochs=iterations * batch / n,
                )
            )
        return results
