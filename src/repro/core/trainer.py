"""Gradient-based noise training (the paper's core algorithm).

The training loop of §2.4/§3.2: freeze the network, cast the noise as a
trainable tensor at the cut point, and minimise
``CE(R(a + n), y) − λ Σ|n_i|`` with Adam.  Because the local half is frozen
and not a function of the noise, its activations are precomputed once and
the loop only evaluates the remote half — mathematically identical to
running the full network (``∂L/∂n`` does not involve ``L(x, θ₁)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loss import ShredderLoss
from repro.core.noise_tensor import NoiseTensor
from repro.core.schedules import ConstantLambda, LambdaSchedule
from repro.core.snr import in_vivo_privacy_from_power, signal_power
from repro.core.split import SplitInferenceModel
from repro.errors import TrainingError
from repro.nn import Adam, Dataset, Tensor


@dataclass
class NoiseTrainingHistory:
    """Per-iteration training curves (Figure 4's raw material)."""

    iterations: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    cross_entropies: list[float] = field(default_factory=list)
    in_vivo_privacies: list[float] = field(default_factory=list)
    lambdas: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    accuracy_iterations: list[int] = field(default_factory=list)


@dataclass
class NoiseTrainingResult:
    """Outcome of one noise-training run.

    Attributes:
        noise: The trained per-batch-broadcast noise ``(1, C, H, W)``.
        history: Training curves.
        final_in_vivo_privacy: ``σ²(n)/E[a²]`` at the end.
        final_accuracy: Noisy accuracy on the held-out activations.
        signal_power: The constant ``E[a²]`` used during training.
        epochs: Equivalent passes over the training activations.
    """

    noise: np.ndarray
    history: NoiseTrainingHistory
    final_in_vivo_privacy: float
    final_accuracy: float
    signal_power: float
    epochs: float


class NoiseTrainer:
    """Trains one noise tensor for a split model.

    Args:
        split: The split backbone (weights frozen by the caller).
        train_set: Dataset whose activations drive the optimisation.
        eval_set: Held-out dataset for accuracy tracking.
        loss: The Shredder loss (λ inside is overridden by ``schedule``).
        schedule: λ schedule; defaults to the loss's constant λ.
        lr: Adam learning rate for the noise tensor.
        batch_size: Mini-batch size over cached activations.
        eval_every: Iterations between held-out accuracy measurements.
        rng: Randomness for batching (noise init happens outside).
    """

    def __init__(
        self,
        split: SplitInferenceModel,
        train_set: Dataset,
        eval_set: Dataset,
        loss: ShredderLoss,
        schedule: LambdaSchedule | None = None,
        lr: float = 1e-2,
        batch_size: int = 32,
        eval_every: int = 20,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.split = split
        self.loss = loss
        self.schedule = schedule or ConstantLambda(loss.lambda_coeff)
        self.lr = lr
        self.batch_size = batch_size
        self.eval_every = eval_every
        self._rng = rng or np.random.default_rng()
        # The backbone is frozen *and* in eval mode throughout noise
        # training: BatchNorm uses its running statistics and dropout is
        # inactive, exactly as at deployment time.
        split.model.eval()
        self.train_activations, self.train_labels = split.materialize_activations(
            train_set
        )
        self.eval_activations, self.eval_labels = split.materialize_activations(
            eval_set
        )
        # E[a²] is a constant of the frozen network (paper §2.4: "the
        # numerator in our SNR formulation is constant").
        self.signal_power = signal_power(self.train_activations)

    def train(self, noise: NoiseTensor, iterations: int) -> NoiseTrainingResult:
        """Run ``iterations`` Adam steps on ``noise`` and measure curves."""
        if iterations <= 0:
            raise TrainingError(f"iterations must be positive, got {iterations}")
        if noise.per_sample.shape != self.split.activation_shape:
            raise TrainingError(
                f"noise shape {noise.per_sample.shape} does not match the "
                f"activation shape {self.split.activation_shape} at cut "
                f"{self.split.cut!r}"
            )
        optimizer = Adam([noise], lr=self.lr)
        history = NoiseTrainingHistory()
        n = len(self.train_labels)
        order = self._rng.permutation(n)
        cursor = 0
        for step in range(iterations):
            if cursor + self.batch_size > n:
                order = self._rng.permutation(n)
                cursor = 0
            batch = order[cursor : cursor + self.batch_size]
            cursor += self.batch_size

            privacy = in_vivo_privacy_from_power(self.signal_power, noise.data)
            lambda_now = self.schedule.coefficient(step, privacy)
            loss_fn = self.loss.with_lambda(lambda_now)

            activations = Tensor(self.train_activations[batch])
            logits = self.split.remote(activations + noise)
            total, parts = loss_fn(logits, self.train_labels[batch], noise)
            if not np.isfinite(parts.total):
                raise TrainingError(
                    f"noise training diverged at iteration {step} "
                    f"(loss={parts.total})"
                )
            optimizer.zero_grad()
            total.backward()
            optimizer.step()

            history.iterations.append(step)
            history.losses.append(parts.total)
            history.cross_entropies.append(parts.cross_entropy)
            history.in_vivo_privacies.append(privacy)
            history.lambdas.append(lambda_now)
            if step % self.eval_every == 0 or step == iterations - 1:
                accuracy = self.split.accuracy_from_activations(
                    self.eval_activations, self.eval_labels, noise.data
                )
                history.accuracies.append(accuracy)
                history.accuracy_iterations.append(step)

        final_privacy = in_vivo_privacy_from_power(self.signal_power, noise.data)
        return NoiseTrainingResult(
            noise=noise.data.copy(),
            history=history,
            final_in_vivo_privacy=final_privacy,
            final_accuracy=history.accuracies[-1],
            signal_power=self.signal_power,
            epochs=iterations * self.batch_size / n,
        )
