"""Shredder reproduction — learning noise distributions to protect
inference privacy (Mireshghallah et al., ASPLOS 2020).

Packages:

* :mod:`repro.nn` — from-scratch autograd / layers / optimisers on numpy.
* :mod:`repro.datasets` — procedural surrogates for MNIST/CIFAR/SVHN/ImageNet.
* :mod:`repro.models` — LeNet / CifarNet / SvhnNet / AlexNet, splittable at
  any conv cut, with a pretrained cache.
* :mod:`repro.privacy` — kNN mutual-information estimators (ITE substitute),
  confidence intervals, and analytic SNR↔MI leakage brackets.
* :mod:`repro.core` — the Shredder noise-learning framework itself.
* :mod:`repro.edge` — cost / energy models, wire quantisation, the
  batch-invariant executor, and the simulated edge/cloud deployment.
* :mod:`repro.serve` — the throughput-oriented serving runtime: request
  queue, micro-batcher, batched wire frames, per-session metrics.
* :mod:`repro.attacks` — operational adversaries (reconstruction, label
  inference, re-identification) against the communicated tensors.
* :mod:`repro.eval` — the harness regenerating Table 1 and Figures 3-6.

Quickstart::

    from repro.config import Config, get_scale
    from repro.models import get_pretrained
    from repro.core import ShredderPipeline

    config = Config(scale=get_scale("tiny"))
    bundle = get_pretrained("lenet", config)
    pipeline = ShredderPipeline(bundle, lambda_coeff=1e-2, config=config)
    report = pipeline.run()
    print(report.mi_loss_percent, report.accuracy_loss_percent)
"""

from repro.config import Config, ExperimentScale, get_scale
from repro.core import ShredderPipeline, ShredderReport
from repro.models import get_pretrained

__version__ = "1.0.0"

__all__ = [
    "Config",
    "ExperimentScale",
    "ShredderPipeline",
    "ShredderReport",
    "get_pretrained",
    "get_scale",
    "__version__",
]
