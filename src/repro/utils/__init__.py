"""Small shared utilities."""

from repro.utils.summary import activation_statistics, model_summary

__all__ = ["activation_statistics", "model_summary"]
