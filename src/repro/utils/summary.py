"""Model summary printer (the ``torchsummary`` nicety).

Walks a :class:`~repro.models.base.SplittableModel` layer by layer and
tabulates output shapes, parameter counts, per-layer MACs, and which layers
are cut points — the quickest way to see where a network can be split and
what each choice would cost.
"""

from __future__ import annotations

import numpy as np

from repro.edge.costs import profile_network
from repro.eval.reporting import format_table
from repro.models.base import SplittableModel


def model_summary(model: SplittableModel) -> str:
    """Render a per-layer summary table for a splittable model."""
    profile = profile_network(model)
    cut_ends = {
        model.cut_point(name).end_index: name for name in model.cut_names()
    }
    rows = []
    total_params = 0
    total_macs = 0
    for index, (name, cost) in enumerate(zip(model.net.layer_names(), profile)):
        module = model.net[name]
        params = module.num_parameters()
        total_params += params
        total_macs += cost.macs
        rows.append(
            (
                name,
                type(module).__name__,
                f"{cost.output_elements}",
                f"{params}",
                f"{cost.macs}",
                f"cut:{cut_ends[index]}" if index in cut_ends else "",
            )
        )
    rows.append(("total", "", "", f"{total_params}", f"{total_macs}", ""))
    header = (
        f"{model.model_name}: input={model.input_shape}, "
        f"classes={model.num_classes}"
    )
    return format_table(
        ["layer", "type", "out elems", "params", "MACs", ""],
        rows,
        title=header,
    )


def activation_statistics(activations: np.ndarray) -> dict[str, float]:
    """Quick numeric profile of an activation batch (for diagnostics)."""
    activations = np.asarray(activations, dtype=np.float64)
    return {
        "mean": float(activations.mean()),
        "std": float(activations.std()),
        "min": float(activations.min()),
        "max": float(activations.max()),
        "power": float(np.mean(activations**2)),
        "sparsity": float((activations == 0).mean()),
    }
