"""Global configuration: scales, seeds, and cache locations.

The paper's experiments run on a GPU with the real MNIST / CIFAR-10 / SVHN /
ImageNet datasets.  This reproduction runs on CPU with procedurally generated
datasets, so every experiment accepts an :class:`ExperimentScale` that shrinks
dataset sizes, training epochs, and mutual-information sample counts to
something a laptop can do.  ``tiny`` is used by the test suite, ``small`` is
the default for benchmarks, and ``paper`` approaches the paper's sample
counts (still synthetic data).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

_SCALE_ENV_VAR = "REPRO_SCALE"
_CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Default global random seed.  All dataset generation, weight
#: initialisation, and noise initialisation derive their RNG streams from
#: this seed so experiments are reproducible end to end.
DEFAULT_SEED = 0x5EED


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing knobs for one experiment run.

    Attributes:
        name: Human-readable scale name (``tiny``/``small``/``paper``).
        train_samples: Number of training images per synthetic dataset.
        test_samples: Number of test images per synthetic dataset.
        model_epochs: Epochs used to pre-train a backbone model.
        noise_iterations: Gradient steps used to train a noise tensor.
        mi_samples: Samples drawn when estimating mutual information.
        mi_components: PCA components kept before kNN MI estimation.
        batch_size: Mini-batch size for both model and noise training.
    """

    name: str
    train_samples: int
    test_samples: int
    model_epochs: int
    noise_iterations: int
    mi_samples: int
    mi_components: int
    batch_size: int

    def scaled(self, factor: float) -> "ExperimentScale":
        """Return a copy with sample counts multiplied by ``factor``.

        Iteration counts are scaled as well; minimums of 1 are enforced so a
        very small factor still yields a runnable configuration.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return ExperimentScale(
            name=f"{self.name}*{factor:g}",
            train_samples=max(1, int(self.train_samples * factor)),
            test_samples=max(1, int(self.test_samples * factor)),
            model_epochs=max(1, int(self.model_epochs * factor)),
            noise_iterations=max(1, int(self.noise_iterations * factor)),
            mi_samples=max(8, int(self.mi_samples * factor)),
            mi_components=self.mi_components,
            batch_size=self.batch_size,
        )


TINY = ExperimentScale(
    name="tiny",
    train_samples=320,
    test_samples=96,
    model_epochs=6,
    noise_iterations=300,
    mi_samples=64,
    mi_components=8,
    batch_size=32,
)

SMALL = ExperimentScale(
    name="small",
    train_samples=2000,
    test_samples=400,
    model_epochs=8,
    noise_iterations=400,
    mi_samples=256,
    mi_components=12,
    batch_size=64,
)

PAPER = ExperimentScale(
    name="paper",
    train_samples=8000,
    test_samples=1500,
    model_epochs=20,
    noise_iterations=2000,
    mi_samples=1000,
    mi_components=16,
    batch_size=64,
)

_SCALES = {"tiny": TINY, "small": SMALL, "paper": PAPER}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve an :class:`ExperimentScale` by name.

    Args:
        name: ``tiny``, ``small``, ``paper``, or ``None`` to consult the
            ``REPRO_SCALE`` environment variable (default ``small``).

    Raises:
        ConfigurationError: If the name is not a known scale.
    """
    if name is None:
        name = os.environ.get(_SCALE_ENV_VAR, "small")
    key = name.strip().lower()
    if key not in _SCALES:
        raise ConfigurationError(
            f"unknown scale {name!r}; expected one of {sorted(_SCALES)}"
        )
    return _SCALES[key]


def cache_dir() -> Path:
    """Directory used to cache pre-trained model weights.

    Defaults to ``.repro_cache`` in the current working directory and can be
    overridden with the ``REPRO_CACHE_DIR`` environment variable.  The
    directory is created on first use.
    """
    root = Path(os.environ.get(_CACHE_ENV_VAR, ".repro_cache"))
    root.mkdir(parents=True, exist_ok=True)
    return root


@dataclass
class Config:
    """Top-level configuration bundle passed through the eval harness."""

    seed: int = DEFAULT_SEED
    scale: ExperimentScale = field(default_factory=get_scale)

    def child_seed(self, *tags: object) -> int:
        """Derive a deterministic sub-seed from the base seed and tags.

        The derivation is a simple stable hash so that independent parts of
        an experiment (dataset generation, weight init, noise init, ...) use
        decorrelated RNG streams while remaining reproducible.
        """
        value = self.seed & 0xFFFFFFFF
        for tag in tags:
            for byte in str(tag).encode("utf8"):
                value = (value * 1000003 + byte) & 0xFFFFFFFF
        return value
