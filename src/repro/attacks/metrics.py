"""Attack-quality metrics.

The paper quantifies privacy information-theoretically (1/MI, an
average-case measure).  The :mod:`repro.attacks` package complements that
with *operational* measures: how well concrete adversaries do against the
communicated tensors.  These helpers score reconstruction attacks
(MSE / PSNR against the true inputs) and inference attacks (accuracy,
advantage over chance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimatorError


def mean_squared_error(truth: np.ndarray, estimate: np.ndarray) -> float:
    """Per-element MSE between two equally shaped batches."""
    truth = np.asarray(truth, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if truth.shape != estimate.shape:
        raise EstimatorError(
            f"shape mismatch: {truth.shape} vs {estimate.shape}"
        )
    return float(np.mean((truth - estimate) ** 2))


def peak_signal_to_noise_ratio(
    truth: np.ndarray, estimate: np.ndarray, data_range: float = 1.0
) -> float:
    """PSNR in dB (higher = better reconstruction = worse privacy)."""
    mse = mean_squared_error(truth, estimate)
    if mse == 0:
        return float("inf")
    return 10.0 * math.log10(data_range * data_range / mse)


@dataclass(frozen=True)
class ReconstructionReport:
    """Outcome of a reconstruction attack.

    Attributes:
        mse: Mean squared error of the reconstructions.
        psnr_db: Peak signal-to-noise ratio (dB).
        baseline_mse: MSE of predicting the training-set mean image —
            the "knows nothing" floor an attack must beat.
        advantage: ``1 − mse / baseline_mse``; 0 means the attack learned
            nothing, 1 means perfect reconstruction.
    """

    mse: float
    psnr_db: float
    baseline_mse: float

    @property
    def advantage(self) -> float:
        if self.baseline_mse <= 0:
            return 0.0
        return 1.0 - self.mse / self.baseline_mse


@dataclass(frozen=True)
class InferenceAttackReport:
    """Outcome of a property-inference attack.

    Attributes:
        accuracy: Attacker's held-out accuracy on the private property.
        chance: Accuracy of always predicting the majority class.
        advantage: ``accuracy − chance`` (0 = the channel taught nothing).
    """

    accuracy: float
    chance: float

    @property
    def advantage(self) -> float:
        return self.accuracy - self.chance
