"""Blocked squared-distance computation shared by the matching attacks.

Both the nearest-neighbour inverter and the re-identification attack
reduce to the same primitive: squared Euclidean distances between a batch
of observed activations and a fixed reference set, computed via the
``||a-b||² = ||a||² + ||b||² - 2ab`` expansion — one GEMM per block of
observations, so the temporary distance matrix stays flat in the number of
observations (ROADMAP "attack loops" hot path).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

#: Upper bound on the elements of one observations × reference distance
#: block.
BLOCK_ELEMENTS = 4_000_000


def distance_block_rows(reference_size: int) -> int:
    """Observation rows per blocked distance computation."""
    return max(1, BLOCK_ELEMENTS // max(1, reference_size))


def iter_distance_blocks(
    observed: np.ndarray,
    reference: np.ndarray,
    reference_norms: np.ndarray,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(start_row, distances)`` blocks of the full distance matrix.

    Args:
        observed: ``(N, D)`` float64 observations.
        reference: ``(P, D)`` float64 reference set.
        reference_norms: Precomputed ``(P,)`` squared norms of the rows of
            ``reference``.
    """
    rows = distance_block_rows(len(reference))
    for start in range(0, len(observed), rows):
        block = observed[start : start + rows]
        cross = block @ reference.T
        block_norms = (block**2).sum(axis=1, keepdims=True)
        yield start, block_norms + reference_norms[None, :] - 2.0 * cross
