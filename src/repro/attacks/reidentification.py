"""Re-identification attack: *which* input produced this activation?

The sharpest operational privacy question for split inference: given an
observed (noisy) activation and a candidate pool of known inputs, can the
adversary pick out the one that generated it?  This is a matching attack
rather than a reconstruction — it needs no decoder, works at any
activation width, and its success rate has a direct interpretation
(probability the user is singled out of a crowd).

Protocol: the adversary holds the pool's *clean* activations (it can run
the public local network on its candidate inputs) and matches each
observed tensor to its nearest pool entry.  Reported are top-1 / top-k hit
rates against the ``1/pool`` chance floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks._matching import iter_distance_blocks
from repro.errors import ConfigurationError, EstimatorError


@dataclass(frozen=True)
class ReidentificationReport:
    """Outcome of a re-identification attack.

    Attributes:
        top1_rate: Fraction of observations whose true source ranked first.
        topk_rate: Fraction whose true source ranked within ``k``.
        k: The k of ``topk_rate``.
        pool_size: Candidate pool size.
        mean_rank: Mean (1-based) rank of the true source.
    """

    top1_rate: float
    topk_rate: float
    k: int
    pool_size: int
    mean_rank: float

    @property
    def chance_top1(self) -> float:
        """Chance-level top-1 rate (uniform guessing)."""
        return 1.0 / self.pool_size

    @property
    def chance_topk(self) -> float:
        """Chance-level top-k rate."""
        return min(self.k / self.pool_size, 1.0)

    @property
    def advantage(self) -> float:
        """Top-1 rate above chance, normalised to [~0, 1]."""
        return (self.top1_rate - self.chance_top1) / (1.0 - self.chance_top1)


class ReidentificationAttack:
    """Nearest-activation matching over a candidate pool.

    Args:
        pool_activations: ``(P, ...)`` clean activations of the candidate
            inputs (the adversary computes these itself with the public
            local network).
    """

    def __init__(self, pool_activations: np.ndarray) -> None:
        pool = np.asarray(pool_activations)
        if pool.ndim < 2 or len(pool) < 2:
            raise ConfigurationError(
                "candidate pool needs >= 2 activation tensors"
            )
        self._pool = pool.reshape(len(pool), -1).astype(np.float64)

    @property
    def pool_size(self) -> int:
        """Number of candidates."""
        return len(self._pool)

    def _flat_observed(self, observed: np.ndarray) -> np.ndarray:
        observed = np.asarray(observed)
        flat = observed.reshape(len(observed), -1).astype(np.float64)
        if flat.shape[1] != self._pool.shape[1]:
            raise EstimatorError(
                f"activation width {flat.shape[1]} does not match the pool "
                f"width {self._pool.shape[1]}"
            )
        return flat

    def rank_candidates(self, observed: np.ndarray) -> np.ndarray:
        """Candidate indices per observation, nearest first ``(N, P)``.

        The distance matrix is computed in observation blocks — one GEMM
        per block via the shared ``||a-b||²`` expansion helper — so memory
        stays flat in the number of observations while the matching itself
        is a single matrix op (no per-sample Python loop; see
        :meth:`rank_candidates_reference` for the retained loop form).
        """
        flat = self._flat_observed(observed)
        pool_norms = (self._pool**2).sum(axis=1)
        ranking = np.empty((len(flat), self.pool_size), dtype=np.int64)
        for start, distances in iter_distance_blocks(flat, self._pool, pool_norms):
            ranking[start : start + len(distances)] = np.argsort(
                distances, axis=1, kind="stable"
            )
        return ranking

    def rank_candidates_reference(self, observed: np.ndarray) -> np.ndarray:
        """Per-observation loop implementation (pre-vectorisation reference).

        Kept for parity tests and benchmarking.
        """
        flat = self._flat_observed(observed)
        pool_norms = (self._pool**2).sum(axis=1)
        ranking = np.empty((len(flat), self.pool_size), dtype=np.int64)
        for index, row in enumerate(flat):
            cross = self._pool @ row
            distances = (row @ row) + pool_norms - 2.0 * cross
            ranking[index] = np.argsort(distances, kind="stable")
        return ranking

    def evaluate(
        self, observed: np.ndarray, true_indices: np.ndarray, k: int = 5
    ) -> ReidentificationReport:
        """Score the attack on observations with known sources.

        Args:
            observed: ``(N, ...)`` observed (noisy) activations.
            true_indices: ``(N,)`` pool index that generated each one.
            k: Top-k threshold to report alongside top-1.
        """
        true_indices = np.asarray(true_indices).reshape(-1)
        observed = np.asarray(observed)
        if len(observed) != len(true_indices):
            raise EstimatorError(
                f"observations and labels must pair; got {len(observed)} vs "
                f"{len(true_indices)}"
            )
        if len(observed) == 0:
            raise EstimatorError("need at least one observation")
        if not 1 <= k <= self.pool_size:
            raise ConfigurationError(
                f"k must be in [1, {self.pool_size}], got {k}"
            )
        if true_indices.min() < 0 or true_indices.max() >= self.pool_size:
            raise EstimatorError("true indices outside the candidate pool")
        ranking = self.rank_candidates(observed)
        # Position of the true candidate within each observation's ranking.
        positions = np.argmax(ranking == true_indices[:, None], axis=1)
        return ReidentificationReport(
            top1_rate=float(np.mean(positions == 0)),
            topk_rate=float(np.mean(positions < k)),
            k=k,
            pool_size=self.pool_size,
            mean_rank=float(np.mean(positions + 1)),
        )


def run_reidentification(
    pool_activations: np.ndarray,
    observed_activations: np.ndarray,
    true_indices: np.ndarray | None = None,
    k: int = 5,
) -> ReidentificationReport:
    """Convenience wrapper: build the attack and score it in one call.

    When ``true_indices`` is omitted, observation ``i`` is assumed to come
    from pool entry ``i`` (the common "noisy copy of the pool" setup).
    """
    attack = ReidentificationAttack(pool_activations)
    if true_indices is None:
        if len(observed_activations) != attack.pool_size:
            raise EstimatorError(
                "without explicit indices, observations must map 1:1 to the pool"
            )
        true_indices = np.arange(attack.pool_size)
    return attack.evaluate(observed_activations, true_indices, k=k)
