"""``repro.attacks`` — operational privacy validation.

The paper argues privacy via mutual information; this package attacks the
communicated tensors directly: nearest-neighbour and linear-decoder
reconstruction (:mod:`repro.attacks.reconstruction`) and an MLP
property-inference adversary (:mod:`repro.attacks.inference`).  Shredder's
noise sampling should collapse their advantage while leaving the cloud
task's accuracy intact.
"""

from repro.attacks.inference import ActivationClassifierAttack, run_inference_attack
from repro.attacks.metrics import (
    InferenceAttackReport,
    ReconstructionReport,
    mean_squared_error,
    peak_signal_to_noise_ratio,
)
from repro.attacks.reidentification import (
    ReidentificationAttack,
    ReidentificationReport,
    run_reidentification,
)
from repro.attacks.reconstruction import (
    LinearInverter,
    NearestNeighbourInverter,
    evaluate_reconstruction,
)

__all__ = [
    "ActivationClassifierAttack",
    "InferenceAttackReport",
    "LinearInverter",
    "NearestNeighbourInverter",
    "ReconstructionReport",
    "ReidentificationAttack",
    "ReidentificationReport",
    "run_reidentification",
    "evaluate_reconstruction",
    "mean_squared_error",
    "peak_signal_to_noise_ratio",
    "run_inference_attack",
]
