"""Input-reconstruction attacks against the communicated activations.

Two standard adversaries that try to invert ``a' = L(x) + n`` back to the
input image, given an attack corpus of (input, activation) pairs — the
threat model of a cloud provider or eavesdropper that has access to some
labelled traffic:

* :class:`NearestNeighbourInverter` — returns the input whose activation
  is closest to the observation (a strong non-parametric baseline).
* :class:`LinearInverter` — ridge-regression decoder from activation space
  back to pixel space (the classic linear model-inversion attack).

Shredder's success criterion: with sampled noise the attacks' advantage
should collapse toward zero while classification accuracy survives.
"""

from __future__ import annotations

import numpy as np

from repro.attacks._matching import iter_distance_blocks
from repro.attacks.metrics import (
    ReconstructionReport,
    mean_squared_error,
    peak_signal_to_noise_ratio,
)
from repro.errors import ConfigurationError, EstimatorError


def _flatten(batch: np.ndarray) -> np.ndarray:
    batch = np.asarray(batch)
    return batch.reshape(len(batch), -1).astype(np.float64)


class NearestNeighbourInverter:
    """Reconstruct inputs by nearest-neighbour search in activation space.

    Candidate matching runs as blocked matrix ops (the ``||a-b||²``
    expansion) rather than a per-sample Python loop; the loop form is kept
    as :meth:`reconstruct_reference` for parity testing.

    Args:
        corpus_inputs: ``(N, ...)`` attacker-known inputs.
        corpus_activations: ``(N, ...)`` matching observed activations.
    """

    def __init__(self, corpus_inputs: np.ndarray, corpus_activations: np.ndarray) -> None:
        if len(corpus_inputs) != len(corpus_activations):
            raise ConfigurationError("corpus inputs/activations must be paired")
        if len(corpus_inputs) == 0:
            raise ConfigurationError("attack corpus must not be empty")
        self._inputs = np.asarray(corpus_inputs)
        self._activations = _flatten(corpus_activations)
        self._corpus_norms = (self._activations**2).sum(axis=1)

    def _check_width(self, observed: np.ndarray) -> None:
        if observed.shape[1] != self._activations.shape[1]:
            raise EstimatorError(
                f"activation width {observed.shape[1]} does not match the "
                f"corpus width {self._activations.shape[1]}"
            )

    def match_indices(self, activations: np.ndarray) -> np.ndarray:
        """Corpus index of the nearest activation per observation."""
        observed = _flatten(activations)
        self._check_width(observed)
        best = np.empty(len(observed), dtype=np.int64)
        for start, distances in iter_distance_blocks(
            observed, self._activations, self._corpus_norms
        ):
            best[start : start + len(distances)] = distances.argmin(axis=1)
        return best

    def reconstruct(self, activations: np.ndarray) -> np.ndarray:
        """Best-match inputs for each observed activation."""
        return self._inputs[self.match_indices(activations)]

    def reconstruct_reference(self, activations: np.ndarray) -> np.ndarray:
        """Per-sample loop implementation (pre-vectorisation reference).

        Kept for parity tests and benchmarking; computes each observation's
        distances to the whole corpus one sample at a time.
        """
        observed = _flatten(activations)
        self._check_width(observed)
        best = np.empty(len(observed), dtype=np.int64)
        for index, row in enumerate(observed):
            deltas = self._activations - row[None, :]
            best[index] = (deltas**2).sum(axis=1).argmin()
        return self._inputs[best]


class LinearInverter:
    """Ridge-regression decoder from activations to pixels.

    Fits ``X ≈ A W + b`` on the attack corpus by solving the regularised
    normal equations; reconstruction quality on held-out traffic measures
    how much linearly-decodable input information the channel leaks.

    Args:
        ridge: L2 regularisation strength (stabilises the solve when the
            corpus is smaller than the activation width).
    """

    def __init__(self, ridge: float = 1e-2) -> None:
        if ridge <= 0:
            raise ConfigurationError(f"ridge must be positive, got {ridge}")
        self.ridge = ridge
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None
        self._input_shape: tuple[int, ...] | None = None

    def fit(self, corpus_inputs: np.ndarray, corpus_activations: np.ndarray) -> "LinearInverter":
        """Fit the decoder on the attack corpus."""
        if len(corpus_inputs) != len(corpus_activations):
            raise ConfigurationError("corpus inputs/activations must be paired")
        if len(corpus_inputs) < 2:
            raise ConfigurationError("attack corpus needs at least 2 samples")
        inputs = _flatten(corpus_inputs)
        activations = _flatten(corpus_activations)
        self._input_shape = np.asarray(corpus_inputs).shape[1:]
        a_mean = activations.mean(axis=0)
        x_mean = inputs.mean(axis=0)
        a_centered = activations - a_mean
        x_centered = inputs - x_mean
        gram = a_centered.T @ a_centered
        gram[np.diag_indices_from(gram)] += self.ridge * len(inputs)
        self._weights = np.linalg.solve(gram, a_centered.T @ x_centered)
        self._bias = x_mean - a_mean @ self._weights
        return self

    def reconstruct(self, activations: np.ndarray) -> np.ndarray:
        """Decode observed activations back to input space."""
        if self._weights is None:
            raise EstimatorError("LinearInverter must be fitted first")
        decoded = _flatten(activations) @ self._weights + self._bias
        return decoded.reshape(len(decoded), *self._input_shape).astype(np.float32)


def evaluate_reconstruction(
    truth_inputs: np.ndarray,
    reconstructions: np.ndarray,
    corpus_inputs: np.ndarray,
) -> ReconstructionReport:
    """Score reconstructions against the mean-image baseline."""
    mean_image = np.asarray(corpus_inputs).mean(axis=0, keepdims=True)
    baseline = np.broadcast_to(mean_image, np.asarray(truth_inputs).shape)
    return ReconstructionReport(
        mse=mean_squared_error(truth_inputs, reconstructions),
        psnr_db=peak_signal_to_noise_ratio(truth_inputs, reconstructions),
        baseline_mse=mean_squared_error(truth_inputs, baseline),
    )
