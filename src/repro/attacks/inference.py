"""Property-inference attack against the communicated activations.

An adversary that trains its own classifier (a small MLP built on
:mod:`repro.nn`) to predict a private property of the input — by default
the class label itself — from the tensors it observes on the wire.  This
operationalises the paper's mutual-information argument: if Shredder's
noise removes the excess information, an attacker's advantage over chance
should collapse for properties the cloud task does not need, and degrade
gracefully for the task label itself.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.attacks.metrics import InferenceAttackReport
from repro.errors import ConfigurationError
from repro.nn import Adam, CrossEntropyLoss, Linear, ReLU, Sequential, Tensor, no_grad


class ActivationClassifierAttack:
    """MLP attacker over flattened activations.

    Args:
        hidden: Hidden layer width.
        epochs: Training epochs over the attack corpus.
        batch_size: Mini-batch size.
        lr: Adam learning rate.
        rng: Weight-init / shuffling randomness.
    """

    def __init__(
        self,
        hidden: int = 64,
        epochs: int = 30,
        batch_size: int = 32,
        lr: float = 1e-3,
        rng: np.random.Generator | None = None,
    ) -> None:
        if epochs <= 0 or hidden <= 0:
            raise ConfigurationError("epochs and hidden width must be positive")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = rng or np.random.default_rng()
        self._model: Sequential | None = None

    def fit(self, activations: np.ndarray, labels: np.ndarray) -> "ActivationClassifierAttack":
        """Train the attacker on observed (activation, property) pairs."""
        flat = np.asarray(activations).reshape(len(activations), -1).astype(np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if len(flat) != len(labels):
            raise ConfigurationError("activations and labels must be paired")
        classes = int(labels.max()) + 1
        self._model = Sequential(
            Linear(flat.shape[1], self.hidden, rng=self._rng),
            ReLU(),
            Linear(self.hidden, classes, rng=self._rng),
        )
        optimizer = Adam(self._model.parameters(), lr=self.lr)
        criterion = CrossEntropyLoss()
        n = len(flat)
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                loss = criterion(self._model(Tensor(flat[batch])), labels[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return self

    def predict(self, activations: np.ndarray) -> np.ndarray:
        """Predicted property values for new observations."""
        if self._model is None:
            raise ConfigurationError("attack must be fitted before predicting")
        flat = np.asarray(activations).reshape(len(activations), -1).astype(np.float32)
        with no_grad():
            return self._model(Tensor(flat)).argmax(axis=1)

    def evaluate(
        self, activations: np.ndarray, labels: np.ndarray
    ) -> InferenceAttackReport:
        """Held-out attack accuracy vs the majority-class chance level."""
        labels = np.asarray(labels, dtype=np.int64)
        predictions = self.predict(activations)
        accuracy = float((predictions == labels).mean())
        counts = np.bincount(labels)
        chance = float(counts.max() / counts.sum())
        return InferenceAttackReport(accuracy=accuracy, chance=chance)


def run_inference_attack(
    train_activations: np.ndarray,
    train_labels: np.ndarray,
    test_activations: np.ndarray,
    test_labels: np.ndarray,
    property_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    rng: np.random.Generator | None = None,
    epochs: int = 30,
) -> InferenceAttackReport:
    """Convenience wrapper: fit on the corpus, report held-out advantage.

    Args:
        property_fn: Optional map from labels to the private property the
            attacker targets (e.g. ``lambda y: y % 2`` for digit parity);
            identity when omitted.
    """
    if property_fn is not None:
        train_labels = property_fn(np.asarray(train_labels))
        test_labels = property_fn(np.asarray(test_labels))
    attack = ActivationClassifierAttack(rng=rng or np.random.default_rng(0), epochs=epochs)
    attack.fit(train_activations, train_labels)
    return attack.evaluate(test_activations, test_labels)
