"""Procedural rendering primitives shared by the synthetic datasets.

Everything here is deterministic given an ``np.random.Generator`` and fully
vectorised per image.  The generators draw into float32 canvases in [0, 1];
channel layout is CHW to match the network input convention.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.errors import DatasetError


def blank_canvas(channels: int, size: int, fill: float = 0.0) -> np.ndarray:
    """A ``(channels, size, size)`` canvas filled with ``fill``."""
    return np.full((channels, size, size), fill, dtype=np.float32)


def coordinate_grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Row/column index grids for mask construction."""
    return np.mgrid[0:size, 0:size]


def paste_glyph(
    canvas: np.ndarray,
    glyph: np.ndarray,
    scale: float,
    angle_deg: float,
    shift: tuple[float, float],
    intensity: float = 1.0,
) -> np.ndarray:
    """Paste a rotated/scaled glyph onto a single-channel canvas.

    Args:
        canvas: ``(H, W)`` float canvas, modified out of place.
        glyph: Small bitmap to paste.
        scale: Up-scaling factor applied to the glyph.
        angle_deg: Rotation in degrees.
        shift: ``(dy, dx)`` translation of the glyph centre from the canvas
            centre, in pixels.
        intensity: Ink intensity.

    Returns:
        A new canvas with the glyph rendered (max-composited).
    """
    size = canvas.shape[0]
    enlarged = ndimage.zoom(glyph, zoom=scale, order=1, prefilter=False)
    if angle_deg:
        enlarged = ndimage.rotate(
            enlarged, angle_deg, reshape=True, order=1, prefilter=False
        )
    enlarged = np.clip(enlarged, 0.0, 1.0)
    gh, gw = enlarged.shape
    if gh > size or gw > size:
        # Centre-crop oversize glyphs so extreme augmentations stay valid.
        top = max(0, (gh - size) // 2)
        left = max(0, (gw - size) // 2)
        enlarged = enlarged[top : top + size, left : left + size]
        gh, gw = enlarged.shape
    row = int(round((size - gh) / 2 + shift[0]))
    col = int(round((size - gw) / 2 + shift[1]))
    row = int(np.clip(row, 0, size - gh))
    col = int(np.clip(col, 0, size - gw))
    out = canvas.copy()
    region = out[row : row + gh, col : col + gw]
    np.maximum(region, intensity * enlarged, out=region)
    return out


def disk_mask(size: int, center: tuple[float, float], radius: float) -> np.ndarray:
    """Boolean mask of a filled disk."""
    rows, cols = coordinate_grid(size)
    return (rows - center[0]) ** 2 + (cols - center[1]) ** 2 <= radius**2


def ring_mask(
    size: int, center: tuple[float, float], radius: float, thickness: float
) -> np.ndarray:
    """Boolean mask of an annulus."""
    rows, cols = coordinate_grid(size)
    dist2 = (rows - center[0]) ** 2 + (cols - center[1]) ** 2
    return (dist2 <= radius**2) & (dist2 >= (radius - thickness) ** 2)


def rect_mask(
    size: int, top: int, left: int, height: int, width: int
) -> np.ndarray:
    """Boolean mask of an axis-aligned rectangle."""
    mask = np.zeros((size, size), dtype=bool)
    mask[max(top, 0) : top + height, max(left, 0) : left + width] = True
    return mask


def triangle_mask(size: int, center: tuple[float, float], half: float) -> np.ndarray:
    """Boolean mask of an upward-pointing isoceles triangle."""
    rows, cols = coordinate_grid(size)
    rel_r = rows - (center[0] - half)
    within_height = (rel_r >= 0) & (rel_r <= 2 * half)
    spread = rel_r / 2.0
    within_width = np.abs(cols - center[1]) <= spread
    return within_height & within_width


def cross_mask(size: int, center: tuple[float, float], arm: float, width: float) -> np.ndarray:
    """Boolean mask of a plus sign."""
    rows, cols = coordinate_grid(size)
    horizontal = (np.abs(rows - center[0]) <= width) & (np.abs(cols - center[1]) <= arm)
    vertical = (np.abs(cols - center[1]) <= width) & (np.abs(rows - center[0]) <= arm)
    return horizontal | vertical


def stripes_mask(size: int, period: int, phase: int, vertical: bool) -> np.ndarray:
    """Boolean mask of parallel stripes."""
    if period < 2:
        raise DatasetError(f"stripe period must be >= 2, got {period}")
    rows, cols = coordinate_grid(size)
    axis = cols if vertical else rows
    return ((axis + phase) // (period // 2)) % 2 == 0


def checker_mask(size: int, cell: int, phase: int) -> np.ndarray:
    """Boolean mask of a checkerboard."""
    if cell < 1:
        raise DatasetError(f"checker cell must be >= 1, got {cell}")
    rows, cols = coordinate_grid(size)
    return (((rows + phase) // cell) + ((cols + phase) // cell)) % 2 == 0


def radial_gradient(size: int, center: tuple[float, float], radius: float) -> np.ndarray:
    """Float image falling off linearly from 1 at the centre to 0."""
    rows, cols = coordinate_grid(size)
    dist = np.sqrt((rows - center[0]) ** 2 + (cols - center[1]) ** 2)
    return np.clip(1.0 - dist / radius, 0.0, 1.0).astype(np.float32)


def linear_gradient(size: int, angle_rad: float) -> np.ndarray:
    """Float image ramping 0..1 along ``angle_rad``."""
    rows, cols = coordinate_grid(size)
    projection = rows * np.sin(angle_rad) + cols * np.cos(angle_rad)
    lo, hi = projection.min(), projection.max()
    return ((projection - lo) / max(hi - lo, 1e-8)).astype(np.float32)


def colorize(mask_or_gray: np.ndarray, color: np.ndarray) -> np.ndarray:
    """Lift a grayscale image to CHW using an RGB ``color`` vector."""
    gray = mask_or_gray.astype(np.float32)
    return np.stack([gray * float(c) for c in color])


def composite_over(base: np.ndarray, overlay: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Alpha-composite ``overlay`` over CHW ``base`` with HW ``alpha``."""
    return base * (1.0 - alpha[None]) + overlay * alpha[None]


def add_sensor_noise(
    image: np.ndarray, rng: np.random.Generator, sigma: float
) -> np.ndarray:
    """Additive Gaussian noise, clipped back to [0, 1]."""
    noisy = image + rng.normal(0.0, sigma, size=image.shape).astype(np.float32)
    return np.clip(noisy, 0.0, 1.0)


def blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian blur over the spatial dims of a CHW or HW image."""
    if image.ndim == 2:
        return ndimage.gaussian_filter(image, sigma=sigma).astype(np.float32)
    return np.stack(
        [ndimage.gaussian_filter(ch, sigma=sigma) for ch in image]
    ).astype(np.float32)


def random_color(rng: np.random.Generator, minimum: float = 0.2) -> np.ndarray:
    """A random RGB vector with at least one strong channel."""
    color = rng.uniform(minimum, 1.0, size=3).astype(np.float32)
    color[rng.integers(0, 3)] = rng.uniform(0.7, 1.0)
    return color
