"""``SynthDigits`` — the MNIST surrogate.

28x28 grayscale digits rendered from a dot-matrix font with random scale,
rotation, translation, stroke blur, and sensor noise.  Ten classes, one per
digit, mirroring the LeNet/MNIST benchmark of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SyntheticImageDataset
from repro.datasets.glyphs import digit_glyph
from repro.datasets.render import add_sensor_noise, blank_canvas, blur, paste_glyph


class SynthDigits(SyntheticImageDataset):
    """MNIST-like synthetic digit dataset (1x28x28, 10 classes)."""

    name = "synth_digits"
    num_classes = 10
    image_shape = (1, 28, 28)

    def render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        canvas = blank_canvas(1, 28)[0]
        scale = rng.uniform(2.2, 3.2)
        angle = rng.uniform(-20.0, 20.0)
        shift = (rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0))
        intensity = rng.uniform(0.8, 1.0)
        canvas = paste_glyph(canvas, digit_glyph(label), scale, angle, shift, intensity)
        canvas = blur(canvas, sigma=rng.uniform(0.4, 0.9))
        canvas = add_sensor_noise(canvas, rng, sigma=rng.uniform(0.02, 0.08))
        return canvas[None]
