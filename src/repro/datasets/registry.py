"""Dataset registry keyed by benchmark name.

The registry maps the paper's benchmark names to the synthetic surrogate
datasets, so the eval harness can say ``load_dataset("mnist", scale)`` and
receive the dataset LeNet trains on in this reproduction.
"""

from __future__ import annotations

from typing import Callable

from repro.config import ExperimentScale
from repro.datasets.base import SyntheticImageDataset
from repro.datasets.digits import SynthDigits
from repro.datasets.imagenet import SynthImageNet
from repro.datasets.objects import SynthObjects
from repro.datasets.svhn import SynthSVHN
from repro.errors import DatasetError

_FACTORIES: dict[str, Callable[..., SyntheticImageDataset]] = {
    "mnist": SynthDigits,
    "cifar": SynthObjects,
    "svhn": SynthSVHN,
    "imagenet": SynthImageNet,
}

#: Paper benchmark -> surrogate dataset name, for reporting.
SURROGATE_NAMES = {
    "mnist": SynthDigits.name,
    "cifar": SynthObjects.name,
    "svhn": SynthSVHN.name,
    "imagenet": SynthImageNet.name,
}


def dataset_names() -> list[str]:
    """All registered benchmark dataset keys."""
    return sorted(_FACTORIES)


def load_dataset(
    name: str, scale: ExperimentScale, seed: int = 0
) -> SyntheticImageDataset:
    """Instantiate the surrogate dataset for a paper benchmark.

    Args:
        name: One of ``mnist``, ``cifar``, ``svhn``, ``imagenet``.
        scale: Controls train/test sample counts.
        seed: Dataset RNG seed.
    """
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise DatasetError(f"unknown dataset {name!r}; options: {dataset_names()}")
    return _FACTORIES[key](
        train_samples=scale.train_samples, test_samples=scale.test_samples, seed=seed
    )
