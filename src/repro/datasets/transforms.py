"""Array transforms applied to whole datasets (normalisation etc.)."""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.nn.data import TensorDataset


def channel_statistics(images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel mean and std over an NCHW batch."""
    if images.ndim != 4:
        raise DatasetError(f"expected NCHW images, got shape {images.shape}")
    mean = images.mean(axis=(0, 2, 3))
    std = images.std(axis=(0, 2, 3))
    return mean.astype(np.float32), np.maximum(std, 1e-6).astype(np.float32)


def normalize(images: np.ndarray, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """Standardise an NCHW batch with per-channel statistics."""
    c = images.shape[1]
    return (images - mean.reshape(1, c, 1, 1)) / std.reshape(1, c, 1, 1)


def normalized_pair(
    train: TensorDataset, test: TensorDataset
) -> tuple[TensorDataset, TensorDataset, np.ndarray, np.ndarray]:
    """Normalise train/test with statistics computed on train only.

    Returns the normalised datasets plus the (mean, std) used, so that
    deployment-time inputs can be normalised identically on the edge device.
    """
    mean, std = channel_statistics(train.images)
    return (
        TensorDataset(normalize(train.images, mean, std), train.labels),
        TensorDataset(normalize(test.images, mean, std), test.labels),
        mean,
        std,
    )


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Flip a random subset of an NCHW batch left-right (augmentation)."""
    flip = rng.random(len(images)) < probability
    out = images.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out
