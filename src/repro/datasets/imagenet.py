"""``SynthImageNet`` — the ImageNet surrogate.

64x64 RGB compositional scenes over 20 classes.  Each class is a
(shape family, texture family) pair so that classification requires
combining two factors — a coarse stand-in for ImageNet's requirement of
combining shape and texture cues — while colour, pose, clutter and noise
remain nuisance variation.  Used by the AlexNet benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SyntheticImageDataset
from repro.datasets.render import (
    add_sensor_noise,
    blur,
    checker_mask,
    colorize,
    composite_over,
    cross_mask,
    disk_mask,
    linear_gradient,
    radial_gradient,
    random_color,
    rect_mask,
    ring_mask,
    stripes_mask,
    triangle_mask,
)

_SHAPES = ("disk", "square", "triangle", "ring", "cross")
_TEXTURES = ("solid", "stripes", "checker", "gradient")


def class_description(label: int) -> tuple[str, str]:
    """Map a class label to its (shape, texture) pair."""
    return _SHAPES[label % len(_SHAPES)], _TEXTURES[label // len(_SHAPES)]


class SynthImageNet(SyntheticImageDataset):
    """ImageNet-like compositional dataset (3x64x64, 20 classes)."""

    name = "synth_imagenet"
    num_classes = 20
    image_shape = (3, 64, 64)

    _SIZE = 64

    def _background(self, rng: np.random.Generator) -> np.ndarray:
        base = colorize(
            linear_gradient(self._SIZE, rng.uniform(0, np.pi)),
            random_color(rng) * rng.uniform(0.3, 0.6),
        )
        for _ in range(3):
            top, left = rng.integers(0, 48, size=2)
            mask = rect_mask(
                self._SIZE, int(top), int(left), int(rng.integers(8, 20)), int(rng.integers(8, 20))
            )
            base = composite_over(
                base, colorize(mask, random_color(rng) * 0.5), mask * rng.uniform(0.2, 0.5)
            )
        return base

    def _shape_mask(self, shape: str, rng: np.random.Generator) -> np.ndarray:
        size = self._SIZE
        center = (rng.uniform(22, 42), rng.uniform(22, 42))
        if shape == "disk":
            return disk_mask(size, center, rng.uniform(12, 18)).astype(np.float32)
        if shape == "square":
            edge = int(rng.integers(18, 30))
            return rect_mask(
                size, int(center[0] - edge / 2), int(center[1] - edge / 2), edge, edge
            ).astype(np.float32)
        if shape == "triangle":
            return triangle_mask(size, center, rng.uniform(12, 18)).astype(np.float32)
        if shape == "ring":
            return ring_mask(size, center, rng.uniform(14, 20), rng.uniform(4, 7)).astype(
                np.float32
            )
        return cross_mask(size, center, rng.uniform(14, 20), rng.uniform(3, 6)).astype(
            np.float32
        )

    def _texture(self, texture: str, rng: np.random.Generator) -> np.ndarray:
        size = self._SIZE
        if texture == "solid":
            return np.ones((size, size), dtype=np.float32)
        if texture == "stripes":
            return stripes_mask(
                size, int(rng.integers(6, 12)), int(rng.integers(0, 8)), bool(rng.integers(0, 2))
            ).astype(np.float32)
        if texture == "checker":
            return checker_mask(size, int(rng.integers(4, 9)), int(rng.integers(0, 8))).astype(
                np.float32
            )
        return radial_gradient(
            size, (rng.uniform(16, 48), rng.uniform(16, 48)), rng.uniform(20, 36)
        )

    def render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        shape_name, texture_name = class_description(label)
        image = self._background(rng)
        mask = self._shape_mask(shape_name, rng)
        textured = mask * np.clip(self._texture(texture_name, rng) + 0.25, 0.0, 1.0)
        overlay = colorize(textured, random_color(rng))
        image = composite_over(image, overlay, mask * rng.uniform(0.8, 1.0))
        image = blur(image, sigma=rng.uniform(0.0, 0.8))
        return add_sensor_noise(image, rng, sigma=rng.uniform(0.02, 0.06))
