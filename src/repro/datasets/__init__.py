"""``repro.datasets`` — procedural surrogates for the paper's datasets.

MNIST -> :class:`SynthDigits`, CIFAR-10 -> :class:`SynthObjects`,
SVHN -> :class:`SynthSVHN`, ImageNet -> :class:`SynthImageNet`.
See DESIGN.md §2 for why these substitutions preserve the experiments.
"""

from repro.datasets.base import SyntheticImageDataset
from repro.datasets.digits import SynthDigits
from repro.datasets.glyphs import all_digit_glyphs, digit_glyph
from repro.datasets.imagenet import SynthImageNet, class_description
from repro.datasets.objects import CLASS_NAMES as OBJECT_CLASS_NAMES
from repro.datasets.objects import SynthObjects
from repro.datasets.registry import (
    SURROGATE_NAMES,
    dataset_names,
    load_dataset,
)
from repro.datasets.svhn import SynthSVHN
from repro.datasets.transforms import (
    channel_statistics,
    normalize,
    normalized_pair,
    random_horizontal_flip,
)

__all__ = [
    "OBJECT_CLASS_NAMES",
    "SURROGATE_NAMES",
    "SynthDigits",
    "SynthImageNet",
    "SynthObjects",
    "SynthSVHN",
    "SyntheticImageDataset",
    "all_digit_glyphs",
    "channel_statistics",
    "class_description",
    "dataset_names",
    "digit_glyph",
    "load_dataset",
    "normalize",
    "normalized_pair",
    "random_horizontal_flip",
]
