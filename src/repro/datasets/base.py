"""Base class for the procedurally generated datasets.

The paper evaluates on MNIST, CIFAR-10, SVHN and ImageNet, none of which are
available in this offline environment.  Each surrogate dataset below
generates class-conditional images from a parametric renderer with nuisance
variation (position, rotation, colour, clutter, sensor noise), which is the
property the experiments rely on: intermediate activations carry both
task-relevant and excess information about the input.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.nn.data import TensorDataset


class SyntheticImageDataset:
    """A deterministic, class-balanced synthetic image dataset.

    Subclasses implement :meth:`render` (one image for a given label and
    RNG) and define :attr:`num_classes`, :attr:`image_shape`, and
    :attr:`name`.

    Args:
        train_samples: Number of training images.
        test_samples: Number of held-out test images.
        seed: Seed for the dataset's private RNG stream.
    """

    name: str = "synthetic"
    num_classes: int = 0
    image_shape: tuple[int, int, int] = (0, 0, 0)

    def __init__(self, train_samples: int, test_samples: int, seed: int = 0) -> None:
        if train_samples <= 0 or test_samples <= 0:
            raise DatasetError("sample counts must be positive")
        if self.num_classes <= 0:
            raise DatasetError(f"{type(self).__name__} must define num_classes")
        self.train_samples = train_samples
        self.test_samples = test_samples
        self.seed = seed
        self._train: TensorDataset | None = None
        self._test: TensorDataset | None = None

    # ------------------------------------------------------------------
    # Subclass API
    # ------------------------------------------------------------------
    def render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """Render one CHW image for ``label``."""
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def _generate(self, count: int, rng: np.random.Generator) -> TensorDataset:
        labels = np.arange(count) % self.num_classes
        rng.shuffle(labels)
        images = np.empty((count, *self.image_shape), dtype=np.float32)
        for i, label in enumerate(labels):
            images[i] = self.render(int(label), rng)
        return TensorDataset(images, labels.astype(np.int64))

    def train_set(self) -> TensorDataset:
        """Materialise (and cache) the training split."""
        if self._train is None:
            rng = np.random.default_rng(self.seed)
            self._train = self._generate(self.train_samples, rng)
        return self._train

    def test_set(self) -> TensorDataset:
        """Materialise (and cache) the test split (independent RNG stream)."""
        if self._test is None:
            rng = np.random.default_rng(self.seed + 1_000_003)
            self._test = self._generate(self.test_samples, rng)
        return self._test

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(train={self.train_samples}, "
            f"test={self.test_samples}, seed={self.seed})"
        )
