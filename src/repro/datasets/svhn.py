"""``SynthSVHN`` — the SVHN surrogate.

32x32 RGB street-number crops: a centred digit in a random colour over a
cluttered colour background, with partially visible distractor digits at
the edges (the defining nuisance of SVHN crops).  Label = centre digit.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SyntheticImageDataset
from repro.datasets.glyphs import digit_glyph
from repro.datasets.render import (
    add_sensor_noise,
    blank_canvas,
    blur,
    colorize,
    composite_over,
    linear_gradient,
    paste_glyph,
    random_color,
    rect_mask,
)


class SynthSVHN(SyntheticImageDataset):
    """SVHN-like synthetic digit dataset (3x32x32, 10 classes)."""

    name = "synth_svhn"
    num_classes = 10
    image_shape = (3, 32, 32)

    _SIZE = 32

    def _background(self, rng: np.random.Generator) -> np.ndarray:
        base = colorize(
            linear_gradient(self._SIZE, rng.uniform(0, np.pi)),
            random_color(rng) * rng.uniform(0.3, 0.6),
        )
        # A horizontal band, as on house-number plaques.
        top = int(rng.integers(4, 18))
        band = rect_mask(self._SIZE, top, 0, int(rng.integers(10, 18)), self._SIZE)
        base = composite_over(
            base, colorize(band, random_color(rng) * 0.5), band * rng.uniform(0.4, 0.8)
        )
        return base

    def _digit_layer(
        self,
        digit: int,
        rng: np.random.Generator,
        shift: tuple[float, float],
        scale_range: tuple[float, float],
    ) -> np.ndarray:
        layer = blank_canvas(1, self._SIZE)[0]
        layer = paste_glyph(
            layer,
            digit_glyph(digit),
            scale=rng.uniform(*scale_range),
            angle_deg=rng.uniform(-12.0, 12.0),
            shift=shift,
            intensity=1.0,
        )
        return layer

    def render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        image = self._background(rng)
        # Distractor digits clipped at the left/right edges.
        for side in (-1, 1):
            if rng.random() < 0.8:
                distractor = int(rng.integers(0, 10))
                mask = self._digit_layer(
                    distractor,
                    rng,
                    shift=(rng.uniform(-2, 2), side * rng.uniform(12, 16)),
                    scale_range=(2.0, 2.8),
                )
                image = composite_over(
                    image, colorize(mask, random_color(rng)), mask * rng.uniform(0.5, 0.9)
                )
        # Centre digit: the label.
        mask = self._digit_layer(
            label,
            rng,
            shift=(rng.uniform(-2.5, 2.5), rng.uniform(-2.5, 2.5)),
            scale_range=(2.4, 3.4),
        )
        image = composite_over(
            image, colorize(mask, random_color(rng)), mask * rng.uniform(0.85, 1.0)
        )
        image = blur(image, sigma=rng.uniform(0.2, 0.7))
        return add_sensor_noise(image, rng, sigma=rng.uniform(0.02, 0.07))
