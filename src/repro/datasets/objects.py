"""``SynthObjects`` — the CIFAR-10 surrogate.

32x32 RGB scenes of ten parametric object classes (disk, square, triangle,
ring, cross, horizontal stripes, vertical stripes, checkerboard, radial
blob, scatter of dots) over cluttered backgrounds.  Colours, positions,
sizes, and noise are nuisance variation.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SyntheticImageDataset
from repro.datasets.render import (
    add_sensor_noise,
    blur,
    checker_mask,
    colorize,
    composite_over,
    cross_mask,
    disk_mask,
    linear_gradient,
    radial_gradient,
    random_color,
    rect_mask,
    ring_mask,
    stripes_mask,
    triangle_mask,
)

CLASS_NAMES = (
    "disk",
    "square",
    "triangle",
    "ring",
    "cross",
    "stripes_h",
    "stripes_v",
    "checker",
    "blob",
    "dots",
)


class SynthObjects(SyntheticImageDataset):
    """CIFAR-like synthetic object dataset (3x32x32, 10 classes)."""

    name = "synth_objects"
    num_classes = 10
    image_shape = (3, 32, 32)

    _SIZE = 32

    def _background(self, rng: np.random.Generator) -> np.ndarray:
        base = colorize(linear_gradient(self._SIZE, rng.uniform(0, np.pi)), random_color(rng) * 0.5)
        # Two random rectangles of clutter.
        for _ in range(2):
            top, left = rng.integers(0, 24, size=2)
            mask = rect_mask(self._SIZE, int(top), int(left), int(rng.integers(4, 12)), int(rng.integers(4, 12)))
            base = composite_over(
                base, colorize(mask, random_color(rng) * 0.4), mask * rng.uniform(0.3, 0.6)
            )
        return base

    def _object_mask(self, label: int, rng: np.random.Generator) -> np.ndarray:
        size = self._SIZE
        center = (rng.uniform(10, 22), rng.uniform(10, 22))
        if label == 0:
            return disk_mask(size, center, rng.uniform(5, 9)).astype(np.float32)
        if label == 1:
            edge = int(rng.integers(8, 15))
            return rect_mask(
                size, int(center[0] - edge / 2), int(center[1] - edge / 2), edge, edge
            ).astype(np.float32)
        if label == 2:
            return triangle_mask(size, center, rng.uniform(5, 9)).astype(np.float32)
        if label == 3:
            return ring_mask(size, center, rng.uniform(6, 10), rng.uniform(2, 3.5)).astype(
                np.float32
            )
        if label == 4:
            return cross_mask(size, center, rng.uniform(6, 10), rng.uniform(1.5, 3)).astype(
                np.float32
            )
        if label == 5:
            return stripes_mask(size, int(rng.integers(6, 12)), int(rng.integers(0, 8)), False).astype(
                np.float32
            )
        if label == 6:
            return stripes_mask(size, int(rng.integers(6, 12)), int(rng.integers(0, 8)), True).astype(
                np.float32
            )
        if label == 7:
            return checker_mask(size, int(rng.integers(3, 7)), int(rng.integers(0, 6))).astype(
                np.float32
            )
        if label == 8:
            return radial_gradient(size, center, rng.uniform(8, 14))
        # label == 9: scatter of dots
        mask = np.zeros((size, size), dtype=np.float32)
        for _ in range(int(rng.integers(6, 12))):
            dot_center = (rng.uniform(3, 29), rng.uniform(3, 29))
            mask = np.maximum(
                mask, disk_mask(size, dot_center, rng.uniform(1.2, 2.4)).astype(np.float32)
            )
        return mask

    def render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        image = self._background(rng)
        alpha = self._object_mask(label, rng)
        overlay = colorize(alpha, random_color(rng))
        image = composite_over(image, overlay, alpha * rng.uniform(0.75, 1.0))
        image = blur(image, sigma=rng.uniform(0.0, 0.6))
        return add_sensor_noise(image, rng, sigma=rng.uniform(0.02, 0.06))
