"""Bitmap glyphs for the digits 0-9.

A classic 5x7 dot-matrix font, used by the MNIST and SVHN surrogates.  Each
glyph is a ``(7, 5)`` float array with ink at 1.0.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

_GLYPH_ROWS: dict[int, tuple[str, ...]] = {
    0: (".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###."),
    1: ("..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."),
    2: (".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####"),
    3: (".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###."),
    4: ("...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#."),
    5: ("#####", "#....", "####.", "....#", "....#", "#...#", ".###."),
    6: (".###.", "#....", "#....", "####.", "#...#", "#...#", ".###."),
    7: ("#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."),
    8: (".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###."),
    9: (".###.", "#...#", "#...#", ".####", "....#", "....#", ".###."),
}

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5


def digit_glyph(digit: int) -> np.ndarray:
    """Return the ``(7, 5)`` bitmap for ``digit`` (0-9)."""
    if digit not in _GLYPH_ROWS:
        raise DatasetError(f"no glyph for digit {digit!r}")
    rows = _GLYPH_ROWS[digit]
    return np.array(
        [[1.0 if ch == "#" else 0.0 for ch in row] for row in rows], dtype=np.float32
    )


def all_digit_glyphs() -> np.ndarray:
    """Return all ten glyphs stacked into a ``(10, 7, 5)`` array."""
    return np.stack([digit_glyph(d) for d in range(10)])
