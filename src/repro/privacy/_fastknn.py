"""Native kNN kernels for the information estimators (optional fast path).

The kNN estimators spend essentially all their time answering two geometric
queries: the k-th-nearest-neighbour radius of every sample and, for KSG,
the number of marginal neighbours inside that radius.  ``scipy.cKDTree``
answers both, but in the post-PCA regime this repo works in (a few thousand
samples in 8-16 dimensions) tree traversal is slow: the k-NN radius covers
a large fraction of the data, so every query degenerates to a near-linear
scan with heavy per-node overhead.

This module compiles a small C kernel (at first use, through the shared
:mod:`repro.native` build pipeline) that computes the exact same
quantities with a cache-blocked brute-force sweep:

* points are stored transposed (one contiguous vector per dimension),
* a block of ``QB`` query rows shares every per-dimension pass, so each
  candidate value loaded from memory is reused ``QB`` times,
* Chebyshev rows of both marginals are built once per query and reused for
  the joint radius (their elementwise max), the radius selection, and both
  neighbour counts, all from cache-hot buffers.

All arithmetic is float64 with the same operations scipy performs, so the
radii are bitwise identical to ``cKDTree.query(..., p=inf)`` and the counts
identical to ``query_ball_point``; parity is enforced by the test suite.
Scratch memory is ``O(QB * N)`` — flat in ``N`` relative to the matrices a
naive vectorised implementation would build.

When no C compiler is available (or ``REPRO_NO_C_KERNEL=1`` is set) the
callers fall back to the vectorised scipy code paths.  Compilation,
artifact caching (``REPRO_KERNEL_DIR``), and loading are shared with the
serving executor kernels via :mod:`repro.native`.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro import native

_DISABLE_ENV_VAR = native.DISABLE_ENV_VAR
_DIR_ENV_VAR = native.DIR_ENV_VAR

#: Query rows processed together by the blocked kernels (C macro QB).
QUERY_BLOCK = 8

#: Largest supported neighbour order (size of the C selection buffer - 1).
MAX_K = 63

_SOURCE = r"""
#include <math.h>
#include <stdint.h>

#define QB 8

static double kth_smallest(const double *buf, int64_t n, int64_t k) {
    /* Single pass keeping the k+1 smallest values in a tiny sorted array;
       k is 0-based, k <= 63. */
    double best[64];
    int64_t filled = 0;
    double bound = INFINITY;
    for (int64_t j = 0; j < n; j++) {
        double v = buf[j];
        if (v >= bound) continue;
        int64_t p = (filled <= k) ? filled : k;
        if (filled <= k) filled++;
        while (p > 0 && best[p - 1] > v) { best[p] = best[p - 1]; p--; }
        best[p] = v;
        if (filled > k) bound = best[k];
    }
    return best[k];
}

static void cheb_rows(const double *cols, int64_t n, int64_t d,
                      int64_t i0, int64_t qb, double *rows) {
    /* rows[q * n + j] = max-norm distance between points i0+q and j.
       cols is the (d, n) transposed sample matrix. */
    for (int64_t c = 0; c < d; c++) {
        const double *col = cols + c * n;
        for (int64_t q = 0; q < qb; q++) {
            double vi = col[i0 + q];
            double *m = rows + q * n;
            if (c == 0)
                for (int64_t j = 0; j < n; j++)
                    m[j] = fabs(vi - col[j]);
            else
                for (int64_t j = 0; j < n; j++) {
                    double diff = fabs(vi - col[j]);
                    m[j] = diff > m[j] ? diff : m[j];
                }
        }
    }
}

void ksg_counts(const double *xt, const double *yt, int64_t n,
                int64_t dx, int64_t dy, int64_t k, double tol,
                double *radius_out, int64_t *nx_out, int64_t *ny_out,
                double *mx, double *my, double *scratch) {
    /* xt/yt: (dx, n) and (dy, n) transposed marginals.  Outputs per point:
       the joint-space k-NN max-norm radius (self excluded) and the number
       of marginal neighbours at distance <= radius - tol (self excluded;
       -1 when radius - tol < 0, matching an empty scipy ball query minus
       the self hit). */
    for (int64_t i0 = 0; i0 < n; i0 += QB) {
        int64_t qb = (i0 + QB <= n) ? QB : (n - i0);
        cheb_rows(xt, n, dx, i0, qb, mx);
        cheb_rows(yt, n, dy, i0, qb, my);
        for (int64_t q = 0; q < qb; q++) {
            const double *rx = mx + q * n;
            const double *ry = my + q * n;
            for (int64_t j = 0; j < n; j++)
                scratch[j] = rx[j] > ry[j] ? rx[j] : ry[j];
            /* Self sits at distance 0, so the k-th neighbour excluding
               self is the (k+1)-th smallest including it. */
            double r = kth_smallest(scratch, n, k);
            radius_out[i0 + q] = r;
            double cut = r - tol;
            if (cut < 0.0) {
                nx_out[i0 + q] = -1;
                ny_out[i0 + q] = -1;
                continue;
            }
            int64_t cx = 0, cy = 0;
            for (int64_t j = 0; j < n; j++) cx += (rx[j] <= cut);
            for (int64_t j = 0; j < n; j++) cy += (ry[j] <= cut);
            nx_out[i0 + q] = cx - 1;
            ny_out[i0 + q] = cy - 1;
        }
    }
}

void euclidean_knn_radius(const double *xt, int64_t n, int64_t d, int64_t k,
                          double *out, double *acc) {
    /* out[i] = Euclidean distance from point i to its k-th nearest
       neighbour (self excluded).  xt is the (d, n) transposed matrix;
       acc is (QB, n) scratch. */
    for (int64_t i0 = 0; i0 < n; i0 += QB) {
        int64_t qb = (i0 + QB <= n) ? QB : (n - i0);
        for (int64_t c = 0; c < d; c++) {
            const double *col = xt + c * n;
            for (int64_t q = 0; q < qb; q++) {
                double vi = col[i0 + q];
                double *m = acc + q * n;
                if (c == 0)
                    for (int64_t j = 0; j < n; j++) {
                        double diff = vi - col[j];
                        m[j] = diff * diff;
                    }
                else
                    for (int64_t j = 0; j < n; j++) {
                        double diff = vi - col[j];
                        m[j] += diff * diff;
                    }
            }
        }
        for (int64_t q = 0; q < qb; q++)
            out[i0 + q] = sqrt(kth_smallest(acc + q * n, n, k));
    }
}
"""

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_INT64_P = ctypes.POINTER(ctypes.c_int64)


def _configure(lib: ctypes.CDLL) -> None:
    lib.ksg_counts.argtypes = [
        _DOUBLE_P, _DOUBLE_P,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_double,
        _DOUBLE_P, _INT64_P, _INT64_P,
        _DOUBLE_P, _DOUBLE_P, _DOUBLE_P,
    ]
    lib.ksg_counts.restype = None
    lib.euclidean_knn_radius.argtypes = [
        _DOUBLE_P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _DOUBLE_P, _DOUBLE_P,
    ]
    lib.euclidean_knn_radius.restype = None


_MODULE = native.KernelModule("fastknn", _SOURCE, _configure)


def _load() -> ctypes.CDLL | None:
    return _MODULE.load()


def available() -> bool:
    """Whether the compiled kernel can be used in this process."""
    return _MODULE.available()


def _transposed(samples: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(
        np.asarray(samples, dtype=np.float64).T
    )


def ksg_counts(
    x: np.ndarray, y: np.ndarray, k: int, tol: float = 1e-12
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Joint k-NN radii and marginal neighbour counts for KSG.

    Args:
        x: ``(N, dx)`` samples.
        y: ``(N, dy)`` samples, paired with ``x``.
        k: Neighbour order (1 <= k <= :data:`MAX_K`).
        tol: Strictness margin subtracted from the radius before counting.

    Returns:
        ``(radius, nx, ny)`` — the max-norm joint k-NN distance per point
        and the per-marginal neighbour counts within ``radius - tol``.
    """
    lib = _load()
    if lib is None:
        raise RuntimeError("fastknn kernel unavailable")
    if not 1 <= k <= MAX_K:
        raise ValueError(f"k must be in [1, {MAX_K}], got {k}")
    n = len(x)
    xt = _transposed(x)
    yt = _transposed(y)
    radius = np.empty(n, dtype=np.float64)
    nx = np.empty(n, dtype=np.int64)
    ny = np.empty(n, dtype=np.int64)
    mx = np.empty(QUERY_BLOCK * n, dtype=np.float64)
    my = np.empty(QUERY_BLOCK * n, dtype=np.float64)
    scratch = np.empty(n, dtype=np.float64)
    lib.ksg_counts(
        xt.ctypes.data_as(_DOUBLE_P),
        yt.ctypes.data_as(_DOUBLE_P),
        n, xt.shape[0], yt.shape[0], k, tol,
        radius.ctypes.data_as(_DOUBLE_P),
        nx.ctypes.data_as(_INT64_P),
        ny.ctypes.data_as(_INT64_P),
        mx.ctypes.data_as(_DOUBLE_P),
        my.ctypes.data_as(_DOUBLE_P),
        scratch.ctypes.data_as(_DOUBLE_P),
    )
    return radius, nx, ny


def euclidean_kth_distance(samples: np.ndarray, k: int) -> np.ndarray:
    """Per-point Euclidean distance to the k-th nearest neighbour."""
    lib = _load()
    if lib is None:
        raise RuntimeError("fastknn kernel unavailable")
    if not 1 <= k <= MAX_K:
        raise ValueError(f"k must be in [1, {MAX_K}], got {k}")
    n = len(samples)
    st = _transposed(samples)
    out = np.empty(n, dtype=np.float64)
    acc = np.empty(QUERY_BLOCK * n, dtype=np.float64)
    lib.euclidean_knn_radius(
        st.ctypes.data_as(_DOUBLE_P),
        n, st.shape[0], k,
        out.ctypes.data_as(_DOUBLE_P),
        acc.ctypes.data_as(_DOUBLE_P),
    )
    return out
