"""Analytic bounds linking SNR (in vivo) to mutual information (ex vivo).

Paper §2.3 justifies training against ``1/SNR`` by the known dependence of
MI on SNR in additive-noise channels (Guo, Shamai & Verdú).  This module
makes the link quantitative for the additive channel ``Y = A + N`` that
Shredder realises at the cut point:

* a **lower** bound from the Gaussian saddle point: for Gaussian signal,
  Gaussian noise is the *minimising* noise at fixed power, so
  ``I ≥ ½ log₂(1 + SNR)`` for any noise distribution;
* an **upper** bound from the maximum-entropy property of the Gaussian:
  ``I = h(Y) − h(N) ≤ ½ log₂(2πe(S + σ²)) − h(N)``, with the differential
  entropy ``h(N)`` known in closed form for Laplace and Gaussian noise.

Together the bounds bracket the ex-vivo privacy achievable at a given
in-vivo privacy, and both are monotone in SNR — the property that makes
the paper's proxy sound.  The Figure 5 benches cross-check the measured
(in vivo, ex vivo) points against this bracket's monotone shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimatorError

_LN2 = math.log(2.0)


def laplace_entropy_bits(scale: float) -> float:
    """Differential entropy of ``Laplace(·, b)`` per dimension, in bits.

    ``h = log(2 b e)`` nats.
    """
    if scale <= 0:
        raise EstimatorError(f"Laplace scale must be positive, got {scale}")
    return math.log(2.0 * scale * math.e) / _LN2


def gaussian_entropy_bits(std: float) -> float:
    """Differential entropy of ``N(·, σ²)`` per dimension, in bits."""
    if std <= 0:
        raise EstimatorError(f"Gaussian std must be positive, got {std}")
    return 0.5 * math.log(2.0 * math.pi * math.e * std * std) / _LN2


def saddle_point_lower_bound_bits(snr: float, dims: int = 1) -> float:
    """Lower bound on I(A; A+N) for Gaussian signal at the given SNR.

    Among all noise distributions with fixed power, Gaussian noise
    minimises the MI of a Gaussian-signal channel (the mutual-information
    game's saddle point), so the AWGN formula lower-bounds the leakage of
    *any* additive noise — including Shredder's learned tensors.
    """
    if snr < 0:
        raise EstimatorError(f"SNR must be non-negative, got {snr}")
    if dims < 1:
        raise EstimatorError(f"dims must be positive, got {dims}")
    return dims * 0.5 * math.log2(1.0 + snr)


def max_entropy_upper_bound_bits(
    signal_power: float,
    noise_variance: float,
    noise_entropy_bits_per_dim: float,
    dims: int = 1,
) -> float:
    """Upper bound on I(A; A+N) via the Gaussian maximum-entropy property.

    ``I = h(Y) − h(N)`` and ``h(Y) ≤ ½ log₂(2πe(S + σ²))`` per dimension,
    so ``I ≤ dims · (½ log₂(2πe(S + σ²)) − h_N)``.

    Args:
        signal_power: Per-dimension signal power ``S = E[a²]``.
        noise_variance: Per-dimension noise power ``σ²``.
        noise_entropy_bits_per_dim: ``h(N)`` per dimension in bits (use
            :func:`laplace_entropy_bits` / :func:`gaussian_entropy_bits`).
        dims: Channel dimensions.
    """
    if signal_power <= 0 or noise_variance <= 0:
        raise EstimatorError("signal power and noise variance must be positive")
    if dims < 1:
        raise EstimatorError(f"dims must be positive, got {dims}")
    output_entropy = 0.5 * math.log2(
        2.0 * math.pi * math.e * (signal_power + noise_variance)
    )
    return dims * max(output_entropy - noise_entropy_bits_per_dim, 0.0)


@dataclass(frozen=True)
class LeakageBracket:
    """Lower/upper analytic bounds on channel leakage at one SNR."""

    snr: float
    lower_bits: float
    upper_bits: float

    def contains(self, mi_bits: float, slack: float = 0.0) -> bool:
        """Whether a measured MI falls inside the (slackened) bracket."""
        return self.lower_bits - slack <= mi_bits <= self.upper_bits + slack


def laplace_channel_bracket(
    signal_power: float, noise_scale: float, dims: int = 1
) -> LeakageBracket:
    """Analytic leakage bracket for Laplace noise of scale ``b``.

    Args:
        signal_power: Per-dimension ``E[a²]``.
        noise_scale: Laplace ``b`` (variance ``2b²``).
        dims: Channel dimensions.
    """
    if noise_scale <= 0:
        raise EstimatorError(f"noise scale must be positive, got {noise_scale}")
    variance = 2.0 * noise_scale * noise_scale
    snr = signal_power / variance
    return LeakageBracket(
        snr=snr,
        lower_bits=saddle_point_lower_bound_bits(snr, dims),
        upper_bits=max_entropy_upper_bound_bits(
            signal_power, variance, laplace_entropy_bits(noise_scale), dims
        ),
    )


def gaussian_channel_bracket(
    signal_power: float, noise_std: float, dims: int = 1
) -> LeakageBracket:
    """Analytic leakage bracket for Gaussian noise of std ``σ``.

    For a genuinely Gaussian signal the bracket is tight: lower and upper
    bound coincide at the AWGN formula (up to the non-Gaussianity of the
    real activation distribution, absorbed by the upper bound).
    """
    if noise_std <= 0:
        raise EstimatorError(f"noise std must be positive, got {noise_std}")
    variance = noise_std * noise_std
    snr = signal_power / variance
    return LeakageBracket(
        snr=snr,
        lower_bits=saddle_point_lower_bound_bits(snr, dims),
        upper_bits=max_entropy_upper_bound_bits(
            signal_power, variance, gaussian_entropy_bits(noise_std), dims
        ),
    )


def snr_privacy_curve(
    snr_values: np.ndarray, dims: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """The analytic (in vivo, ex vivo) curve of the AWGN reference channel.

    Maps each SNR to ``(1/SNR, 1/I_awgn)`` — the coordinates of Figure 5.
    Both coordinates increase together, which is the monotone relationship
    the paper verifies empirically.
    """
    snr_values = np.asarray(snr_values, dtype=np.float64)
    if (snr_values <= 0).any():
        raise EstimatorError("SNR values must be positive")
    in_vivo = 1.0 / snr_values
    mi = dims * 0.5 * np.log2(1.0 + snr_values)
    ex_vivo = 1.0 / np.maximum(mi, 1e-12)
    return in_vivo, ex_vivo
