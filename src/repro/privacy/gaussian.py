"""Closed-form Gaussian-channel information quantities.

The paper justifies using 1/SNR as the *in vivo* (training-time) privacy
proxy by the known relationship between SNR and mutual information in noisy
channels (Guo, Shamai & Verdu, 2005).  These closed forms provide ground
truth for validating the kNN estimators and for the SNR↔MI ablation (E9 in
DESIGN.md).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EstimatorError


def awgn_capacity_bits(snr: float) -> float:
    """Shannon capacity of a scalar AWGN channel, ``0.5 log2(1 + SNR)``.

    For ``Y = X + N`` with Gaussian signal power ``S`` and noise power
    ``σ²``, ``I(X;Y) = 0.5 log2(1 + S/σ²)`` — monotone increasing in SNR,
    which is exactly the property that makes 1/SNR a usable privacy proxy.
    """
    if snr < 0:
        raise EstimatorError(f"SNR must be non-negative, got {snr}")
    return 0.5 * math.log2(1.0 + snr)


def awgn_vector_mi_bits(signal_variances: np.ndarray, noise_variance: float) -> float:
    """MI of independent parallel AWGN channels (bits, summed over dims)."""
    signal_variances = np.asarray(signal_variances, dtype=np.float64)
    if noise_variance <= 0:
        raise EstimatorError("noise variance must be positive")
    if (signal_variances < 0).any():
        raise EstimatorError("signal variances must be non-negative")
    return float(0.5 * np.log2(1.0 + signal_variances / noise_variance).sum())


def correlated_gaussian_mi_bits(rho: float) -> float:
    """MI between two unit Gaussians with correlation ``rho``, in bits."""
    if not -1.0 < rho < 1.0:
        raise EstimatorError(f"correlation must be in (-1, 1), got {rho}")
    return -0.5 * math.log2(1.0 - rho * rho)


def multivariate_gaussian_mi_bits(
    covariance: np.ndarray, dim_x: int
) -> float:
    """MI between the first ``dim_x`` and remaining dims of a joint Gaussian.

    ``I(X;Y) = 0.5 log2( det Σ_x det Σ_y / det Σ )``.
    """
    covariance = np.asarray(covariance, dtype=np.float64)
    d = covariance.shape[0]
    if covariance.shape != (d, d) or not 0 < dim_x < d:
        raise EstimatorError("invalid covariance partition")
    sign_x, logdet_x = np.linalg.slogdet(covariance[:dim_x, :dim_x])
    sign_y, logdet_y = np.linalg.slogdet(covariance[dim_x:, dim_x:])
    sign_j, logdet_j = np.linalg.slogdet(covariance)
    if min(sign_x, sign_y, sign_j) <= 0:
        raise EstimatorError("covariance must be positive definite")
    return 0.5 * (logdet_x + logdet_y - logdet_j) / math.log(2.0)


def snr_to_in_vivo_privacy(snr: float) -> float:
    """The paper's in vivo privacy: the reverse of SNR (1/SNR)."""
    if snr <= 0:
        raise EstimatorError(f"SNR must be positive, got {snr}")
    return 1.0 / snr


def mi_to_ex_vivo_privacy(mi_bits: float, floor: float = 1e-9) -> float:
    """The paper's ex vivo privacy: the reverse of MI (1/MI)."""
    return 1.0 / max(mi_bits, floor)
