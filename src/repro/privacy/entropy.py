"""Differential entropy estimators.

The paper measures privacy with Shannon mutual information estimated by the
ITE toolbox's kNN ("KL divergence", i.e. Kozachenko-Leonenko) estimators.
This module implements the same estimator family from scratch:

* :func:`kl_entropy` — the Kozachenko-Leonenko k-nearest-neighbour
  differential entropy estimator (Kozachenko & Leonenko, 1987).
* :func:`histogram_entropy` — a simple binned (plug-in) estimator, used as a
  cross-check and for low-dimensional discrete summaries.
* :func:`gaussian_entropy` — the closed form for Gaussians, used to
  validate the estimators in tests.

All entropies are reported in **bits**.

The k-NN search behind :func:`kl_entropy` has two interchangeable
backends: a compiled cache-blocked kernel (:mod:`repro.privacy._fastknn`,
several times faster than tree traversal in the post-PCA regime) and a
``cKDTree`` path whose queries run chunked (flat memory in ``N``) and
parallelised across all cores via ``workers=-1``.  Both produce the same
distances; :func:`kl_entropy_reference` preserves the original
unvectorised implementation for parity tests and benchmarks.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma, gammaln

from repro.errors import EstimatorError
from repro.privacy import _fastknn

_LN2 = math.log(2.0)

#: Query points processed per chunked tree query.
DEFAULT_CHUNK_SIZE = 4096

#: Above this sample count the O(N^2) compiled kernel yields to the tree.
_BRUTE_FORCE_MAX_N = 20000

_BACKENDS = ("auto", "c", "scipy")


def _resolve_backend(backend: str, n: int, k: int) -> str:
    """Pick the concrete kNN backend for an ``(n, k)`` problem."""
    if backend not in _BACKENDS:
        raise EstimatorError(
            f"unknown backend {backend!r}; options: {_BACKENDS}"
        )
    if backend == "c" and not _fastknn.available():
        raise EstimatorError("compiled kNN kernel is not available")
    if backend == "auto":
        usable = (
            _fastknn.available()
            and n <= _BRUTE_FORCE_MAX_N
            and k <= _fastknn.MAX_K
        )
        return "c" if usable else "scipy"
    return backend


def _validate_samples(samples: np.ndarray, minimum: int = 8) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim == 1:
        samples = samples[:, None]
    if samples.ndim != 2:
        raise EstimatorError(f"expected (N, d) samples, got shape {samples.shape}")
    if len(samples) < minimum:
        raise EstimatorError(
            f"need at least {minimum} samples for a kNN estimate, got {len(samples)}"
        )
    return samples


def unit_ball_log_volume(dim: int) -> float:
    """Natural log of the volume of the d-dimensional unit L2 ball."""
    return (dim / 2.0) * math.log(math.pi) - gammaln(dim / 2.0 + 1.0)


def kth_neighbor_distances(
    samples: np.ndarray,
    k: int,
    backend: str = "auto",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Euclidean distance from every sample to its k-th nearest neighbour.

    Args:
        samples: ``(N, d)`` array.
        k: Neighbour order (self excluded); must satisfy ``1 <= k < N``.
        backend: ``"auto"`` (compiled kernel when available and the problem
            is in its sweet spot), ``"c"``, or ``"scipy"``.
        chunk_size: Query-chunk length for the scipy path, bounding its
            working memory at ``O(chunk_size * k)``.
    """
    n = len(samples)
    if not 1 <= k < n:
        raise EstimatorError(f"k must be in [1, N); got k={k}, N={n}")
    if chunk_size < 1:
        raise EstimatorError(f"chunk_size must be >= 1, got {chunk_size}")
    if _resolve_backend(backend, n, k) == "c":
        return _fastknn.euclidean_kth_distance(samples, k)
    tree = cKDTree(samples)
    distances = np.empty(n, dtype=np.float64)
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        # k+1 because the closest neighbour of each point is itself.
        chunk, _ = tree.query(samples[start:stop], k=k + 1, workers=-1)
        distances[start:stop] = chunk[:, k]
    return distances


def kl_entropy(
    samples: np.ndarray,
    k: int = 3,
    jitter: float = 1e-10,
    backend: str = "auto",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> float:
    """Kozachenko-Leonenko kNN differential entropy in bits.

    ``H ≈ ψ(N) − ψ(k) + log V_d + (d/N) Σ_i log ε_i`` where ``ε_i`` is the
    distance from sample ``i`` to its k-th nearest neighbour and ``V_d`` the
    unit-ball volume.

    Args:
        samples: ``(N, d)`` array of i.i.d. samples.
        k: Neighbour order (small k = low bias, high variance).
        jitter: Tiny noise added to break exact ties (duplicate samples
            would otherwise give ``log 0``).
        backend: kNN backend (see :func:`kth_neighbor_distances`).
        chunk_size: Query-chunk length for the scipy backend.
    """
    samples = _validate_samples(samples, minimum=k + 2)
    n, d = samples.shape
    if k < 1 or k >= n:
        raise EstimatorError(f"k must be in [1, N); got k={k}, N={n}")
    if jitter:
        rng = np.random.default_rng(0)
        samples = samples + rng.normal(0.0, jitter, size=samples.shape)
    eps = np.maximum(
        kth_neighbor_distances(samples, k, backend=backend, chunk_size=chunk_size),
        1e-300,
    )
    nats = (
        digamma(n)
        - digamma(k)
        + unit_ball_log_volume(d)
        + d * float(np.mean(np.log(eps)))
    )
    return nats / _LN2


def kl_entropy_reference(
    samples: np.ndarray, k: int = 3, jitter: float = 1e-10
) -> float:
    """The pre-vectorisation KL estimator (single unparallelised query).

    Retained verbatim as the parity baseline for :func:`kl_entropy` and as
    the "before" side of the hot-path benchmark.
    """
    samples = _validate_samples(samples, minimum=k + 2)
    n, d = samples.shape
    if k < 1 or k >= n:
        raise EstimatorError(f"k must be in [1, N); got k={k}, N={n}")
    if jitter:
        rng = np.random.default_rng(0)
        samples = samples + rng.normal(0.0, jitter, size=samples.shape)
    tree = cKDTree(samples)
    distances, _ = tree.query(samples, k=k + 1)
    eps = np.maximum(distances[:, k], 1e-300)
    nats = (
        digamma(n)
        - digamma(k)
        + unit_ball_log_volume(d)
        + d * float(np.mean(np.log(eps)))
    )
    return nats / _LN2


def histogram_entropy(samples: np.ndarray, bins: int = 16) -> float:
    """Plug-in entropy of binned samples, in bits.

    For continuous data this approximates the differential entropy plus the
    log bin volume; it is used as an order-of-magnitude cross-check of the
    kNN estimator and for discrete summaries.
    """
    samples = _validate_samples(samples, minimum=2)
    if bins < 2:
        raise EstimatorError(f"need at least 2 bins, got {bins}")
    n, d = samples.shape
    edges = [np.linspace(samples[:, j].min(), samples[:, j].max() + 1e-9, bins + 1) for j in range(d)]
    counts, _ = np.histogramdd(samples, bins=edges)
    probabilities = counts.reshape(-1) / n
    probabilities = probabilities[probabilities > 0]
    discrete = -float(np.sum(probabilities * np.log(probabilities))) / _LN2
    # Differential correction: add log2 of the bin volume.
    log_volume = sum(math.log2(max(e[1] - e[0], 1e-300)) for e in edges)
    return discrete + log_volume


def gaussian_entropy(covariance: np.ndarray) -> float:
    """Closed-form entropy of a multivariate Gaussian, in bits."""
    covariance = np.atleast_2d(np.asarray(covariance, dtype=np.float64))
    d = covariance.shape[0]
    if covariance.shape != (d, d):
        raise EstimatorError(f"covariance must be square, got {covariance.shape}")
    sign, logdet = np.linalg.slogdet(covariance)
    if sign <= 0:
        raise EstimatorError("covariance must be positive definite")
    nats = 0.5 * (d * math.log(2.0 * math.pi * math.e) + logdet)
    return nats / _LN2
