"""High-level privacy measurements used by the experiments.

The central quantity is the *information leakage* ``I(x; a')`` between the
network input and the tensor communicated to the cloud (paper §2.2), and
the derived notions:

* ex vivo privacy  = 1 / MI            (paper's final privacy measure)
* information loss = I(x;a) − I(x;a')  (Figure 3's y-axis)
* zero-leakage line = I(x;a)           (the original MI, Figure 3)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimatorError
from repro.privacy.gaussian import mi_to_ex_vivo_privacy
from repro.privacy.mutual_information import entropy_sum_mi, ksg_mutual_information
from repro.privacy.reduction import PCAReducer, flatten_batch


@dataclass(frozen=True)
class LeakageEstimate:
    """Result of one input↔activation MI measurement.

    Attributes:
        mi_bits: Estimated mutual information in bits (reduced space).
        ex_vivo_privacy: ``1 / mi_bits``.
        n_samples: Samples used.
        n_components: PCA components per variable.
        estimator: ``"ksg"`` or ``"entropy_sum"``.
    """

    mi_bits: float
    ex_vivo_privacy: float
    n_samples: int
    n_components: int
    estimator: str


def estimate_leakage(
    inputs: np.ndarray,
    activations: np.ndarray,
    n_components: int = 12,
    k: int = 3,
    estimator: str = "ksg",
    max_samples: int | None = None,
    rng: np.random.Generator | None = None,
    jitter_rng: np.random.Generator | int | None = None,
) -> LeakageEstimate:
    """Estimate I(input; activation) in bits.

    Pipeline (mirrors practical MI measurement on images): flatten both
    batches, optionally subsample, whiten-project each onto its top
    principal components, then run the kNN estimator.

    Args:
        inputs: ``(N, ...)`` raw inputs ``x``.
        activations: ``(N, ...)`` communicated tensors ``a'`` (paired).
        n_components: PCA components for each side.
        k: kNN order.
        estimator: ``"ksg"`` (Kraskov) or ``"entropy_sum"`` (ITE-style).
        max_samples: Random subsample size (None = use all).
        rng: Subsampling randomness.
        jitter_rng: Seed or generator for the KSG tie-breaking jitter
            (``None`` keeps the historical fixed seed; resampling loops
            must pass a distinct value per draw or the replicates share
            identical jitter).  Ignored by ``"entropy_sum"``.
    """
    x = flatten_batch(inputs)
    a = flatten_batch(activations)
    if len(x) != len(a):
        raise EstimatorError(f"paired batches required; got {len(x)} vs {len(a)}")
    if max_samples is not None and len(x) > max_samples:
        rng = rng or np.random.default_rng(0)
        keep = rng.choice(len(x), size=max_samples, replace=False)
        x, a = x[keep], a[keep]
    x_reduced = PCAReducer(n_components).fit_transform(x)
    a_reduced = PCAReducer(n_components).fit_transform(a)
    if estimator == "ksg":
        mi = ksg_mutual_information(x_reduced, a_reduced, k=k, jitter_rng=jitter_rng)
    elif estimator == "entropy_sum":
        mi = entropy_sum_mi(x_reduced, a_reduced, k=k)
    else:
        raise EstimatorError(f"unknown estimator {estimator!r}")
    return LeakageEstimate(
        mi_bits=mi,
        ex_vivo_privacy=mi_to_ex_vivo_privacy(mi),
        n_samples=len(x),
        n_components=min(n_components, x_reduced.shape[1], a_reduced.shape[1]),
        estimator=estimator,
    )


def information_loss_bits(original_mi: float, shredded_mi: float) -> float:
    """Bits of input information removed by noise injection (Figure 3)."""
    return original_mi - shredded_mi


def information_loss_percent(original_mi: float, shredded_mi: float) -> float:
    """Percent MI reduction (the headline Table 1 metric)."""
    if original_mi <= 0:
        raise EstimatorError("original MI must be positive")
    return 100.0 * (original_mi - shredded_mi) / original_mi
