"""Empirical leakage evaluation for the cross-session shuffling stage.

The serving layer's :class:`~repro.serve.scheduler.Shuffler` permutes the
rows of every closed micro-batch across sessions before the frame goes on
the wire, so the frame's request table no longer truthfully describes row
ownership.  This module measures what that actually buys (and what it
does not) by attacking *tapped wire frames* with the repository's real
adversaries:

* the **positional attacker** — an honest-but-curious cloud (or on-path
  observer) that attributes each wire row to the session named by the
  frame's contiguous request table, exactly as the dispatcher would.
  Without shuffling this attacker is perfect; with shuffling its accuracy
  collapses toward the batch's anonymity-set chance floor.  Residual
  positional information is also reported as the plug-in mutual
  information between the claimed and true session labels
  (:func:`~repro.privacy.mutual_information.discrete_mutual_information`).
* the **content attacker** —
  :class:`~repro.attacks.reidentification.ReidentificationAttack`
  matching observed rows against a clean candidate pool.  Nearest-pool
  matching is permutation-invariant, so shuffling alone does *not* defeat
  it: only the noise on the rows does.  Reporting both attackers side by
  side keeps the claim honest — shuffling removes the positional side
  channel; content privacy still comes from the learned noise.

Batch composition (window size, session isolation, shard routing via
:func:`~repro.serve.shard.route_session`) is replayed faithfully from the
serving layer's own primitives, so the evaluator's mixing index and
anonymity sets are the same quantities
:class:`~repro.serve.metrics.ServingMetrics` reports for a live plane.

The module also carries the closed-form **shuffle amplification** bound
(:func:`amplified_epsilon`): per the shuffling framework for local DP
(Meehan et al., *A Shuffling Framework for Local Differential Privacy*,
building on Feldman–McMillan–Talwar's amplification-by-shuffling bound),
``n`` users each satisfying ``epsilon0``-LDP whose reports pass through a
uniform shuffler jointly satisfy a much smaller central ``epsilon``.
Serving metrics surface the bound at the *smallest* observed anonymity
set (conservative) via
:meth:`~repro.serve.metrics.ServingMetrics.shuffle_amplification`.

Everything here is a pure function of its inputs and explicit seeds —
no wall clock, no global RNG — so identical calls produce identical
numbers (pinned by ``tests/privacy/test_shuffle_eval.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.reidentification import ReidentificationAttack
from repro.errors import ConfigurationError, EstimatorError
from repro.privacy.mutual_information import discrete_mutual_information

__all__ = [
    "WireBatch",
    "ShuffleLeakageReport",
    "amplified_epsilon",
    "tap_wire_batches",
    "evaluate_shuffle_leakage",
    "sweep_mixing_tradeoff",
]


# ----------------------------------------------------------------------
# Shuffle amplification (closed form)
# ----------------------------------------------------------------------
def amplified_epsilon(
    epsilon0: float, n: int, delta: float = 1e-5
) -> float:
    """Central ``epsilon`` after uniformly shuffling ``n`` local reports.

    The Feldman–McMillan–Talwar amplification-by-shuffling bound used by
    the shuffling-framework literature (Meehan et al.): ``n`` users, each
    ``epsilon0``-LDP, whose reports pass through a uniform shuffler
    jointly satisfy ``(epsilon, delta)``-DP with ::

        epsilon = log(1 + (e^{epsilon0} - 1) * (
            sqrt(32 * log(4 / delta) / ((e^{epsilon0} + 1) * n)) + 4 / n
        ))

    The bound is only meaningful once ``n`` is large enough for the inner
    term to dip below 1; for small anonymity sets (or ``n == 1``, where
    shuffling is the identity) the local guarantee is the best available,
    so the result is clamped to ``min(epsilon0, bound)`` — amplification
    never *weakens* a guarantee.

    Args:
        epsilon0: Per-report local DP parameter (>= 0).
        n: Number of shuffled reports — operationally, the batch's
            anonymity set (distinct sessions mixed together).
        delta: Target failure probability of the central guarantee.
    """
    if epsilon0 < 0:
        raise ConfigurationError(f"epsilon0 must be >= 0, got {epsilon0}")
    if n < 1:
        raise ConfigurationError(f"need >= 1 shuffled report, got {n}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    if epsilon0 == 0.0:
        return 0.0
    if n == 1:
        return float(epsilon0)
    e0 = np.exp(epsilon0)
    bound = np.log1p(
        (e0 - 1.0)
        * (np.sqrt(32.0 * np.log(4.0 / delta) / ((e0 + 1.0) * n)) + 4.0 / n)
    )
    return float(min(epsilon0, bound))


# ----------------------------------------------------------------------
# Wire-frame tap (faithful batch-composition replay)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WireBatch:
    """One tapped uplink frame, as the adversary sees it.

    Attributes:
        rows: ``(R, D)`` observed rows in **wire order**.
        claimed_sessions: Per wire row, the session the frame's contiguous
            request table *claims* owns it (the positional attacker's
            guess).
        true_sessions: Per wire row, the session that actually produced it.
        true_indices: Per wire row, its index into the evaluator's
            activation pool (content-attack ground truth).
        shard: Shard index the frame was tapped from.
    """

    rows: np.ndarray
    claimed_sessions: tuple
    true_sessions: tuple
    true_indices: tuple[int, ...]
    shard: int

    @property
    def anonymity_set(self) -> int:
        """Distinct sessions mixed into this frame."""
        return len(set(self.true_sessions))


def _batch_windows(
    indices: list[int],
    session_ids,
    batch_window: int,
    isolate_sessions: bool,
) -> list[list[int]]:
    """FIFO micro-batch composition over ``indices``, mirroring
    :class:`~repro.serve.queue.MicroBatcher`: up to ``batch_window``
    requests per batch, closed early at the first session boundary when
    the isolation policy is on."""
    batches: list[list[int]] = []
    window: list[int] = []
    for index in indices:
        if window and (
            len(window) >= batch_window
            or (
                isolate_sessions
                and session_ids[window[-1]] != session_ids[index]
            )
        ):
            batches.append(window)
            window = []
        window.append(index)
    if window:
        batches.append(window)
    return batches


def tap_wire_batches(
    activations: np.ndarray,
    session_ids,
    *,
    batch_window: int = 8,
    shuffle: bool = False,
    shuffle_seed: int = 0,
    isolate_sessions: bool = False,
    shards: int = 1,
) -> list[WireBatch]:
    """Replay the serving layer's batch composition over a request stream
    and return every uplink frame as the wire adversary observes it.

    One activation row per request, submitted in pool order.  Requests
    are routed to shards with the real
    :func:`~repro.serve.shard.route_session` (deterministic CRC32 of the
    session id's string form), each shard composes FIFO micro-batches
    under the given window/isolation policy, and — when ``shuffle`` is
    on — permutes each frame's rows with its own
    :class:`~repro.serve.scheduler.Shuffler` (seeded per shard from
    ``SeedSequence([shuffle_seed, shard])``, the same derivation
    :func:`~repro.serve.shard.shard_seed` uses for noise).

    Args:
        activations: ``(N, ...)`` per-request communicated tensors (noisy
            or clean — the evaluator does not add noise itself).
        session_ids: ``(N,)`` owning session per request.
        batch_window: Max requests per micro-batch.
        shuffle: Apply the shuffler stage to each frame.
        shuffle_seed: Shuffling-policy base seed.
        isolate_sessions: Close batches at session boundaries (no mixing).
        shards: Partition sessions across this many shards first.
    """
    from repro.serve.scheduler import Shuffler
    from repro.serve.shard import route_session, shard_seed

    activations = np.asarray(activations)
    session_ids = list(session_ids)
    if len(activations) != len(session_ids):
        raise EstimatorError(
            f"paired request stream required; got {len(activations)} "
            f"activations vs {len(session_ids)} session ids"
        )
    if len(activations) == 0:
        raise EstimatorError("need at least one request to tap")
    if batch_window < 1:
        raise ConfigurationError(
            f"batch window must be >= 1, got {batch_window}"
        )
    flat = activations.reshape(len(activations), -1)

    per_shard: dict[int, list[int]] = {}
    for index, session in enumerate(session_ids):
        per_shard.setdefault(route_session(session, shards), []).append(index)

    frames: list[WireBatch] = []
    for shard in sorted(per_shard):
        shuffler = (
            Shuffler(seed=shard_seed(shuffle_seed, shard)) if shuffle else None
        )
        for window in _batch_windows(
            per_shard[shard], session_ids, batch_window, isolate_sessions
        ):
            # The frame's request table stays in request order — that is
            # the claim the positional attacker reads.
            claimed = tuple(session_ids[i] for i in window)
            order = list(range(len(window)))
            if shuffler is not None:
                permutation = shuffler.permute(len(window))
                if permutation is not None:
                    order = list(permutation.forward)
            wire = [window[i] for i in order]
            frames.append(
                WireBatch(
                    rows=np.ascontiguousarray(flat[wire]),
                    claimed_sessions=claimed,
                    true_sessions=tuple(session_ids[i] for i in wire),
                    true_indices=tuple(wire),
                    shard=shard,
                )
            )
    return frames


# ----------------------------------------------------------------------
# Attacks over tapped frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShuffleLeakageReport:
    """Leakage of one serving configuration, measured empirically.

    Attributes:
        positional_accuracy: Fraction of wire rows whose request-table
            session claim is correct (1.0 = no shuffling protection).
        positional_chance: Expected accuracy of the positional attacker
            under a uniform in-batch permutation — the row-weighted mean
            of each frame's correct-by-luck probability; the shuffled
            attacker should sit at this floor.
        session_mi_bits: Plug-in MI between claimed and true session
            labels over all wire rows (bits/row of residual positional
            information).
        session_entropy_bits: Entropy of the true session labels — the
            MI ceiling, for normalisation.
        reid_top1 / reid_advantage: Content attack
            (:class:`~repro.attacks.reidentification.ReidentificationAttack`)
            top-1 rate and above-chance advantage; shuffling does not
            move these — only row noise does.
        mixing_index: Mean fraction of each frame's rows from other
            sessions (``None`` when nothing was tapped), matching
            :attr:`repro.serve.metrics.ServingMetrics.mixing_index`.
        mean_anonymity_set / min_anonymity_set: Distinct sessions per
            frame.
        epsilon_amplified: :func:`amplified_epsilon` at the minimum
            anonymity set (``None`` without an ``epsilon0``, or when the
            configuration never shuffled a frame).
        batches / rows: Tap volume.
    """

    positional_accuracy: float
    positional_chance: float
    session_mi_bits: float
    session_entropy_bits: float
    reid_top1: float
    reid_advantage: float
    mixing_index: float | None
    mean_anonymity_set: float | None
    min_anonymity_set: int | None
    epsilon_amplified: float | None
    batches: int
    rows: int

    def as_dict(self) -> dict:
        """JSON-ready mapping (bench reports embed this verbatim)."""
        return {
            "positional_accuracy": self.positional_accuracy,
            "positional_chance": self.positional_chance,
            "session_mi_bits": self.session_mi_bits,
            "session_entropy_bits": self.session_entropy_bits,
            "reid_top1": self.reid_top1,
            "reid_advantage": self.reid_advantage,
            "mixing_index": self.mixing_index,
            "mean_anonymity_set": self.mean_anonymity_set,
            "min_anonymity_set": self.min_anonymity_set,
            "epsilon_amplified": self.epsilon_amplified,
            "batches": self.batches,
            "rows": self.rows,
        }


def _entropy_bits(labels) -> float:
    _, counts = np.unique(np.asarray(labels), return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def evaluate_shuffle_leakage(
    activations: np.ndarray,
    session_ids,
    *,
    observed: np.ndarray | None = None,
    batch_window: int = 8,
    shuffle: bool = False,
    shuffle_seed: int = 0,
    isolate_sessions: bool = False,
    shards: int = 1,
    workers: int = 1,
    epsilon0: float | None = None,
    delta: float = 1e-5,
) -> ShuffleLeakageReport:
    """Attack one serving configuration's tapped wire frames.

    Args:
        activations: ``(N, ...)`` *clean* per-request activations — the
            content attacker's candidate pool (it can run the public
            local network itself).
        session_ids: ``(N,)`` owning session per request.
        observed: ``(N, ...)`` what actually crossed the wire (noisy /
            quantised rows).  Defaults to ``activations`` — a noiseless
            deployment, against which the content attack is perfect and
            only the positional channel varies.
        batch_window / shuffle / shuffle_seed / isolate_sessions /
        shards: Batch-composition knobs, forwarded to
            :func:`tap_wire_batches`.
        workers: Cloud worker count of the configuration under test.
            Accepted (and swept) to *verify* a property of the serving
            design rather than exercise one: the dispatcher closes every
            window before any worker touches it, so batch composition —
            and therefore every number in this report — is invariant to
            ``workers``.  The sweep exposes the axis so the invariance is
            measured, not assumed.
        epsilon0 / delta: When given, report :func:`amplified_epsilon`
            at the configuration's minimum anonymity set.
    """
    if workers < 1:
        raise ConfigurationError(f"need >= 1 worker, got {workers}")
    activations = np.asarray(activations)
    wire = activations if observed is None else np.asarray(observed)
    if len(wire) != len(activations):
        raise EstimatorError(
            f"observed rows must pair with the pool; got {len(wire)} vs "
            f"{len(activations)}"
        )
    frames = tap_wire_batches(
        wire,
        session_ids,
        batch_window=batch_window,
        shuffle=shuffle,
        shuffle_seed=shuffle_seed,
        isolate_sessions=isolate_sessions,
        shards=shards,
    )

    claimed: list = []
    true: list = []
    chance_weighted = 0.0
    anonymity: list[int] = []
    mixing: list[float] = []
    observed_rows = []
    observed_indices: list[int] = []
    for frame in frames:
        claimed.extend(frame.claimed_sessions)
        true.extend(frame.true_sessions)
        counts: dict = {}
        for session in frame.true_sessions:
            counts[session] = counts.get(session, 0) + 1
        n = len(frame.true_sessions)
        # P(claim at position j is correct | uniform permutation) is the
        # frequency of the claimed session among the frame's rows.
        chance_weighted += sum(
            counts.get(session, 0) / n for session in frame.claimed_sessions
        )
        # Same per-request quantity ServingMetrics.record_mixing keeps
        # (one row per request here): other rows / total rows.
        for session in frame.claimed_sessions:
            mixing.append((n - counts[session]) / n)
        if shuffle and n > 1:
            anonymity.append(frame.anonymity_set)
        observed_rows.append(frame.rows)
        observed_indices.extend(frame.true_indices)

    claimed_arr = np.asarray(claimed)
    true_arr = np.asarray(true)
    rows = len(true_arr)
    reid = ReidentificationAttack(
        activations.reshape(len(activations), -1)
    ).evaluate(
        np.concatenate(observed_rows, axis=0),
        np.asarray(observed_indices),
        k=min(5, len(activations)),
    )
    min_anonymity = min(anonymity) if anonymity else None
    return ShuffleLeakageReport(
        positional_accuracy=float(np.mean(claimed_arr == true_arr)),
        positional_chance=chance_weighted / rows,
        session_mi_bits=discrete_mutual_information(claimed_arr, true_arr),
        session_entropy_bits=_entropy_bits(true_arr),
        reid_top1=reid.top1_rate,
        reid_advantage=reid.advantage,
        mixing_index=(float(np.mean(mixing)) if mixing else None),
        mean_anonymity_set=(float(np.mean(anonymity)) if anonymity else None),
        min_anonymity_set=min_anonymity,
        epsilon_amplified=(
            amplified_epsilon(epsilon0, min_anonymity, delta)
            if epsilon0 is not None and min_anonymity is not None
            else None
        ),
        batches=len(frames),
        rows=rows,
    )


def sweep_mixing_tradeoff(
    activations: np.ndarray,
    session_ids,
    *,
    observed: np.ndarray | None = None,
    batch_windows=(2, 4, 8),
    shard_counts=(1, 2),
    worker_counts=(1,),
    isolation_policies=(False, True),
    shuffle_modes=(False, True),
    shuffle_seed: int = 0,
    epsilon0: float | None = None,
    delta: float = 1e-5,
) -> list[dict]:
    """The privacy/mixing tradeoff surface: one leakage report per
    configuration on the cross product of the given axes.

    Isolation and shuffling are mutually pointless (an isolated batch has
    nothing to mix), so the ``(isolate_sessions=True, shuffle=True)``
    corner is still evaluated — its report *demonstrates* the pointlessness
    (anonymity sets of 1, no amplification) rather than hiding it.

    Returns a list of plain dicts (``config`` knobs +
    :meth:`ShuffleLeakageReport.as_dict` fields), ready for JSON bench
    reports.  Deterministic: same inputs and seed, same list.
    """
    surface: list[dict] = []
    for batch_window in batch_windows:
        for shards in shard_counts:
            for workers in worker_counts:
                for isolate in isolation_policies:
                    for shuffle in shuffle_modes:
                        report = evaluate_shuffle_leakage(
                            activations,
                            session_ids,
                            observed=observed,
                            batch_window=batch_window,
                            shuffle=shuffle,
                            shuffle_seed=shuffle_seed,
                            isolate_sessions=isolate,
                            shards=shards,
                            workers=workers,
                            epsilon0=epsilon0,
                            delta=delta,
                        )
                        row = {
                            "batch_window": int(batch_window),
                            "shards": int(shards),
                            "workers": int(workers),
                            "isolate_sessions": bool(isolate),
                            "shuffle": bool(shuffle),
                        }
                        row.update(report.as_dict())
                        surface.append(row)
    return surface
