"""``repro.privacy`` — information-theoretic estimators (the ITE substitute).

kNN entropy/MI estimators (Kozachenko-Leonenko, KSG), closed-form Gaussian
references for validation, PCA pre-reduction, and the leakage measurement
pipeline used by every experiment.
"""

from repro.privacy.binned import (
    binned_mutual_information,
    joint_code,
    plugin_entropy_bits,
    quantile_bin,
)
from repro.privacy.bootstrap import MIInterval, subsampled_mi_interval
from repro.privacy.bounds import (
    LeakageBracket,
    gaussian_channel_bracket,
    gaussian_entropy_bits,
    laplace_channel_bracket,
    laplace_entropy_bits,
    max_entropy_upper_bound_bits,
    saddle_point_lower_bound_bits,
    snr_privacy_curve,
)
from repro.privacy.entropy import (
    gaussian_entropy,
    histogram_entropy,
    kl_entropy,
    kl_entropy_reference,
    kth_neighbor_distances,
    unit_ball_log_volume,
)
from repro.privacy.gaussian import (
    awgn_capacity_bits,
    awgn_vector_mi_bits,
    correlated_gaussian_mi_bits,
    mi_to_ex_vivo_privacy,
    multivariate_gaussian_mi_bits,
    snr_to_in_vivo_privacy,
)
from repro.privacy.metrics import (
    LeakageEstimate,
    estimate_leakage,
    information_loss_bits,
    information_loss_percent,
)
from repro.privacy.mutual_information import (
    discrete_mutual_information,
    entropy_sum_mi,
    ksg_mutual_information,
    ksg_mutual_information_reference,
)
from repro.privacy.reduction import PCAReducer, flatten_batch, randomized_svd
from repro.privacy.shuffle_eval import (
    ShuffleLeakageReport,
    WireBatch,
    amplified_epsilon,
    evaluate_shuffle_leakage,
    sweep_mixing_tradeoff,
    tap_wire_batches,
)

__all__ = [
    "LeakageEstimate",
    "LeakageBracket",
    "MIInterval",
    "ShuffleLeakageReport",
    "WireBatch",
    "amplified_epsilon",
    "evaluate_shuffle_leakage",
    "sweep_mixing_tradeoff",
    "tap_wire_batches",
    "gaussian_channel_bracket",
    "gaussian_entropy_bits",
    "laplace_channel_bracket",
    "laplace_entropy_bits",
    "max_entropy_upper_bound_bits",
    "saddle_point_lower_bound_bits",
    "snr_privacy_curve",
    "PCAReducer",
    "randomized_svd",
    "binned_mutual_information",
    "joint_code",
    "plugin_entropy_bits",
    "quantile_bin",
    "subsampled_mi_interval",
    "awgn_capacity_bits",
    "awgn_vector_mi_bits",
    "correlated_gaussian_mi_bits",
    "discrete_mutual_information",
    "entropy_sum_mi",
    "estimate_leakage",
    "flatten_batch",
    "gaussian_entropy",
    "histogram_entropy",
    "information_loss_bits",
    "information_loss_percent",
    "kl_entropy",
    "kl_entropy_reference",
    "ksg_mutual_information",
    "ksg_mutual_information_reference",
    "kth_neighbor_distances",
    "mi_to_ex_vivo_privacy",
    "multivariate_gaussian_mi_bits",
    "snr_to_in_vivo_privacy",
    "unit_ball_log_volume",
]
