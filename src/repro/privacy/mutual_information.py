"""Mutual information estimators.

Two kNN estimators of Shannon MI between continuous vectors:

* :func:`ksg_mutual_information` — the Kraskov-Stögbauer-Grassberger
  (KSG-1) estimator, the standard low-bias choice.
* :func:`entropy_sum_mi` — ``I(X;Y) = H(X) + H(Y) − H(X,Y)`` with each term
  from the Kozachenko-Leonenko estimator; this mirrors the ITE toolbox's
  "Shannon MI with KL divergence" configuration the paper cites.

Both report **bits**.

KSG's geometric queries run on one of two backends: a compiled
cache-blocked kernel (:mod:`repro.privacy._fastknn`) that derives the joint
radii and both marginal counts from shared per-query distance rows, or a
scipy path using a ``workers=-1`` parallel tree query plus a single
vectorised ``query_ball_point(points, radii, return_length=True)`` call,
chunked over query points so memory stays flat at large sample counts.
Both backends reproduce the original implementation's results exactly;
:func:`ksg_mutual_information_reference` preserves the pre-vectorisation
per-point-loop code as the parity baseline and benchmark "before" side.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

from repro.errors import EstimatorError
from repro.privacy import _fastknn
from repro.privacy.entropy import (
    DEFAULT_CHUNK_SIZE,
    _resolve_backend,
    _validate_samples,
    kl_entropy,
)

_LN2 = math.log(2.0)

#: Strictness margin making the marginal ball count exclude the boundary.
_RADIUS_TOL = 1e-12


def _paired(x: np.ndarray, y: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    x = _validate_samples(x, minimum=k + 2)
    y = _validate_samples(y, minimum=k + 2)
    if len(x) != len(y):
        raise EstimatorError(
            f"x and y must be paired samples; got {len(x)} vs {len(y)}"
        )
    return _standardize(x), _standardize(y)


def _standardize(samples: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance per dimension.

    MI is invariant under invertible per-variable transforms, but the KSG
    max-norm neighbourhoods are not: wildly different marginal scales let
    one variable dominate the joint radius.  Standardising first is the
    standard fix and restores practical scale invariance.
    """
    mean = samples.mean(axis=0)
    std = samples.std(axis=0)
    return (samples - mean) / np.maximum(std, 1e-12)


def _jitter_generator(
    jitter_rng: np.random.Generator | int | None,
) -> np.random.Generator:
    """Resolve the tie-breaking jitter randomness.

    ``None`` keeps the historical fixed seed 0, so single estimator calls
    stay bitwise identical to every release before the seed was exposed.
    Resampling loops must pass a distinct seed (or generator) per draw —
    a shared fixed seed adds *identical* jitter to every replicate, which
    correlates the draws and understates interval width.
    """
    if jitter_rng is None:
        return np.random.default_rng(0)
    if isinstance(jitter_rng, np.random.Generator):
        return jitter_rng
    return np.random.default_rng(jitter_rng)


def _jittered(
    x: np.ndarray,
    y: np.ndarray,
    jitter: float,
    jitter_rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    if not jitter:
        return x, y
    rng = _jitter_generator(jitter_rng)
    x = x + rng.normal(0.0, jitter, size=x.shape)
    y = y + rng.normal(0.0, jitter, size=y.shape)
    return x, y


def _ksg_counts_scipy(
    x: np.ndarray, y: np.ndarray, k: int, chunk_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Marginal neighbour counts via vectorised, chunked scipy queries."""
    n = len(x)
    if chunk_size < 1:
        raise EstimatorError(f"chunk_size must be >= 1, got {chunk_size}")
    joint = np.concatenate([x, y], axis=1)
    joint_tree = cKDTree(joint)
    x_tree = cKDTree(x)
    y_tree = cKDTree(y)
    nx = np.empty(n, dtype=np.int64)
    ny = np.empty(n, dtype=np.int64)
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        # Chebyshev (max) norm is what makes the KSG marginal counts exact.
        distances, _ = joint_tree.query(
            joint[start:stop], k=k + 1, p=np.inf, workers=-1
        )
        radius = distances[:, k] - _RADIUS_TOL
        # Count within-radius marginal neighbours, excluding self.
        nx[start:stop] = (
            x_tree.query_ball_point(
                x[start:stop], radius, p=np.inf, return_length=True, workers=-1
            )
            - 1
        )
        ny[start:stop] = (
            y_tree.query_ball_point(
                y[start:stop], radius, p=np.inf, return_length=True, workers=-1
            )
            - 1
        )
    return nx, ny


def ksg_mutual_information(
    x: np.ndarray,
    y: np.ndarray,
    k: int = 3,
    jitter: float = 1e-10,
    backend: str = "auto",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    jitter_rng: np.random.Generator | int | None = None,
) -> float:
    """KSG estimator (algorithm 1) of I(X;Y) in bits.

    ``I ≈ ψ(k) + ψ(N) − <ψ(n_x + 1) + ψ(n_y + 1)>`` where ``n_x``/``n_y``
    count neighbours within the joint-space k-NN radius (max-norm).

    Args:
        x: ``(N, dx)`` samples.
        y: ``(N, dy)`` samples, paired with ``x``.
        k: Neighbour order.
        jitter: Tie-breaking noise.
        backend: ``"auto"``, ``"c"`` (compiled kernel), or ``"scipy"``
            (parallel tree queries).  All backends agree exactly.
        chunk_size: Query-chunk length for the scipy backend, keeping its
            memory flat in ``N``.
        jitter_rng: Seed or generator for the tie-breaking jitter.
            ``None`` (the default) keeps the historical fixed seed 0;
            resampling callers must pass a distinct value per draw.
    """
    x, y = _paired(x, y, k)
    n = len(x)
    if k < 1 or k >= n:
        raise EstimatorError(f"k must be in [1, N); got k={k}, N={n}")
    x, y = _jittered(x, y, jitter, jitter_rng)
    if _resolve_backend(backend, n, k) == "c":
        _, nx, ny = _fastknn.ksg_counts(x, y, k, tol=_RADIUS_TOL)
    else:
        nx, ny = _ksg_counts_scipy(x, y, k, chunk_size)
    nats = (
        digamma(k)
        + digamma(n)
        - float(np.mean(digamma(nx + 1) + digamma(ny + 1)))
    )
    return max(nats, 0.0) / _LN2


def ksg_mutual_information_reference(
    x: np.ndarray,
    y: np.ndarray,
    k: int = 3,
    jitter: float = 1e-10,
    jitter_rng: np.random.Generator | int | None = None,
) -> float:
    """The pre-vectorisation KSG implementation (per-point Python loop).

    Retained verbatim as the parity baseline for the fast backends and as
    the "before" side of the hot-path benchmark.  ``jitter_rng`` matches
    :func:`ksg_mutual_information` so parity checks can pin the jitter.
    """
    x, y = _paired(x, y, k)
    n = len(x)
    if k < 1 or k >= n:
        raise EstimatorError(f"k must be in [1, N); got k={k}, N={n}")
    x, y = _jittered(x, y, jitter, jitter_rng)
    joint = np.concatenate([x, y], axis=1)
    joint_tree = cKDTree(joint)
    distances, _ = joint_tree.query(joint, k=k + 1, p=np.inf)
    radius = distances[:, k]
    x_tree = cKDTree(x)
    y_tree = cKDTree(y)
    nx = np.array(
        [
            len(x_tree.query_ball_point(x[i], radius[i] - _RADIUS_TOL, p=np.inf)) - 1
            for i in range(n)
        ]
    )
    ny = np.array(
        [
            len(y_tree.query_ball_point(y[i], radius[i] - _RADIUS_TOL, p=np.inf)) - 1
            for i in range(n)
        ]
    )
    nats = (
        digamma(k)
        + digamma(n)
        - float(np.mean(digamma(nx + 1) + digamma(ny + 1)))
    )
    return max(nats, 0.0) / _LN2


def entropy_sum_mi(
    x: np.ndarray,
    y: np.ndarray,
    k: int = 3,
    backend: str = "auto",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> float:
    """MI via the entropy combination H(X)+H(Y)−H(X,Y), in bits.

    This is the ITE-toolbox-style construction the paper used.  It shares
    the KL entropy estimator's bias on each term, which largely cancels in
    the combination.
    """
    x, y = _paired(x, y, k)
    joint = np.concatenate([x, y], axis=1)
    value = (
        kl_entropy(x, k=k, backend=backend, chunk_size=chunk_size)
        + kl_entropy(y, k=k, backend=backend, chunk_size=chunk_size)
        - kl_entropy(joint, k=k, backend=backend, chunk_size=chunk_size)
    )
    return max(value, 0.0)


def discrete_mutual_information(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Plug-in MI between two discrete label arrays, in bits."""
    labels_a = np.asarray(labels_a).reshape(-1)
    labels_b = np.asarray(labels_b).reshape(-1)
    if labels_a.shape != labels_b.shape:
        raise EstimatorError("label arrays must have identical length")
    n = len(labels_a)
    if n == 0:
        raise EstimatorError("cannot estimate MI from zero samples")
    values_a, inverse_a = np.unique(labels_a, return_inverse=True)
    values_b, inverse_b = np.unique(labels_b, return_inverse=True)
    joint = np.zeros((len(values_a), len(values_b)))
    np.add.at(joint, (inverse_a, inverse_b), 1.0)
    joint /= n
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = np.zeros_like(joint)
    ratio[mask] = joint[mask] / (pa @ pb)[mask]
    return float(np.sum(joint[mask] * np.log2(ratio[mask])))
