"""Mutual information estimators.

Two kNN estimators of Shannon MI between continuous vectors:

* :func:`ksg_mutual_information` — the Kraskov-Stögbauer-Grassberger
  (KSG-1) estimator, the standard low-bias choice.
* :func:`entropy_sum_mi` — ``I(X;Y) = H(X) + H(Y) − H(X,Y)`` with each term
  from the Kozachenko-Leonenko estimator; this mirrors the ITE toolbox's
  "Shannon MI with KL divergence" configuration the paper cites.

Both report **bits**.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

from repro.errors import EstimatorError
from repro.privacy.entropy import _validate_samples, kl_entropy

_LN2 = math.log(2.0)


def _paired(x: np.ndarray, y: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    x = _validate_samples(x, minimum=k + 2)
    y = _validate_samples(y, minimum=k + 2)
    if len(x) != len(y):
        raise EstimatorError(
            f"x and y must be paired samples; got {len(x)} vs {len(y)}"
        )
    return _standardize(x), _standardize(y)


def _standardize(samples: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance per dimension.

    MI is invariant under invertible per-variable transforms, but the KSG
    max-norm neighbourhoods are not: wildly different marginal scales let
    one variable dominate the joint radius.  Standardising first is the
    standard fix and restores practical scale invariance.
    """
    mean = samples.mean(axis=0)
    std = samples.std(axis=0)
    return (samples - mean) / np.maximum(std, 1e-12)


def ksg_mutual_information(
    x: np.ndarray, y: np.ndarray, k: int = 3, jitter: float = 1e-10
) -> float:
    """KSG estimator (algorithm 1) of I(X;Y) in bits.

    ``I ≈ ψ(k) + ψ(N) − <ψ(n_x + 1) + ψ(n_y + 1)>`` where ``n_x``/``n_y``
    count neighbours within the joint-space k-NN radius (max-norm).

    Args:
        x: ``(N, dx)`` samples.
        y: ``(N, dy)`` samples, paired with ``x``.
        k: Neighbour order.
        jitter: Tie-breaking noise.
    """
    x, y = _paired(x, y, k)
    n = len(x)
    if k < 1 or k >= n:
        raise EstimatorError(f"k must be in [1, N); got k={k}, N={n}")
    if jitter:
        rng = np.random.default_rng(0)
        x = x + rng.normal(0.0, jitter, size=x.shape)
        y = y + rng.normal(0.0, jitter, size=y.shape)
    joint = np.concatenate([x, y], axis=1)
    joint_tree = cKDTree(joint)
    # Chebyshev (max) norm is what makes the KSG marginal counts exact.
    distances, _ = joint_tree.query(joint, k=k + 1, p=np.inf)
    radius = distances[:, k]
    x_tree = cKDTree(x)
    y_tree = cKDTree(y)
    # Count strictly-within-radius marginal neighbours, excluding self.
    nx = np.array(
        [
            len(x_tree.query_ball_point(x[i], radius[i] - 1e-12, p=np.inf)) - 1
            for i in range(n)
        ]
    )
    ny = np.array(
        [
            len(y_tree.query_ball_point(y[i], radius[i] - 1e-12, p=np.inf)) - 1
            for i in range(n)
        ]
    )
    nats = (
        digamma(k)
        + digamma(n)
        - float(np.mean(digamma(nx + 1) + digamma(ny + 1)))
    )
    return max(nats, 0.0) / _LN2


def entropy_sum_mi(x: np.ndarray, y: np.ndarray, k: int = 3) -> float:
    """MI via the entropy combination H(X)+H(Y)−H(X,Y), in bits.

    This is the ITE-toolbox-style construction the paper used.  It shares
    the KL entropy estimator's bias on each term, which largely cancels in
    the combination.
    """
    x, y = _paired(x, y, k)
    joint = np.concatenate([x, y], axis=1)
    value = kl_entropy(x, k=k) + kl_entropy(y, k=k) - kl_entropy(joint, k=k)
    return max(value, 0.0)


def discrete_mutual_information(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Plug-in MI between two discrete label arrays, in bits."""
    labels_a = np.asarray(labels_a).reshape(-1)
    labels_b = np.asarray(labels_b).reshape(-1)
    if labels_a.shape != labels_b.shape:
        raise EstimatorError("label arrays must have identical length")
    n = len(labels_a)
    if n == 0:
        raise EstimatorError("cannot estimate MI from zero samples")
    values_a, inverse_a = np.unique(labels_a, return_inverse=True)
    values_b, inverse_b = np.unique(labels_b, return_inverse=True)
    joint = np.zeros((len(values_a), len(values_b)))
    np.add.at(joint, (inverse_a, inverse_b), 1.0)
    joint /= n
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = np.zeros_like(joint)
    ratio[mask] = joint[mask] / (pa @ pb)[mask]
    return float(np.sum(joint[mask] * np.log2(ratio[mask])))
