"""Dimensionality reduction ahead of kNN MI estimation.

kNN information estimators are unusable in the raw pixel/activation space
(thousands of dimensions, tiny sample counts), so — like every practical MI
measurement pipeline — we project both variables to a small number of
principal components first, then estimate MI in the reduced space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimatorError


class PCAReducer:
    """Principal component projection fitted by SVD.

    Args:
        n_components: Output dimensionality.
        whiten: Scale components to unit variance — recommended before
            kNN estimation so all dimensions contribute comparably.
    """

    def __init__(self, n_components: int, whiten: bool = True) -> None:
        if n_components < 1:
            raise EstimatorError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.whiten = whiten
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.scales_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCAReducer":
        """Fit the projection on ``(N, D)`` data (rows = samples)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise EstimatorError(f"expected (N, D) data, got shape {data.shape}")
        n, d = data.shape
        if n < 2:
            raise EstimatorError("need at least 2 samples to fit PCA")
        k = min(self.n_components, d, n - 1)
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        # Economy SVD; components are right singular vectors.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[:k]
        variance = (singular_values[:k] ** 2) / max(n - 1, 1)
        self.explained_variance_ = variance
        self.scales_ = np.sqrt(np.maximum(variance, 1e-12))
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``(N, D)`` data onto the fitted components."""
        if self.components_ is None:
            raise EstimatorError("PCAReducer must be fitted before transform")
        data = np.asarray(data, dtype=np.float64)
        projected = (data - self.mean_) @ self.components_.T
        if self.whiten:
            projected = projected / self.scales_
        return projected

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` then project it."""
        return self.fit(data).transform(data)


def flatten_batch(array: np.ndarray) -> np.ndarray:
    """Flatten any (N, ...) batch into (N, D) for the estimators."""
    array = np.asarray(array)
    if array.ndim < 2:
        raise EstimatorError(f"expected a batch, got shape {array.shape}")
    return array.reshape(len(array), -1)
