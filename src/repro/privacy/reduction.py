"""Dimensionality reduction ahead of kNN MI estimation.

kNN information estimators are unusable in the raw pixel/activation space
(thousands of dimensions, tiny sample counts), so — like every practical MI
measurement pipeline — we project both variables to a small number of
principal components first, then estimate MI in the reduced space.

At ``paper`` scale the fit matrix is ``(N≈1000, D≈3-12k)`` and the exact
economy SVD dominates the reduction step while only the top ~16 components
are kept.  :class:`PCAReducer` therefore switches to a randomized
range-finder SVD (Halko, Martinsson & Tropp 2011) once the input is large
enough — ``O(N·D·k)`` instead of ``O(N·D·min(N, D))`` — and keeps the exact
economy SVD both as the small-input path and as the parity reference the
seeded randomized path is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimatorError

#: Elements of the fit matrix above which ``svd="auto"`` goes randomized.
RANDOMIZED_SVD_MIN_ELEMENTS = 1_000_000

#: Extra random probe directions beyond ``k`` (oversampling parameter p).
RANDOMIZED_SVD_OVERSAMPLES = 10

#: Power (subspace) iterations; 4 is plenty for PCA spectra with decay.
RANDOMIZED_SVD_ITERATIONS = 4


def randomized_svd(
    data: np.ndarray,
    k: int,
    n_oversamples: int = RANDOMIZED_SVD_OVERSAMPLES,
    n_iter: int = RANDOMIZED_SVD_ITERATIONS,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD via a randomized range finder with power iterations.

    Projects ``data`` onto ``k + n_oversamples`` random Gaussian
    directions, sharpens the captured subspace with QR-stabilised power
    iterations, and solves the small exact SVD inside it.

    Args:
        data: ``(N, D)`` matrix.
        k: Singular triplets to return (``k <= min(N, D)``).
        n_oversamples: Extra probe directions (improves accuracy).
        n_iter: Power iterations (improves accuracy for flat spectra).
        rng: Probe randomness; seeded by callers for reproducibility.

    Returns:
        ``(U, s, Vt)`` with shapes ``(N, k)``, ``(k,)``, ``(k, D)``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise EstimatorError(f"expected a matrix, got shape {data.shape}")
    n, d = data.shape
    if not 1 <= k <= min(n, d):
        raise EstimatorError(f"k must be in [1, {min(n, d)}], got {k}")
    rng = rng or np.random.default_rng(0)
    width = min(k + max(0, n_oversamples), min(n, d))
    probes = rng.standard_normal((d, width))
    sketch = data @ probes
    q, _ = np.linalg.qr(sketch)
    for _ in range(max(0, n_iter)):
        q, _ = np.linalg.qr(data.T @ q)
        q, _ = np.linalg.qr(data @ q)
    small = q.T @ data  # (width, D)
    u_small, singular_values, vt = np.linalg.svd(small, full_matrices=False)
    u = q @ u_small
    return u[:, :k], singular_values[:k], vt[:k]


class PCAReducer:
    """Principal component projection fitted by SVD.

    Args:
        n_components: Output dimensionality.
        whiten: Scale components to unit variance — recommended before
            kNN estimation so all dimensions contribute comparably.
        svd: ``"exact"`` (economy SVD), ``"randomized"`` (seeded Halko
            sketch), or ``"auto"`` (default): randomized once the fit
            matrix exceeds :data:`RANDOMIZED_SVD_MIN_ELEMENTS` elements and
            the component count is small relative to the matrix, exact
            otherwise.
        rng: Randomness for the randomized path; defaults to a fixed seed
            so repeated fits of the same data agree.
    """

    def __init__(
        self,
        n_components: int,
        whiten: bool = True,
        svd: str = "auto",
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_components < 1:
            raise EstimatorError(f"n_components must be >= 1, got {n_components}")
        if svd not in ("auto", "exact", "randomized"):
            raise EstimatorError(
                f"svd must be 'auto', 'exact', or 'randomized', got {svd!r}"
            )
        self.n_components = n_components
        self.whiten = whiten
        self.svd = svd
        self._rng = rng
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.scales_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    def _use_randomized(self, n: int, d: int, k: int) -> bool:
        if self.svd == "exact":
            return False
        if self.svd == "randomized":
            return True
        # auto: only worthwhile when the exact SVD is large and the kept
        # subspace (plus oversampling) is a small fraction of it.
        return (
            n * d >= RANDOMIZED_SVD_MIN_ELEMENTS
            and (k + RANDOMIZED_SVD_OVERSAMPLES) * 4 <= min(n, d)
        )

    def fit(self, data: np.ndarray) -> "PCAReducer":
        """Fit the projection on ``(N, D)`` data (rows = samples)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise EstimatorError(f"expected (N, D) data, got shape {data.shape}")
        n, d = data.shape
        if n < 2:
            raise EstimatorError("need at least 2 samples to fit PCA")
        k = min(self.n_components, d, n - 1)
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        if self._use_randomized(n, d, k):
            rng = self._rng or np.random.default_rng(0)
            _, singular_values, vt = randomized_svd(centered, k, rng=rng)
        else:
            # Economy SVD; components are right singular vectors.
            _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[:k]
        variance = (singular_values[:k] ** 2) / max(n - 1, 1)
        self.explained_variance_ = variance
        self.scales_ = np.sqrt(np.maximum(variance, 1e-12))
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``(N, D)`` data onto the fitted components."""
        if self.components_ is None:
            raise EstimatorError("PCAReducer must be fitted before transform")
        data = np.asarray(data, dtype=np.float64)
        projected = (data - self.mean_) @ self.components_.T
        if self.whiten:
            projected = projected / self.scales_
        return projected

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` then project it."""
        return self.fit(data).transform(data)


def flatten_batch(array: np.ndarray) -> np.ndarray:
    """Flatten any (N, ...) batch into (N, D) for the estimators."""
    array = np.asarray(array)
    if array.ndim < 2:
        raise EstimatorError(f"expected a batch, got shape {array.shape}")
    return array.reshape(len(array), -1)
