"""Binned (histogram / plug-in) mutual-information estimation.

A cross-check for the kNN estimators: quantise each continuous dimension
into equal-probability bins and compute the discrete plug-in MI, optionally
with the Miller-Madow bias correction.  Binned estimators are crude in high
dimensions, so this module is used on the PCA-reduced representations the
leakage pipeline already produces, and mainly to *validate* the kNN numbers
(same ordering, same large-vs-small separation) rather than to replace
them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimatorError


def quantile_bin(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Map 1-D values to equal-probability bin indices in ``[0, n_bins)``.

    Equal-probability (quantile) binning keeps every bin populated, which
    stabilises plug-in entropy estimates compared to equal-width bins on
    heavy-tailed data.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if n_bins < 2:
        raise EstimatorError(f"need at least 2 bins, got {n_bins}")
    if len(values) == 0:
        raise EstimatorError("cannot bin an empty array")
    edges = np.quantile(values, np.linspace(0.0, 1.0, n_bins + 1)[1:-1])
    return np.searchsorted(edges, values, side="right")


def joint_code(binned: np.ndarray, n_bins: int) -> np.ndarray:
    """Collapse per-dimension bin indices ``(N, d)`` to one code per row."""
    binned = np.asarray(binned)
    if binned.ndim == 1:
        binned = binned[:, None]
    codes = np.zeros(len(binned), dtype=np.int64)
    for column in range(binned.shape[1]):
        codes = codes * n_bins + binned[:, column]
    return codes


def plugin_entropy_bits(codes: np.ndarray, miller_madow: bool = True) -> float:
    """Plug-in entropy of discrete codes, in bits.

    Args:
        codes: Integer code per sample.
        miller_madow: Apply the ``(m − 1) / (2N ln 2)`` bias correction,
            where ``m`` is the number of occupied bins.
    """
    codes = np.asarray(codes).reshape(-1)
    n = len(codes)
    if n == 0:
        raise EstimatorError("cannot estimate entropy from zero samples")
    _, counts = np.unique(codes, return_counts=True)
    p = counts / n
    entropy = float(-(p * np.log2(p)).sum())
    if miller_madow:
        entropy += (len(counts) - 1) / (2.0 * n * np.log(2.0))
    return entropy


def binned_mutual_information(
    x: np.ndarray,
    y: np.ndarray,
    n_bins: int = 8,
    max_dims: int = 3,
    miller_madow: bool = True,
) -> float:
    """Binned plug-in estimate of I(X;Y) in bits.

    Each side keeps its first ``max_dims`` columns (callers pass
    PCA-reduced data, so these are the highest-variance directions), each
    column is quantile-binned, and MI is computed between the joint codes:
    ``I = H(X) + H(Y) − H(X, Y)``.

    Args:
        x: ``(N, dx)`` samples.
        y: ``(N, dy)`` samples, paired with ``x``.
        n_bins: Bins per dimension.
        max_dims: Columns kept per side (bin count grows as
            ``n_bins**dims`` — keep this small).
        miller_madow: Bias-correct each entropy term.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    if y.ndim == 1:
        y = y[:, None]
    if len(x) != len(y):
        raise EstimatorError(f"paired samples required; got {len(x)} vs {len(y)}")
    if max_dims < 1:
        raise EstimatorError(f"max_dims must be positive, got {max_dims}")
    x = x[:, :max_dims]
    y = y[:, :max_dims]
    x_binned = np.column_stack(
        [quantile_bin(x[:, j], n_bins) for j in range(x.shape[1])]
    )
    y_binned = np.column_stack(
        [quantile_bin(y[:, j], n_bins) for j in range(y.shape[1])]
    )
    x_codes = joint_code(x_binned, n_bins)
    y_codes = joint_code(y_binned, n_bins)
    pair_codes = x_codes * (int(n_bins) ** y.shape[1]) + y_codes
    mi = (
        plugin_entropy_bits(x_codes, miller_madow)
        + plugin_entropy_bits(y_codes, miller_madow)
        - plugin_entropy_bits(pair_codes, miller_madow)
    )
    return max(mi, 0.0)
