"""Uncertainty quantification for leakage estimates.

kNN MI estimates on a few hundred samples carry real sampling noise; the
paper reports point estimates, but comparing configurations (layers,
noise levels, sampling modes) needs error bars.  This module provides
subsample-resampling confidence intervals around
:func:`~repro.privacy.metrics.estimate_leakage`.

Plain bootstrap resampling (sampling *with* replacement) is wrong for kNN
estimators — duplicated points sit at distance zero and wreck the
neighbour statistics — so the interval is built from disjoint-free random
*subsamples* without replacement (an m-out-of-n bootstrap), the standard
workaround in the MI-estimation literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimatorError
from repro.privacy.metrics import estimate_leakage


@dataclass(frozen=True)
class MIInterval:
    """A point estimate with a subsampling confidence interval.

    Attributes:
        mi_bits: MI of the full sample.
        low / high: Percentile interval endpoints from the replicates.
        replicates: The raw replicate estimates.
        subsample_size: Samples per replicate.
    """

    mi_bits: float
    low: float
    high: float
    replicates: tuple[float, ...]
    subsample_size: int

    @property
    def width(self) -> float:
        """Interval width in bits."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.low <= value <= self.high


def subsampled_mi_interval(
    inputs: np.ndarray,
    activations: np.ndarray,
    n_replicates: int = 10,
    subsample_fraction: float = 0.7,
    confidence: float = 0.9,
    n_components: int = 12,
    k: int = 3,
    estimator: str = "ksg",
    rng: np.random.Generator | None = None,
) -> MIInterval:
    """Estimate I(inputs; activations) with a subsampling interval.

    Args:
        inputs: ``(N, ...)`` raw inputs.
        activations: ``(N, ...)`` paired communicated tensors.
        n_replicates: Subsample replicates to draw.
        subsample_fraction: Fraction of samples per replicate (without
            replacement).
        confidence: Central interval mass, e.g. 0.9 for a 90% interval.
        n_components / k / estimator: Forwarded to ``estimate_leakage``.
        rng: Randomness for the subsampling.
    """
    if not 0 < subsample_fraction < 1:
        raise EstimatorError(
            f"subsample fraction must be in (0, 1), got {subsample_fraction}"
        )
    if not 0 < confidence < 1:
        raise EstimatorError(f"confidence must be in (0, 1), got {confidence}")
    if n_replicates < 2:
        raise EstimatorError(f"need >= 2 replicates, got {n_replicates}")
    inputs = np.asarray(inputs)
    activations = np.asarray(activations)
    n = len(inputs)
    if n != len(activations):
        raise EstimatorError(f"paired batches required; got {n} vs {len(activations)}")
    size = max(int(n * subsample_fraction), k + 2, 8)
    if size >= n:
        raise EstimatorError(
            f"subsample size {size} must be below the sample count {n}"
        )
    rng = rng or np.random.default_rng(0)
    point = estimate_leakage(
        inputs, activations, n_components=n_components, k=k, estimator=estimator
    ).mi_bits
    # One independent jitter seed per replicate: a shared fixed seed would
    # add identical tie-breaking noise to every resample, correlating the
    # draws and understating the interval width.
    jitter_seeds = rng.integers(0, np.iinfo(np.int64).max, size=n_replicates)
    replicates = []
    for jitter_seed in jitter_seeds:
        keep = rng.choice(n, size=size, replace=False)
        replicates.append(
            estimate_leakage(
                inputs[keep],
                activations[keep],
                n_components=n_components,
                k=k,
                estimator=estimator,
                jitter_rng=int(jitter_seed),
            ).mi_bits
        )
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [tail, 1.0 - tail])
    return MIInterval(
        mi_bits=point,
        low=float(low),
        high=float(high),
        replicates=tuple(replicates),
        subsample_size=size,
    )
