#!/usr/bin/env python3
"""The three §2.4 noise-training scenarios, side by side.

The paper describes three regimes of the (initial privacy, λ) interplay:

* **hold** — initialise at the target, λ decays immediately, privacy stays
  flat while accuracy recovers;
* **overshoot** — initialise far above the target with λ = 0, accept the
  downward privacy drift while accuracy is regained;
* **rise** — initialise below the target with λ active, privacy climbs to
  the target then stabilises (the Figure 4 dynamic).

This script trains all three on LeNet from the same backbone and prints
the trajectory summaries plus the analytic MI bracket at each endpoint
(how many bits an eavesdropper could still extract, bounded both ways).

Run:
    python examples/training_scenarios.py [tiny|small|paper]
"""

from __future__ import annotations

import sys

from repro.config import Config, get_scale
from repro.eval import run_scenarios
from repro.models import get_pretrained
from repro.privacy import saddle_point_lower_bound_bits


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    get_pretrained("lenet", config)  # pre-train once so the suite is quick

    suite = run_scenarios("lenet", config, verbose=True)
    print()
    print(suite.format())

    print()
    print("analytic per-dimension leakage floor at each endpoint")
    print("(Gaussian saddle point: no additive noise at this SNR can leak less):")
    for outcome in suite.outcomes:
        snr = 1.0 / outcome.final_privacy
        floor = saddle_point_lower_bound_bits(snr)
        print(
            f"  {outcome.scenario:>9}: final 1/SNR {outcome.final_privacy:.3f} "
            f"-> >= {floor:.3f} bits/dim"
        )

    print()
    print(
        "Takeaway: 'rise' reaches the same endpoint as 'hold' from a far\n"
        "less private start, and 'overshoot' buys extra privacy with a\n"
        "slower accuracy recovery — pick the regime by how much accuracy\n"
        "budget the deployment can spend during noise training."
    )


if __name__ == "__main__":
    main()
