#!/usr/bin/env python3
"""Batched serving runtime — multi-user split inference, end to end.

The Figure 2 deployment serves one user at a time; a real multi-user
deployment queues concurrent requests and serves them in micro-batches.
This example trains a noise collection, deploys the batched serving engine
via ``pipeline.deploy()``, pushes a stream of single-image requests through
it, and compares against the retained sequential reference path:

* the batched engine is several times faster (one stacked forward and one
  wire frame per micro-batch),
* yet **bit-identical** in its predictions — both paths run the
  batch-invariant executor and draw the same per-request noise samples,
* and an 8-bit quantised wire shrinks the uplink ~4x at (nearly) no
  accuracy cost.

Run:
    python examples/batched_serving.py [tiny|small|paper]

Equivalent CLI:
    python -m repro serve --network lenet --batch-window 8 --compare-sequential
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.config import Config, get_scale
from repro.edge import Channel
from repro.eval import build_pipeline, get_benchmark
from repro.models import get_pretrained


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    bundle = get_pretrained("lenet", config)
    benchmark = get_benchmark("lenet")

    print("training the noise collection (one-time, vendor-side) ...")
    pipeline = build_pipeline(bundle, benchmark, config)
    collection = pipeline.collect(benchmark.n_members)

    # A realistic-ish uplink: 20 Mbit/s, 15 ms one-way latency.
    channel = Channel(bandwidth_mbps=20.0, latency_ms=15.0)
    requests = min(len(bundle.test_set.images), 96)
    stream = [bundle.test_set.images[i][None] for i in range(requests)]
    labels = bundle.test_set.labels[:requests]

    # --- sequential reference path --------------------------------------
    sequential = pipeline.deploy(collection, batched=False)
    start = time.perf_counter()
    seq_logits = [sequential.infer(images) for images in stream]
    seq_seconds = time.perf_counter() - start

    # --- batched serving runtime ----------------------------------------
    batched = pipeline.deploy(collection, batch_window=8, channel=channel)
    bat_logits = batched.infer_stream(stream)

    identical = all(np.array_equal(a, b) for a, b in zip(seq_logits, bat_logits))
    predictions = np.concatenate([l.argmax(axis=1) for l in bat_logits])
    accuracy = float(np.mean(predictions == labels))
    metrics = batched.metrics

    print()
    print(f"served {requests} single-image requests (batch window 8):")
    print(metrics.format())
    print(f"accuracy          {accuracy:.1%} (clean backbone {bundle.test_accuracy:.1%})")
    print(
        f"sequential        {requests / seq_seconds:.0f} req/s -> batched is "
        f"{metrics.requests_per_second / (requests / seq_seconds):.2f}x faster"
    )
    print(f"bit-identical to the sequential path: {identical}")

    # --- quantised wire --------------------------------------------------
    quantized = pipeline.deploy(
        collection, batch_window=8, channel=Channel(20.0, 15.0), quantize_bits=8
    )
    q_logits = quantized.infer_stream(stream)
    q_predictions = np.concatenate([l.argmax(axis=1) for l in q_logits])
    print()
    print(
        f"8-bit wire: uplink {quantized.metrics.uplink_bytes / 1e3:.1f} kB vs "
        f"{metrics.uplink_bytes / 1e3:.1f} kB float32 "
        f"({quantized.metrics.uplink_bytes / metrics.uplink_bytes:.0%}), "
        f"label agreement {float(np.mean(q_predictions == predictions)):.1%}"
    )


if __name__ == "__main__":
    main()
