#!/usr/bin/env python3
"""Quickstart — Shredder in ~20 lines.

Pre-trains (or loads) the LeNet backbone on the synthetic MNIST surrogate,
learns a noise-tensor collection at the last conv cut, and prints the
Table-1-style summary: mutual-information loss vs accuracy loss.

Run:
    python examples/quickstart.py [tiny|small|paper]
"""

from __future__ import annotations

import sys

from repro.config import Config, get_scale
from repro.core import ShredderPipeline
from repro.eval import build_pipeline, get_benchmark
from repro.models import get_pretrained


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    print(f"scale={scale.name}: pre-training / loading the LeNet backbone ...")
    bundle = get_pretrained("lenet", config, verbose=True)
    print(f"frozen backbone accuracy: {bundle.test_accuracy:.1%}")

    benchmark = get_benchmark("lenet")
    pipeline: ShredderPipeline = build_pipeline(bundle, benchmark, config)
    print(
        f"training a {benchmark.n_members}-member noise collection at cut "
        f"{pipeline.split.cut!r} (lambda={benchmark.lambda_coeff:g}) ..."
    )
    report = pipeline.run(n_members=benchmark.n_members)

    print()
    print(f"clean accuracy:          {report.clean_accuracy:.1%}")
    print(f"noisy accuracy:          {report.noisy_accuracy:.1%}")
    print(f"accuracy loss:           {report.accuracy_loss_percent:.2f}%")
    print(f"original MI:             {report.original_mi_bits:.3f} bits")
    print(f"shredded MI:             {report.shredded_mi_bits:.3f} bits")
    print(f"mutual information loss: {report.mi_loss_percent:.1f}%")
    print(f"noise params / model:    {report.params_ratio_percent:.2f}%")
    print(f"noise training epochs:   {report.epochs:.2f}")
    print()
    print(
        "paper reference (LeNet, real MNIST): 93.74% MI loss at 1.34% "
        "accuracy loss"
    )


if __name__ == "__main__":
    main()
