#!/usr/bin/env python3
"""Multi-deployment serving control plane — several tenants, one pool.

A production Shredder endpoint hosts *many* ``(model, cut, noise
collection)`` deployments at once.  This example stands up three tenants
on one shared cloud worker pool via ``pipeline.deploy_many()``:

* ``shredded`` — the trained noise collection (the paper's deployment),
* ``baseline`` — the privacy-free control (no noise),
* ``isolated`` — the same collection under the ``isolate_sessions``
  batch-composition policy: micro-batches never mix two users, so the
  cross-user mixing index reads 0 (the knob the shuffling-privacy
  analyses ask for), at some occupancy cost.

It then interleaves the tenants' request streams, serves them through the
shared pool, kills one cloud worker mid-run with the fault-injection hook
(crash recovery requeues the in-flight batch on the survivors,
exactly-once), and finally drives the same plane through the asyncio
facade (``await client.submit(...)``) to show the event-loop front door.

Run:
    python examples/multi_model_serving.py [tiny|small|paper]

Equivalent CLI (two networks, shared pool):
    python -m repro serve --deployment a=lenet --deployment b=lenet --workers 4
"""

from __future__ import annotations

import asyncio
import sys

import numpy as np

from repro.config import Config, get_scale
from repro.edge import Channel
from repro.eval import build_pipeline, get_benchmark
from repro.models import get_pretrained
from repro.serve import AsyncServingClient, DeploymentSpec


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    bundle = get_pretrained("lenet", config)
    benchmark = get_benchmark("lenet")

    print("training the noise collection (one-time, vendor-side) ...")
    pipeline = build_pipeline(bundle, benchmark, config)
    collection = pipeline.collect(benchmark.n_members)

    # Kill worker 0 the first time it touches a 'shredded' batch: the
    # dispatcher detects the crash and requeues the batch on the survivors.
    crashed = []

    def chaos_monkey(worker_id, task):
        if not crashed and task.deployment == "shredded":
            crashed.append(worker_id)
            return True
        return False

    plane = pipeline.deploy_many(
        {
            "shredded": collection,
            "baseline": None,
            "isolated": DeploymentSpec(noise=collection, isolate_sessions=True),
        },
        workers=3,
        channel=Channel(bandwidth_mbps=20.0, latency_ms=2.0),
        fault_injector=chaos_monkey,
    )

    requests = min(len(bundle.test_set.images), 48)
    images = bundle.test_set.images
    labels = bundle.test_set.labels[:requests]

    # Interleave the three tenants' streams, four sessions per tenant.
    handles = {name: [] for name in plane.registry.names()}
    for index in range(requests):
        for name in plane.registry.names():
            handles[name].append(
                plane.submit(
                    images[index : index + 1],
                    deployment=name,
                    session_id=f"{name}-user-{index % 4}",
                )
            )
    plane.drain()

    print()
    for name in plane.registry.names():
        predictions = np.concatenate(
            [plane.result(handle).argmax(axis=1) for handle in handles[name]]
        )
        accuracy = float(np.mean(predictions == labels))
        metrics = plane.metrics_by_deployment()[name]
        print(f"=== deployment {name} ===")
        print(metrics.format())
        print(f"accuracy          {accuracy:.1%}")
        print()
    print(
        f"worker crash injected: worker {crashed[0]} died; "
        f"{plane.alive_workers} of 3 workers survive, "
        f"{plane.metrics_by_deployment()['shredded'].requeued_batches} "
        "micro-batch(es) requeued exactly-once"
    )
    plane.close()

    # --- the asyncio front door -----------------------------------------
    async def serve_async() -> float:
        fresh = pipeline.deploy_many(
            {"shredded": collection, "baseline": None}, workers=2
        )
        with fresh:
            async with AsyncServingClient(fresh, max_pending=16) as client:
                callers = [
                    client.classify(
                        images[i : i + 1],
                        deployment=("shredded", "baseline")[i % 2],
                        session_id=f"async-user-{i % 4}",
                    )
                    for i in range(requests)
                ]
                predictions = await asyncio.gather(*callers)
        shredded = np.concatenate(predictions[0::2])
        return float(np.mean(shredded == labels[0:requests:2]))

    accuracy = asyncio.run(serve_async())
    print(
        f"asyncio facade: {requests} concurrent awaits served "
        f"(shredded-tenant accuracy {accuracy:.1%})"
    )


if __name__ == "__main__":
    main()
