#!/usr/bin/env python3
"""Attack evaluation — what concrete adversaries recover from the wire.

Runs the extension attack suite on LeNet's first conv cut: a linear
reconstruction decoder, a nearest-neighbour inverter, and an MLP label
attacker, each against (a) the clean channel, (b) Shredder's sampled
noise, (c) magnitude-matched fresh Laplace noise.  The asymmetric
trade-off of the paper's Figure 1 becomes operational: Shredder hurts the
attackers about as much as blind noise does, while giving up far less
task accuracy.

Run:
    python examples/attack_evaluation.py [network] [tiny|small|paper]
"""

from __future__ import annotations

import sys

from repro.config import Config, get_scale
from repro.eval import run_attack_suite


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "lenet"
    scale = get_scale(sys.argv[2] if len(sys.argv) > 2 else "tiny")
    config = Config(scale=scale)
    print(f"running the attack suite on {network} (scale={scale.name}) ...")
    result = run_attack_suite(network, config, verbose=True)
    print()
    print(result.format())

    clean = result.by_condition("clean")
    shredder = result.by_condition("shredder")
    matched = result.by_condition("matched_laplace")
    print()
    print(
        f"task accuracy kept by Shredder:      "
        f"{shredder.task_accuracy:.1%} (clean {clean.task_accuracy:.1%}, "
        f"blind noise {matched.task_accuracy:.1%})"
    )
    print(
        f"label-attack advantage:              "
        f"{clean.label_attack_advantage:.3f} -> {shredder.label_attack_advantage:.3f}"
    )
    print(
        f"linear reconstruction advantage:     "
        f"{clean.linear_advantage:.3f} -> {shredder.linear_advantage:.3f}"
    )


if __name__ == "__main__":
    main()
