#!/usr/bin/env python3
"""Edge/cloud split inference — the Figure 2 deployment, end to end.

Trains a noise collection for LeNet, then stands up an
:class:`~repro.edge.EdgeDevice` and :class:`~repro.edge.CloudServer`
connected by a simulated lossy channel.  The device sends only noisy
activations; the script reports classification accuracy, traffic, simulated
latency — and what an eavesdropper on the channel could learn (mutual
information between inputs and the transmitted tensors).

Run:
    python examples/edge_cloud_inference.py [tiny|small|paper]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.config import Config, get_scale
from repro.edge import Channel, InferenceSession
from repro.eval import build_pipeline, get_benchmark
from repro.models import get_pretrained
from repro.privacy import estimate_leakage


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    bundle = get_pretrained("lenet", config)
    benchmark = get_benchmark("lenet")

    print("training the noise collection (one-time, on-device or vendor-side) ...")
    pipeline = build_pipeline(bundle, benchmark, config)
    collection = pipeline.collect(benchmark.n_members)
    print(
        f"collection: {len(collection)} members, mean accuracy "
        f"{collection.mean_accuracy():.1%}, mean in-vivo privacy "
        f"{collection.mean_in_vivo_privacy():.3f}"
    )

    # The bundle's datasets are already normalised, so the device gets
    # identity normalisation here; a raw-pixel device would receive
    # bundle.mean / bundle.std instead.
    session = InferenceSession(
        bundle.model,
        cut=pipeline.split.cut,
        mean=np.zeros(1, dtype=np.float32),
        std=np.ones(1, dtype=np.float32),
        noise=collection,
        channel=Channel(bandwidth_mbps=20.0, latency_ms=15.0, drop_rate=0.02,
                        rng=np.random.default_rng(1)),
        rng=np.random.default_rng(config.seed),
    )

    from repro.edge import decode_activation, encode_activation

    images = bundle.test_set.images
    labels = bundle.test_set.labels
    batch = scale.batch_size
    correct = 0
    transmitted = []
    for start in range(0, len(images), batch):
        chunk = images[start : start + batch]
        message = session.device.process(chunk)
        delivered = decode_activation(
            session.channel.transmit(encode_activation(message))
        )
        transmitted.append(delivered.tensor)
        logits = session.server.handle(delivered).logits
        correct += int((logits.argmax(axis=1) == labels[start : start + batch]).sum())
    accuracy = correct / len(labels)

    print()
    print(f"deployed accuracy over the channel: {accuracy:.1%} "
          f"(clean backbone: {bundle.test_accuracy:.1%})")
    stats = session.channel.stats
    print(f"traffic: {stats.messages} messages, {stats.bytes_sent/1e6:.3f} MB, "
          f"{stats.simulated_seconds*1e3:.1f} ms simulated, {stats.drops} drops")

    # What the wire leaks: MI between raw inputs and transmitted tensors.
    eavesdropped = np.concatenate(transmitted)
    leak = estimate_leakage(
        images, eavesdropped, n_components=scale.mi_components,
        max_samples=scale.mi_samples,
    )
    baseline = estimate_leakage(
        images, pipeline.trainer.eval_activations,
        n_components=scale.mi_components, max_samples=scale.mi_samples,
    )
    print(f"eavesdropper's view: {leak.mi_bits:.3f} bits of input information "
          f"(was {baseline.mi_bits:.3f} bits without Shredder — "
          f"{100*(baseline.mi_bits-leak.mi_bits)/baseline.mi_bits:.0f}% less)")


if __name__ == "__main__":
    main()
