#!/usr/bin/env python3
"""Deployment-grade noise sampling + wire quantisation.

Goes one step past the paper's deployment story (§2.5):

1. train a LeNet noise collection as usual;
2. *fit* a per-element Laplace distribution to the members
   (:class:`~repro.core.FittedNoiseDistribution`) so deployment can draw
   fresh tensors instead of replaying stored members;
3. quantise the noisy activation to 8 bits before transmission
   (:mod:`repro.edge.quantization`), cutting communication 4x;
4. report accuracy, leakage, and bytes per inference for each step so you
   can see that neither generalised sampling nor 8-bit transmission breaks
   the accuracy/privacy operating point.

Run:
    python examples/quantized_deployment.py [tiny|small|paper]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.config import Config, get_scale
from repro.core import FittedNoiseDistribution
from repro.edge import calibrate, dequantize, quantize, wire_bytes
from repro.eval import build_pipeline, get_benchmark
from repro.models import get_pretrained
from repro.privacy import estimate_leakage


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    bundle = get_pretrained("lenet", config)
    benchmark = get_benchmark("lenet")

    print("training the noise collection ...")
    pipeline = build_pipeline(bundle, benchmark, config)
    collection = pipeline.collect(benchmark.n_members)
    fitted = FittedNoiseDistribution.fit(collection)
    summary = fitted.summary()
    print(
        f"fitted {summary.family} distribution over {summary.n_members} "
        f"members: mean |location| {summary.mean_abs_location:.3f}, "
        f"mean scale {summary.mean_scale:.3f}"
    )

    activations = pipeline.trainer.eval_activations
    labels = pipeline.trainer.eval_labels
    images = bundle.test_set.images
    rng = np.random.default_rng(config.child_seed("deployment"))

    def leakage(batch: np.ndarray) -> float:
        return estimate_leakage(
            images,
            batch,
            n_components=scale.mi_components,
            max_samples=scale.mi_samples,
            rng=np.random.default_rng(0),
        ).mi_bits

    def accuracy(batch: np.ndarray) -> float:
        return pipeline.split.accuracy_from_activations(batch, labels)

    per_sample = activations.shape[1:]
    float_bytes = int(np.prod(per_sample)) * 4

    noisy_member = activations + collection.sample_batch(rng, len(activations))
    noisy_fitted = activations + fitted.sample_batch(rng, len(activations))
    params = calibrate(noisy_fitted, bits=8, percentile=99.9)
    noisy_wire = dequantize(quantize(noisy_fitted, params), params)

    print()
    print(f"{'configuration':<34} {'accuracy':>9} {'MI (bits)':>10} {'bytes':>7}")
    for name, batch, size in (
        ("no noise (float32)", activations, float_bytes),
        ("member sampling (float32)", noisy_member, float_bytes),
        ("fitted sampling (float32)", noisy_fitted, float_bytes),
        ("fitted sampling + int8 wire", noisy_wire, wire_bytes(per_sample, params)),
    ):
        print(f"{name:<34} {accuracy(batch):>9.3f} {leakage(batch):>10.3f} {size:>7}")

    print()
    print(
        "The int8 row should match the float32 fitted row in accuracy and "
        "leakage while shipping a quarter of the bytes.  Note the fitted\n"
        "rows may trade accuracy against member sampling: trained members "
        "are correlated tensors, and independent per-element draws leave\n"
        "that correlation structure behind — the price of generalising "
        "beyond the stored collection."
    )


if __name__ == "__main__":
    main()
