#!/usr/bin/env python3
"""Fully integer serving: int8 activations *and* int8 weights.

``quantized_deployment.py`` quantises the wire — the noisy activation a
device uploads.  This example quantises the other big tensor in the
deployment too: the model weights, via the opt-in ``int8_weights`` IR
rewrite (``weight_bits=8``).  Composed with the quantised uplink, the
remote half's first conv consumes raw u8 activation codes against i8
weight codes with exact i32 accumulation — no float32 copy of either
operand ever exists on the native backend.

The example deploys the same trained noise collection twice (f32 weights
vs int8 weights, both with an 8-bit wire), pushes an identical request
stream through both, and reports:

* throughput of each deployment (int8 weights are usually *faster*: the
  serving hot path is memory-bound, and the weight working set shrinks
  4x),
* label agreement between the two weight regimes and accuracy against
  the clean labels (the contract gates int8 weights on agreement, not
  bitwise equality — weight rounding is a real accuracy knob),
* bytes saved on the wire (activation quantiser) and in the weight
  working set (per-output-channel symmetric int8 codes + f32 scales).

Run:
    python examples/quantized_serving.py [tiny|small|paper]

Equivalent CLI:
    python -m repro serve --network lenet --quantize-bits 8 --weight-bits 8
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.config import Config, get_scale
from repro.edge import Channel, quantize_weights
from repro.eval import build_pipeline, get_benchmark
from repro.models import get_pretrained


def weight_footprint(state_dict: dict[str, np.ndarray]) -> tuple[int, int]:
    """(float32 bytes, int8 bytes) of every weight matrix in the model.

    The int8 figure prices what the executor actually keeps: the code
    plane (1 byte/element) plus one f32 scale per output channel.
    Biases stay f32 in both regimes and are omitted from both sides.
    """
    f32 = 0
    i8 = 0
    for name, tensor in state_dict.items():
        if not name.endswith("weight") or tensor.ndim < 2:
            continue
        f32 += tensor.size * 4
        wq = quantize_weights(tensor.reshape(tensor.shape[0], -1), bits=8)
        i8 += wq.code_bytes + wq.scales.size * 4
    return f32, i8


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    bundle = get_pretrained("lenet", config)
    benchmark = get_benchmark("lenet")

    print("training the noise collection (one-time, vendor-side) ...")
    pipeline = build_pipeline(bundle, benchmark, config)
    collection = pipeline.collect(benchmark.n_members)

    channel = Channel(bandwidth_mbps=20.0, latency_ms=15.0)
    requests = min(len(bundle.test_set.images), 96)
    stream = [bundle.test_set.images[i][None] for i in range(requests)]
    labels = bundle.test_set.labels[:requests]

    def serve(weight_bits: int | None):
        session = pipeline.deploy(
            collection,
            batch_window=8,
            channel=channel,
            quantize_bits=8,
            weight_bits=weight_bits,
        )
        start = time.perf_counter()
        logits = session.infer_stream(stream)
        seconds = time.perf_counter() - start
        predictions = np.concatenate([l.argmax(axis=1) for l in logits])
        return session, predictions, requests / seconds

    f32_session, f32_pred, f32_rps = serve(None)
    w8_session, w8_pred, w8_rps = serve(8)

    agreement = float(np.mean(w8_pred == f32_pred))
    f32_acc = float(np.mean(f32_pred == labels))
    w8_acc = float(np.mean(w8_pred == labels))
    wire = w8_session.metrics.uplink_bytes
    float_wire = requests * int(np.prod(pipeline.split.activation_shape)) * 4
    wbytes_f32, wbytes_i8 = weight_footprint(bundle.model.state_dict())

    print()
    print(f"served {requests} requests, 8-bit wire, batch window 8:")
    print(f"{'weights':<14} {'req/s':>8} {'accuracy':>9}")
    print(f"{'float32':<14} {f32_rps:>8.0f} {f32_acc:>9.1%}")
    print(f"{'int8':<14} {w8_rps:>8.0f} {w8_acc:>9.1%}")
    print()
    print(
        f"label agreement int8 vs f32 weights: {agreement:.1%} "
        "(deployment gate: >= 99%)"
    )
    print(
        f"uplink            {wire / 1e3:8.1f} kB vs {float_wire / 1e3:.1f} kB "
        f"float32 ({wire / float_wire:.0%})"
    )
    print(
        f"weight working set{wbytes_i8 / 1e3:8.1f} kB vs {wbytes_f32 / 1e3:.1f} kB "
        f"float32 ({wbytes_i8 / wbytes_f32:.0%})"
    )
    print()
    print(
        "Both deployments run the batch-invariant executor, so each is "
        "bitwise deterministic within its weight regime; int8 weights\n"
        "change the arithmetic (per-channel rounding), which is why the "
        "contract is label agreement rather than bit equality."
    )


if __name__ == "__main__":
    main()
