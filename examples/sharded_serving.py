#!/usr/bin/env python3
"""Process-sharded serving — four shards, a million-user trace, bit parity.

The threaded serving engine runs every dispatcher turn (edge half, noise
draws, framing) in one interpreter; process sharding multiplies whole
control planes across subprocesses, with the parent routing each request
to ``hash(session) % N`` over real sockets.  This example:

* trains a noise collection and captures a spawn-safe :class:`ShardSpec`
  (plain arrays — no live channels or executors cross the fork),
* generates a bursty open-loop trace from a million-user population with
  Zipf-heavy per-user request counts,
* replays it through four shards and collects one merged metrics view,
* and verifies each shard is **bit-identical** to its own sequential
  reference session over exactly the requests routed to it.

Run:
    python examples/sharded_serving.py [tiny|small|paper]

Equivalent CLI:
    python -m repro serve --network lenet --shards 4 --trace bursty
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.config import Config, get_scale
from repro.eval import build_pipeline, get_benchmark
from repro.models import get_pretrained
from repro.serve import (
    ShardSpec,
    ShardedServingEngine,
    generate_trace,
    route_session,
    trace_stats,
)

SHARDS = 4


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    bundle = get_pretrained("lenet", config)
    benchmark = get_benchmark("lenet")

    print("training the noise collection (one-time, vendor-side) ...")
    pipeline = build_pipeline(bundle, benchmark, config)
    collection = pipeline.collect(benchmark.n_members)

    # Everything a shard subprocess needs, as plain data: model weights,
    # cut, noise member tensors, seeds.  Works under fork and spawn.
    channels = bundle.model.input_shape[0]
    spec = ShardSpec.capture(
        bundle.model,
        pipeline.split.cut,
        mean=np.zeros(channels, dtype=np.float32),
        std=np.ones(channels, dtype=np.float32),
        noise=collection,
        base_seed=config.seed,
        batch_window=8,
    )

    # A bursty trace drawn from a million-user population: most users
    # appear once, a heavy Zipf head appears many times.
    requests = min(len(bundle.test_set.images), 96)
    trace = generate_trace(
        requests,
        shape="bursty",
        mean_rate_rps=5e3,
        seed=config.seed,
        n_users=1_000_000,
        zipf_exponent=1.1,
    )
    stats = trace_stats(trace)
    stream = [bundle.test_set.images[i][None] for i in range(requests)]
    sessions = [event.session_id for event in trace]
    print(
        f"trace: {requests} requests from {stats['distinct_sessions']} "
        f"distinct users (hottest user: {stats['max_requests_per_user']} "
        f"requests)"
    )

    with ShardedServingEngine(spec, shards=SHARDS) as engine:
        start = time.perf_counter()
        logits = engine.infer_stream(stream, session_ids=sessions)
        elapsed = time.perf_counter() - start
        merged = engine.metrics()

    print()
    print(f"served {requests} requests across {SHARDS} shards:")
    print(merged.format())
    accuracy = float(
        np.mean(
            np.concatenate([l.argmax(axis=1) for l in logits])
            == bundle.test_set.labels[:requests]
        )
    )
    print(
        f"accuracy          {accuracy:.1%} "
        f"(clean backbone {bundle.test_accuracy:.1%})"
    )
    print(f"wall              {elapsed*1e3:.1f} ms ({requests/elapsed:.0f} req/s)")

    # --- per-shard parity ------------------------------------------------
    # Each shard owns its own noise stream, so its outputs must be
    # bit-identical to a sequential reference session (same shard seed)
    # run over exactly the subsequence of requests routed to it.
    references = [spec.reference_session(i, SHARDS) for i in range(SHARDS)]
    identical = all(
        np.array_equal(
            produced,
            references[route_session(session, SHARDS)].infer(images),
        )
        for produced, images, session in zip(logits, stream, sessions)
    )
    print(f"bit-identical to the per-shard sequential references: {identical}")


if __name__ == "__main__":
    main()
