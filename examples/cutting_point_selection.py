#!/usr/bin/env python3
"""Cutting-point selection — regenerates a Figure 6 panel.

For each candidate conv cut of a network, combines the analytic
computation x communication cost model with measured ex-vivo privacy, and
asks the planner which cut an edge deployment should choose.  Reproduces
the paper's conclusions: conv6 for SVHN, conv2 for LeNet.

Run:
    python examples/cutting_point_selection.py [network] [tiny|small|paper]
"""

from __future__ import annotations

import sys

from repro.config import Config, get_scale
from repro.eval import cost_table, run_cutpoints


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "svhn"
    scale = get_scale(sys.argv[2] if len(sys.argv) > 2 else "tiny")
    config = Config(scale=scale)

    print(f"analytic cost model for {network}:")
    for cost in cost_table(network, config):
        print(
            f"  {cost.cut}: {cost.kilomacs:10.1f} kMAC, "
            f"{cost.megabytes:.5f} MB -> product {cost.product:.4f}"
        )

    print("\nmeasuring ex-vivo privacy per cut (matched in-vivo noise) ...")
    analysis = run_cutpoints(network, config, trained=False)
    print()
    print(analysis.format())
    choice = analysis.recommended
    print(
        f"\nplanner choice: {choice.cut} "
        f"(privacy {choice.ex_vivo_privacy:.4g} at cost "
        f"{choice.cost.product:.4f} kMAC*MB)"
    )


if __name__ == "__main__":
    main()
