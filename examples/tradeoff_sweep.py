#!/usr/bin/env python3
"""Accuracy-privacy trade-off sweep — regenerates a Figure 3 panel.

Sweeps the noise level (target in-vivo privacy) on one network and prints
the (accuracy loss, information loss) operating points together with the
Zero-Leakage line, exposing the asymmetric trade-off the paper's λ knob
controls.

Run:
    python examples/tradeoff_sweep.py [network] [tiny|small|paper]
"""

from __future__ import annotations

import sys

from repro.config import Config, get_scale
from repro.eval import run_tradeoff


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "lenet"
    scale = get_scale(sys.argv[2] if len(sys.argv) > 2 else "tiny")
    config = Config(scale=scale)
    curve = run_tradeoff(
        network,
        config,
        levels=(0.1, 0.25, 0.5, 1.0, 2.0),
        verbose=True,
    )
    print()
    print(curve.format())
    steepest = max(
        curve.points,
        key=lambda p: p.information_loss_bits / max(p.accuracy_loss_percent, 0.1),
    )
    print(
        f"\nbest information-per-accuracy point: noise level "
        f"{steepest.target_in_vivo:g} "
        f"({steepest.information_loss_bits:.3f} bits lost for "
        f"{steepest.accuracy_loss_percent:.2f}% accuracy)"
    )


if __name__ == "__main__":
    main()
