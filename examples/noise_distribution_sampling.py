#!/usr/bin/env python3
"""Noise distribution sampling — the §2.5 deployment story.

Demonstrates why Shredder collects a *distribution* of noise tensors
rather than deploying one: a single fixed tensor is a constant shift that
removes zero mutual information, while per-inference draws from the
collection realise a genuinely noisy channel.  Also shows persistence
(save/load) of the collection, which is what an edge device would ship.

Run:
    python examples/noise_distribution_sampling.py [tiny|small|paper]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.config import Config, get_scale
from repro.core import NoiseCollection
from repro.eval import build_pipeline, get_benchmark
from repro.models import get_pretrained
from repro.privacy import estimate_leakage


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "tiny")
    config = Config(scale=scale)
    bundle = get_pretrained("lenet", config)
    benchmark = get_benchmark("lenet")
    pipeline = build_pipeline(bundle, benchmark, config)

    print(f"collecting {benchmark.n_members} trained noise tensors (§2.5) ...")
    collection = pipeline.collect(benchmark.n_members)
    for i, sample in enumerate(collection.samples):
        print(
            f"  member {i}: accuracy {sample.accuracy:.1%}, "
            f"in-vivo privacy {sample.in_vivo_privacy:.3f}"
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = collection.save(Path(tmp) / "lenet_noise.npz")
        print(f"saved -> {path.name} ({path.stat().st_size} bytes)")
        collection = NoiseCollection.load(path)
        print(f"loaded {len(collection)} members back")

    rng = np.random.default_rng(config.seed)
    activations = pipeline.trainer.eval_activations
    images = bundle.test_set.images

    def mi(noisy):
        return estimate_leakage(
            images, noisy, n_components=scale.mi_components,
            max_samples=scale.mi_samples, rng=np.random.default_rng(0),
        ).mi_bits

    original = mi(activations)
    fixed = mi(activations + collection.samples[0].tensor[None])
    sampled = mi(activations + collection.sample_batch(rng, len(activations)))
    elementwise = mi(
        activations
        + np.concatenate(
            [collection.sample_elementwise(rng) for _ in range(len(activations))]
        )
    )

    print()
    print(f"MI(x; a)  no noise:              {original:.3f} bits")
    print(f"MI(x; a') single fixed tensor:   {fixed:.3f} bits   <- constant shift, no privacy")
    print(f"MI(x; a') per-inference samples: {sampled:.3f} bits   <- Shredder deployment")
    print(f"MI(x; a') element-wise samples:  {elementwise:.3f} bits   <- extension")


if __name__ == "__main__":
    main()
