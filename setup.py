"""Setup shim so environments without the ``wheel`` package can still do
an editable install via ``python setup.py develop`` (PEP 660 editable
installs require ``wheel``, which offline environments may lack)."""

from setuptools import setup

setup()
