"""Tests for the global configuration module."""

from __future__ import annotations

import pytest

from repro.config import PAPER, SMALL, TINY, Config, ExperimentScale, cache_dir, get_scale
from repro.errors import ConfigurationError


class TestScales:
    def test_named_scales_ordered(self):
        assert TINY.train_samples < SMALL.train_samples < PAPER.train_samples
        assert TINY.mi_samples < SMALL.mi_samples < PAPER.mi_samples

    def test_get_scale_by_name(self):
        assert get_scale("tiny") is TINY
        assert get_scale("PAPER") is PAPER

    def test_get_scale_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_scale() is TINY

    def test_get_scale_fallback_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale() is SMALL

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            get_scale("huge")

    def test_scaled_shrinks(self):
        half = SMALL.scaled(0.5)
        assert half.train_samples == SMALL.train_samples // 2
        assert half.mi_components == SMALL.mi_components

    def test_scaled_enforces_minimums(self):
        tiny = TINY.scaled(0.001)
        assert tiny.train_samples >= 1
        assert tiny.mi_samples >= 8

    def test_scaled_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            TINY.scaled(0.0)

    def test_scales_frozen(self):
        with pytest.raises(AttributeError):
            TINY.train_samples = 1  # type: ignore[misc]


class TestConfig:
    def test_child_seed_deterministic(self):
        config = Config(seed=42)
        assert config.child_seed("a", 1) == config.child_seed("a", 1)

    def test_child_seed_varies_with_tags(self):
        config = Config(seed=42)
        assert config.child_seed("a") != config.child_seed("b")
        assert config.child_seed("a", 0) != config.child_seed("a", 1)

    def test_child_seed_varies_with_base_seed(self):
        assert Config(seed=1).child_seed("x") != Config(seed=2).child_seed("x")

    def test_child_seed_in_uint32_range(self):
        seed = Config(seed=123456789).child_seed("long", "tag", 99)
        assert 0 <= seed < 2**32

    def test_default_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert Config().scale is TINY


class TestCacheDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "zoo"))
        path = cache_dir()
        assert path == tmp_path / "zoo"
        assert path.is_dir()
