"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_networks(self):
        args = build_parser().parse_args(["table1", "--networks", "lenet", "svhn"])
        assert args.networks == ["lenet", "svhn"]

    def test_scale_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "enormous", "table1"])

    def test_figure5_trained_flag(self):
        args = build_parser().parse_args(["figure5", "--trained"])
        assert args.trained is True

    def test_seed_override(self):
        args = build_parser().parse_args(["--seed", "7", "costs"])
        assert args.seed == 7

    @pytest.mark.parametrize(
        "command",
        [
            "table1",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "attacks",
            "summary",
            "costs",
            "collect",
            "bounds",
            "serve",
        ],
    )
    def test_all_commands_parse(self, command):
        args = build_parser().parse_args([command])
        assert args.command == command

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--batch-window", "16", "--quantize-bits", "8",
             "--requests", "32", "--compare-sequential"]
        )
        assert args.batch_window == 16
        assert args.quantize_bits == 8
        assert args.requests == 32
        assert args.compare_sequential


class TestExecution:
    def test_summary_runs_without_training(self, capsys):
        exit_code = main(["--scale", "tiny", "summary", "--network", "lenet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "conv0" in out and "cut:conv2" in out

    def test_costs_runs(self, capsys):
        # `costs` pre-trains the backbone at tiny scale (~seconds).
        exit_code = main(["--scale", "tiny", "costs", "--network", "lenet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "kMAC" in out and "conv2" in out

    def test_figure6_runs(self, capsys):
        exit_code = main(["--scale", "tiny", "figure6", "--network", "lenet"])
        assert exit_code == 0
        assert "Shredder's cutting point" in capsys.readouterr().out


class TestNewCommands:
    def test_collect_defaults(self):
        args = build_parser().parse_args(["collect"])
        assert args.network == "lenet"
        assert args.out == "noise_collection.npz"
        assert args.fit is None

    def test_collect_fit_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["collect", "--fit", "cauchy"])

    def test_bounds_runs(self, capsys):
        exit_code = main(["bounds", "--signal-power", "4.0", "--scales", "1.0"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "MI lower" in out and "MI upper" in out

    def test_bounds_bracket_ordering(self, capsys):
        main(["bounds", "--signal-power", "2.0", "--scales", "0.5", "2.0"])
        lines = [l.split() for l in capsys.readouterr().out.splitlines()[2:]]
        lower = [float(row[3]) for row in lines]
        upper = [float(row[4]) for row in lines]
        assert all(lo <= hi for lo, hi in zip(lower, upper))
        assert lower[0] > lower[1]  # more noise, less leakage

    def test_collect_writes_collection(self, tmp_path, capsys):
        out = tmp_path / "collection.npz"
        exit_code = main(
            [
                "--scale",
                "tiny",
                "collect",
                "--network",
                "lenet",
                "--members",
                "2",
                "--fit",
                "laplace",
                "--out",
                str(out),
            ]
        )
        assert exit_code == 0
        assert out.exists()
        from repro.core import FittedNoiseDistribution, NoiseCollection

        collection = NoiseCollection.load(out)
        assert len(collection) == 2
        fitted = FittedNoiseDistribution.load(tmp_path / "collection.laplace.npz")
        assert fitted.family == "laplace"
