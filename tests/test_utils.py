"""Tests for the summary utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.utils import activation_statistics, model_summary


class TestModelSummary:
    @pytest.fixture(scope="class")
    def lenet(self):
        return build_model("lenet", np.random.default_rng(0), width=0.25)

    def test_contains_every_layer(self, lenet):
        out = model_summary(lenet)
        for name in lenet.net.layer_names():
            assert name in out

    def test_marks_cut_points(self, lenet):
        out = model_summary(lenet)
        for cut in lenet.cut_names():
            assert f"cut:{cut}" in out

    def test_total_params_match(self, lenet):
        out = model_summary(lenet)
        assert str(lenet.num_parameters()) in out

    def test_title_mentions_model(self, lenet):
        assert "lenet" in model_summary(lenet)


class TestActivationStatistics:
    def test_keys_and_values(self, rng):
        activations = rng.standard_normal((8, 4, 4)).astype(np.float32)
        stats = activation_statistics(activations)
        assert set(stats) == {"mean", "std", "min", "max", "power", "sparsity"}
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["power"] == pytest.approx(np.mean(activations.astype(np.float64) ** 2))

    def test_sparsity_of_relu_output(self):
        activations = np.array([0.0, 0.0, 1.0, 2.0])
        assert activation_statistics(activations)["sparsity"] == pytest.approx(0.5)
