"""Request queue and micro-batcher unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import MicroBatcher, RequestQueue


def image(n=1):
    return np.zeros((n, 1, 4, 4), dtype=np.float32)


class TestRequestQueue:
    def test_fifo_ids(self):
        queue = RequestQueue()
        assert queue.submit(image()) == 0
        assert queue.submit(image()) == 1
        window = queue.pop_window(5)
        assert [r.request_id for r in window] == [0, 1]
        assert len(queue) == 0

    def test_single_image_gains_batch_dim(self):
        queue = RequestQueue()
        queue.submit(np.zeros((1, 4, 4), dtype=np.float32))
        request = queue.pop_window(1)[0]
        assert request.images.shape == (1, 1, 4, 4)
        assert request.rows == 1

    def test_invalid_shapes_rejected(self):
        queue = RequestQueue()
        with pytest.raises(ConfigurationError):
            queue.submit(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ConfigurationError):
            queue.submit(image(0))

    def test_pop_window_bounds(self):
        queue = RequestQueue()
        for _ in range(5):
            queue.submit(image())
        assert len(queue.pop_window(3)) == 3
        assert len(queue.pop_window(3)) == 2
        assert queue.pop_window(3) == []
        with pytest.raises(ConfigurationError):
            queue.pop_window(0)


class TestMicroBatcher:
    def test_window_respected(self):
        queue = RequestQueue()
        for _ in range(10):
            queue.submit(image())
        batcher = MicroBatcher(queue, batch_window=4)
        sizes = []
        while True:
            batch = batcher.next_batch()
            if not batch:
                break
            sizes.append(len(batch))
        assert sizes == [4, 4, 2]

    def test_max_rows_caps_multi_image_requests(self):
        queue = RequestQueue()
        for rows in (3, 3, 3):
            queue.submit(image(rows))
        batcher = MicroBatcher(queue, batch_window=8, max_rows=6)
        first = batcher.next_batch()
        assert [r.rows for r in first] == [3, 3]
        second = batcher.next_batch()
        assert [r.rows for r in second] == [3]

    def test_oversized_request_still_ships_alone(self):
        queue = RequestQueue()
        queue.submit(image(10))
        queue.submit(image(1))
        batcher = MicroBatcher(queue, batch_window=4, max_rows=4)
        first = batcher.next_batch()
        assert [r.rows for r in first] == [10]
        assert [r.rows for r in batcher.next_batch()] == [1]

    def test_order_preserved_after_putback(self):
        queue = RequestQueue()
        ids = [queue.submit(image(2)) for _ in range(4)]
        batcher = MicroBatcher(queue, batch_window=4, max_rows=4)
        seen = []
        while True:
            batch = batcher.next_batch()
            if not batch:
                break
            seen.extend(r.request_id for r in batch)
        assert seen == ids

    def test_invalid_config_rejected(self):
        queue = RequestQueue()
        with pytest.raises(ConfigurationError):
            MicroBatcher(queue, batch_window=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(queue, batch_window=2, max_rows=0)


class TestSloAndSessions:
    def test_slo_and_session_stamped_on_request(self):
        queue = RequestQueue()
        queue.submit(image(), slo_seconds=0.05, session_id="user-1")
        request = queue.peek()
        assert request.slo_seconds == 0.05
        assert request.session_id == "user-1"
        assert request.deadline == pytest.approx(request.submitted_at + 0.05)

    def test_no_slo_means_no_deadline(self):
        queue = RequestQueue()
        queue.submit(image())
        assert queue.peek().deadline is None

    def test_nonpositive_slo_rejected(self):
        queue = RequestQueue()
        with pytest.raises(ConfigurationError):
            queue.submit(image(), slo_seconds=0.0)
        with pytest.raises(ConfigurationError):
            queue.submit(image(), slo_seconds=-1.0)

    def test_injected_clock_stamps_submission(self):
        ticks = iter([3.5, 7.25])
        queue = RequestQueue(clock=lambda: next(ticks))
        queue.submit(image())
        queue.submit(image())
        stamped = [r.submitted_at for r in queue]
        assert stamped == [3.5, 7.25]

    def test_iteration_is_fifo_and_non_destructive(self):
        queue = RequestQueue()
        ids = [queue.submit(image()) for _ in range(3)]
        assert [r.request_id for r in queue] == ids
        assert len(queue) == 3

    def test_peek_empty(self):
        assert RequestQueue().peek() is None
