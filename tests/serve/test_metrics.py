"""ServingMetrics: percentile math vs numpy, SLO attainment edge cases.

The metrics module implements its percentile explicitly; these tests pin
it to ``np.percentile`` (default linear interpolation) on adversarial
distributions — heavy ties, single samples, constant vectors, already
sorted / reversed, subnormal spreads — and exercise the SLO-attainment
bookkeeping around its edge cases (no SLOs, all met, all missed, exact
deadline hits).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serve import ServingMetrics, percentile

ADVERSARIAL = [
    [0.0],
    [5.0, 5.0, 5.0, 5.0],
    [1.0, 1.0, 2.0, 2.0, 2.0, 3.0],
    [3.0, 2.0, 1.0],
    list(range(100)),
    list(range(100))[::-1],
    [0.1] * 99 + [1e9],
    [1e-300, 2e-300, 3e-300],
    [-5.0, -1.0, 0.0, 1.0, 5.0],
]


class TestPercentile:
    @pytest.mark.parametrize("values", ADVERSARIAL)
    @pytest.mark.parametrize("q", [0, 1, 25, 50, 75, 90, 99, 100])
    def test_matches_numpy_on_adversarial_distributions(self, values, q):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)), rel=1e-12, abs=1e-312
        )

    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50
        ),
        q=st.floats(0, 100, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_numpy_everywhere(self, values, q):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)), rel=1e-9, abs=1e-9
        )

    def test_empty_sample_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)
        with pytest.raises(ConfigurationError):
            percentile([1.0], -0.1)

    def test_single_sample_is_every_percentile(self):
        for q in (0, 37.5, 100):
            assert percentile([42.0], q) == 42.0


class TestSloAttainment:
    def test_undefined_without_slos(self):
        metrics = ServingMetrics()
        metrics.record_completion(0.010)  # best-effort request
        assert metrics.slo_attainment is None
        assert metrics.slo_total == 0

    def test_exact_deadline_hit_counts_as_met(self):
        metrics = ServingMetrics()
        metrics.record_completion(0.020, slo_seconds=0.020)
        assert metrics.slo_attainment == 1.0

    def test_mixed_outcomes(self):
        metrics = ServingMetrics()
        metrics.record_completion(0.010, slo_seconds=0.020)  # met
        metrics.record_completion(0.030, slo_seconds=0.020)  # missed
        metrics.record_completion(0.500)  # best-effort, not counted
        assert metrics.slo_total == 2
        assert metrics.slo_attainment == 0.5
        assert len(metrics.latencies) == 3

    def test_all_missed(self):
        metrics = ServingMetrics()
        for _ in range(3):
            metrics.record_completion(1.0, slo_seconds=0.001)
        assert metrics.slo_attainment == 0.0

    def test_format_mentions_attainment_only_with_slos(self):
        metrics = ServingMetrics()
        metrics.record_completion(0.010)
        assert "SLO" not in metrics.format()
        metrics.record_completion(0.010, slo_seconds=0.5)
        assert "SLO attainment    100.0%" in metrics.format()


class TestQueueAgesAndWorkers:
    def test_queue_age_histogram(self):
        metrics = ServingMetrics()
        metrics.queue_ages.extend([0.0, 0.001, 0.002, 0.010])
        histogram = metrics.queue_age_histogram(bins=4)
        assert len(histogram["counts"]) == 4
        assert len(histogram["edges"]) == 5
        assert sum(histogram["counts"]) == 4

    def test_queue_age_histogram_empty_and_invalid(self):
        metrics = ServingMetrics()
        assert metrics.queue_age_histogram() == {"edges": [], "counts": []}
        with pytest.raises(ConfigurationError):
            metrics.queue_age_histogram(bins=0)

    def test_queue_age_percentile_vs_numpy(self):
        metrics = ServingMetrics()
        metrics.queue_ages.extend([0.004, 0.001, 0.001, 0.100])
        assert metrics.queue_age_percentile(90) == pytest.approx(
            float(np.percentile(metrics.queue_ages, 90))
        )

    def test_worker_occupancy(self):
        metrics = ServingMetrics()
        metrics.wall_seconds = 2.0
        metrics.record_worker(0, 1.0)
        metrics.record_worker(1, 0.5)
        metrics.record_worker(0, 0.5)
        assert metrics.worker_batches == {0: 2, 1: 1}
        assert metrics.worker_occupancy() == {0: 0.75, 1: 0.25}
        assert "w0: 2 batches" in metrics.format()

    def test_worker_occupancy_without_wall_time(self):
        metrics = ServingMetrics()
        metrics.record_worker(0, 1.0)
        assert metrics.worker_occupancy() == {0: 0.0}

    def test_as_dict_round_trips_new_fields(self):
        import json

        metrics = ServingMetrics()
        metrics.record_completion(0.010, slo_seconds=0.020)
        metrics.queue_ages.append(0.003)
        metrics.record_worker(0, 0.004)
        payload = metrics.as_dict()
        assert payload["slo_attainment"] == 1.0
        assert payload["slo_total"] == 1
        assert payload["queue_age_p50_ms"] == pytest.approx(3.0)
        assert payload["workers"]["0"]["micro_batches"] == 1
        json.dumps(payload)  # must stay JSON-serialisable


class TestElasticCounters:
    def test_empty_metrics_dict_and_format_are_safe(self):
        """A deployment that never saw traffic (or a freshly-built pool
        metrics object) must still render and serialise."""
        import json

        metrics = ServingMetrics()
        payload = metrics.as_dict()
        assert payload["rejected_requests"] == 0
        assert payload["shed_requests"] == 0
        assert payload["respawned_workers"] == 0
        assert payload["pool_size"] == {
            "samples": 0, "min": None, "max": None, "mean": None,
        }
        json.dumps(payload)
        rendered = metrics.format()  # must not raise on empty samples
        assert "admission" not in rendered
        assert "healing" not in rendered
        assert "pool size" not in rendered

    def test_admission_and_healing_surface_in_dict_and_format(self):
        import json

        metrics = ServingMetrics()
        metrics.rejected_requests = 3
        metrics.shed_requests = 1
        metrics.respawned_workers = 2
        metrics.pool_size_samples.extend([2, 4, 3])
        payload = metrics.as_dict()
        assert payload["rejected_requests"] == 3
        assert payload["shed_requests"] == 1
        assert payload["respawned_workers"] == 2
        assert payload["pool_size"]["samples"] == 3
        assert payload["pool_size"]["min"] == 2
        assert payload["pool_size"]["max"] == 4
        assert payload["pool_size"]["mean"] == pytest.approx(3.0)
        json.dumps(payload)
        rendered = metrics.format()
        assert "admission" in rendered
        assert "healing" in rendered
        assert "pool size" in rendered


class TestMixingIndex:
    def test_single_session_batch_is_zero(self):
        metrics = ServingMetrics()
        metrics.record_mixing(["A", "A", "A"], [1, 1, 1])
        assert metrics.mixing_index == 0.0
        assert metrics.mixing_fractions == [0.0, 0.0, 0.0]

    def test_even_two_session_mix_is_half(self):
        metrics = ServingMetrics()
        metrics.record_mixing(["A", "B", "A", "B"], [1, 1, 1, 1])
        assert metrics.mixing_index == pytest.approx(0.5)

    def test_rows_weight_the_fraction(self):
        metrics = ServingMetrics()
        # A carries 3 of 4 rows; B carries 1 of 4.
        metrics.record_mixing(["A", "B"], [3, 1])
        assert metrics.mixing_fractions == [pytest.approx(0.25),
                                            pytest.approx(0.75)]
        assert metrics.mixing_index == pytest.approx(0.5)

    def test_undefined_when_nothing_dispatched(self):
        """No dispatches means mixing is *undefined*, not perfect
        isolation — matching ``slo_attainment``'s convention (regression:
        this used to read 0.0, indistinguishable from a genuinely
        isolated deployment)."""
        metrics = ServingMetrics()
        assert metrics.mixing_index is None
        metrics.record_mixing([], [])  # empty batch records nothing
        assert metrics.mixing_index is None
        assert metrics.as_dict()["mixing_index"] is None
        assert "cross-user mix" not in metrics.format()
        # A served-but-unmixed stream still reads 0.0, never None.
        metrics.record_mixing(["A"], [1])
        assert metrics.mixing_index == 0.0

    def test_surfaces_in_dict_and_format(self):
        metrics = ServingMetrics()
        metrics.record_mixing(["A", "B"], [1, 1])
        metrics.requeued_batches = 2
        payload = metrics.as_dict()
        assert payload["mixing_index"] == pytest.approx(0.5)
        assert payload["requeued_batches"] == 2
        rendered = metrics.format()
        assert "cross-user mix" in rendered
        assert "requeued" in rendered


class TestShuffleAccounting:
    def test_record_shuffle_counts_distinct_sessions(self):
        metrics = ServingMetrics()
        metrics.record_shuffle(["A", "B", "A", "C"])
        metrics.record_shuffle(["A", "A"])
        assert metrics.shuffled_batches == 2
        assert metrics.anonymity_sets == [3, 1]
        assert metrics.mean_anonymity_set == pytest.approx(2.0)

    def test_empty_metrics_have_no_anonymity(self):
        metrics = ServingMetrics()
        assert metrics.mean_anonymity_set is None
        assert metrics.shuffle_amplification(1.0) is None
        assert metrics.as_dict()["mean_anonymity_set"] is None
        assert "shuffling" not in metrics.format()

    def test_amplification_uses_minimum_anonymity_set(self):
        from repro.privacy.shuffle_eval import amplified_epsilon

        metrics = ServingMetrics()
        metrics.record_shuffle([f"u{i}" for i in range(64)])
        metrics.record_shuffle([f"u{i}" for i in range(8)])
        assert metrics.shuffle_amplification(1.0) == pytest.approx(
            amplified_epsilon(1.0, 8)
        )
        # Amplification never exceeds the local guarantee.
        assert metrics.shuffle_amplification(0.5) <= 0.5

    def test_surfaces_in_dict_and_format(self):
        import json

        metrics = ServingMetrics()
        metrics.record_shuffle(["A", "B"])
        payload = metrics.as_dict()
        assert payload["shuffled_batches"] == 1
        assert payload["mean_anonymity_set"] == pytest.approx(2.0)
        json.dumps(payload)
        assert "shuffling" in metrics.format()


def _loaded_metrics(seed: int, workers: int = 2) -> ServingMetrics:
    """One shard's worth of realistic metrics content."""
    rng = np.random.default_rng(seed)
    metrics = ServingMetrics()
    n = int(rng.integers(5, 20))
    metrics.requests = n
    metrics.samples = 2 * n
    metrics.micro_batches = max(1, n // 3)
    metrics.uplink_bytes = int(rng.integers(1000, 100000))
    metrics.downlink_bytes = int(rng.integers(1000, 100000))
    metrics.wall_seconds = float(rng.uniform(0.1, 2.0))
    metrics.simulated_wire_seconds = float(rng.uniform(0.0, 0.5))
    for _ in range(n):
        metrics.record_completion(
            float(rng.uniform(0.001, 0.2)),
            [None, 0.05, 0.2][int(rng.integers(0, 3))],
        )
    metrics.queue_ages = [float(v) for v in rng.uniform(0, 0.05, size=n)]
    metrics.occupancies = [int(v) for v in rng.integers(1, 5, size=n)]
    metrics.pool_size_samples = [workers] * (n // 2)
    for worker in range(workers):
        metrics.record_worker(worker, float(rng.uniform(0.01, 0.5)))
    metrics.record_mixing(["A", "B", "A"], [1, 2, 1])
    metrics.record_shuffle(["A", "B", "A"])
    metrics.requeued_batches = int(rng.integers(0, 3))
    metrics.rejected_requests = int(rng.integers(0, 3))
    metrics.shed_requests = int(rng.integers(0, 2))
    metrics.respawned_workers = int(rng.integers(0, 2))
    return metrics


class TestMerge:
    """``ServingMetrics.merge`` vs manual aggregation (PR 7, sharding)."""

    def test_counters_are_summed(self):
        parts = [_loaded_metrics(s) for s in (0, 1, 2)]
        merged = ServingMetrics.merge(parts)
        for counter in (
            "requests", "samples", "micro_batches", "uplink_bytes",
            "downlink_bytes", "slo_met", "slo_total", "requeued_batches",
            "rejected_requests", "shed_requests", "respawned_workers",
            "shuffled_batches",
        ):
            assert getattr(merged, counter) == sum(
                getattr(p, counter) for p in parts
            ), counter
        assert merged.simulated_wire_seconds == pytest.approx(
            sum(p.simulated_wire_seconds for p in parts)
        )

    def test_wall_seconds_is_concurrent_max_not_sum(self):
        parts = [_loaded_metrics(s) for s in (3, 4)]
        merged = ServingMetrics.merge(parts)
        assert merged.wall_seconds == max(p.wall_seconds for p in parts)
        # Aggregate throughput: all shards' requests over the span.
        assert merged.requests_per_second == pytest.approx(
            sum(p.requests for p in parts) / max(p.wall_seconds for p in parts)
        )

    def test_percentile_samples_are_concatenated(self):
        parts = [_loaded_metrics(s) for s in (5, 6, 7)]
        merged = ServingMetrics.merge(parts)
        for samples in (
            "latencies", "queue_ages", "mixing_fractions", "anonymity_sets"
        ):
            got = sorted(getattr(merged, samples))
            want = sorted(sum((getattr(p, samples) for p in parts), []))
            assert got == pytest.approx(want), samples
        assert merged.latency_percentile(90) == pytest.approx(
            percentile(sum((p.latencies for p in parts), []), 90)
        )

    def test_occupancy_samples_interleave_round_robin(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.occupancies = [1, 3, 5]
        b.occupancies = [2, 4]
        merged = ServingMetrics.merge([a, b])
        assert merged.occupancies == [1, 2, 3, 4, 5]
        a.pool_size_samples = [10]
        b.pool_size_samples = [20, 30]
        merged = ServingMetrics.merge([a, b])
        assert merged.pool_size_samples == [10, 20, 30]

    def test_worker_tallies_are_namespaced_per_part(self):
        parts = [_loaded_metrics(s, workers=2) for s in (8, 9)]
        merged = ServingMetrics.merge(parts)
        assert set(merged.worker_batches) == {
            (part, worker) for part in range(2) for worker in range(2)
        }
        for index, part in enumerate(parts):
            for worker, batches in part.worker_batches.items():
                assert merged.worker_batches[(index, worker)] == batches
        # Derived views still work over tuple keys.
        assert merged.worker_occupancy()
        assert "workers" in merged.as_dict()
        assert merged.format()

    def test_merge_of_empty_and_single(self):
        empty = ServingMetrics.merge([])
        assert empty.requests == 0 and empty.requests_per_second == 0.0
        part = _loaded_metrics(10)
        merged = ServingMetrics.merge([part])
        assert merged.requests == part.requests
        assert merged.latencies == part.latencies

    def test_slo_attainment_matches_manual(self):
        parts = [_loaded_metrics(s) for s in (11, 12)]
        merged = ServingMetrics.merge(parts)
        met = sum(p.slo_met for p in parts)
        total = sum(p.slo_total for p in parts)
        assert merged.slo_attainment == pytest.approx(met / total)


class TestPayloadRoundTrip:
    """Shard subprocesses ship raw metrics as JSON; nothing may be lost."""

    def test_round_trip_is_lossless(self):
        import json

        original = _loaded_metrics(21)
        payload = json.loads(json.dumps(original.to_payload()))
        rebuilt = ServingMetrics.from_payload(payload)
        assert rebuilt == original

    def test_merge_after_round_trip_equals_direct_merge(self):
        import json

        parts = [_loaded_metrics(s) for s in (22, 23, 24)]
        shipped = [
            ServingMetrics.from_payload(json.loads(json.dumps(p.to_payload())))
            for p in parts
        ]
        assert ServingMetrics.merge(shipped) == ServingMetrics.merge(parts)
