"""Property-based tests of the deadline-aware batching policy.

Two layers:

* **Hypothesis invariants** over the :class:`AdaptiveBatcher` and the
  virtual-time simulator — FIFO inside windows, window/row bounds, every
  request completed exactly once, per-session delivery monotone, metric
  sanity — which must hold for *every* trace;
* **Seeded differential properties** over the scheduler simulator — the
  deadline-aware policy attains at least the fixed-window policy's SLO
  rate on jittered mixed-SLO traces at equal work, and never starves a
  request — evaluated on a fixed seed matrix (extended by the CI
  ``serve-stress`` job via ``REPRO_SERVE_SEED`` / ``REPRO_SERVE_WORKERS``).

Everything here is virtual-time and deterministic: no sleeps, no wall
clock, no flakiness.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serve import (
    AdaptiveBatcher,
    RequestQueue,
    TimedRequest,
    VirtualClock,
    random_trace,
    simulate_schedule,
)

_ENV_SEED = os.environ.get("REPRO_SERVE_SEED")
_ENV_WORKERS = int(os.environ.get("REPRO_SERVE_WORKERS", "0"))
TRACE_SEEDS = [0, 1, 2] + ([2000 + int(_ENV_SEED)] if _ENV_SEED else [])
WORKER_COUNTS = sorted({1, 4} | ({_ENV_WORKERS} if _ENV_WORKERS else set()))

BATCH_SECONDS = 2e-3


def _image(rows=1):
    return np.zeros((rows, 1, 2, 2), dtype=np.float32)


# ----------------------------------------------------------------------
# AdaptiveBatcher invariants
# ----------------------------------------------------------------------
class TestBatcherPolicy:
    def test_close_time_none_only_when_empty(self):
        clock = VirtualClock()
        queue = RequestQueue(clock=clock)
        batcher = AdaptiveBatcher(queue, 4, batch_timeout=0.01)
        assert batcher.close_time() is None
        queue.submit(_image())
        assert batcher.close_time() == pytest.approx(0.01)

    def test_full_window_closes_immediately(self):
        clock = VirtualClock()
        queue = RequestQueue(clock=clock)
        batcher = AdaptiveBatcher(queue, 2, batch_timeout=10.0)
        queue.submit(_image())
        queue.submit(_image())
        assert batcher.close_time() <= clock.now
        assert len(batcher.next_batch(clock.now)) == 2

    def test_deadline_pulls_close_earlier(self):
        clock = VirtualClock()
        queue = RequestQueue(clock=clock)
        batcher = AdaptiveBatcher(
            queue, 8, batch_timeout=1.0, service_estimate=BATCH_SECONDS
        )
        queue.submit(_image())
        queue.submit(_image(), slo_seconds=0.010)
        assert batcher.close_time() == pytest.approx(0.010 - BATCH_SECONDS)
        # The deadline-unaware baseline ignores the SLO entirely.
        fixed = AdaptiveBatcher(
            queue, 8, batch_timeout=1.0, service_estimate=BATCH_SECONDS,
            deadline_aware=False,
        )
        assert fixed.close_time() == pytest.approx(1.0)

    def test_rows_full_window_closes_immediately(self):
        """When the row cap is reached, waiting longer cannot grow the
        batch — the window must close now, not after the timeout."""
        clock = VirtualClock()
        queue = RequestQueue(clock=clock)
        batcher = AdaptiveBatcher(queue, 8, max_rows=4, batch_timeout=10.0)
        queue.submit(_image(2))
        assert batcher.close_time() == pytest.approx(10.0)
        queue.submit(_image(2))
        assert batcher.close_time() <= clock.now
        assert len(batcher.next_batch(clock.now)) == 2

    def test_window_stays_open_before_close_time(self):
        clock = VirtualClock()
        queue = RequestQueue(clock=clock)
        batcher = AdaptiveBatcher(queue, 4, batch_timeout=0.05)
        queue.submit(_image())
        assert batcher.next_batch(clock.now) == []
        assert len(batcher.next_batch(clock.now, flush=True)) == 1

    def test_observe_service_ewma(self):
        queue = RequestQueue()
        batcher = AdaptiveBatcher(queue, 4)
        batcher.observe_service(0.010)
        assert batcher.service_estimate == pytest.approx(0.010)
        batcher.observe_service(0.020)
        assert 0.010 < batcher.service_estimate < 0.020
        batcher.observe_service(-1.0)  # ignored, never poisons the estimate
        assert batcher.service_estimate > 0

    def test_invalid_arguments(self):
        queue = RequestQueue()
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(queue, 4, batch_timeout=-1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(queue, 4, service_estimate=-1.0)

    @given(
        sizes=st.lists(st.integers(1, 3), min_size=1, max_size=12),
        window=st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_flush_preserves_fifo_and_window_bound(self, sizes, window):
        clock = VirtualClock()
        queue = RequestQueue(clock=clock)
        batcher = AdaptiveBatcher(queue, window, batch_timeout=1.0)
        for rows in sizes:
            queue.submit(_image(rows))
        seen = []
        while queue:
            batch = batcher.next_batch(clock.now, flush=True)
            assert 1 <= len(batch) <= window
            seen.extend(request.request_id for request in batch)
        assert seen == sorted(seen) == list(range(len(sizes)))


# ----------------------------------------------------------------------
# Virtual-time schedule invariants (hypothesis-generated traces)
# ----------------------------------------------------------------------
@st.composite
def traces(draw):
    n = draw(st.integers(1, 30))
    gaps = draw(
        st.lists(
            st.floats(0.0, 0.01, allow_nan=False), min_size=n, max_size=n
        )
    )
    requests, arrival = [], 0.0
    for index, gap in enumerate(gaps):
        arrival += gap
        requests.append(
            TimedRequest(
                arrival=arrival,
                rows=draw(st.integers(1, 3)),
                slo_seconds=draw(
                    st.one_of(st.none(), st.floats(1e-4, 0.05, allow_nan=False))
                ),
                session_id=draw(st.sampled_from(["a", "b", None])),
            )
        )
    return requests


class TestScheduleInvariants:
    @given(trace=traces(), workers=st.integers(1, 4), window=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_every_request_completes_exactly_once(self, trace, workers, window):
        result = simulate_schedule(
            trace,
            batch_window=window,
            workers=workers,
            service_model=lambda batch: BATCH_SECONDS,
            service_estimate=BATCH_SECONDS,
        )
        completed = [request_id for request_id, _ in result.completions]
        assert sorted(completed) == list(range(len(trace)))
        assert result.metrics.requests == len(trace)
        assert all(o <= window for o in result.metrics.occupancies)
        assert all(age >= -1e-12 for age in result.metrics.queue_ages)
        assert all(latency > 0 for latency in result.metrics.latencies)
        attainment = result.metrics.slo_attainment
        assert attainment is None or 0.0 <= attainment <= 1.0

    @given(trace=traces(), workers=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_per_session_delivery_is_monotone(self, trace, workers):
        result = simulate_schedule(
            trace,
            batch_window=4,
            workers=workers,
            service_model=lambda batch: BATCH_SECONDS,
            service_estimate=BATCH_SECONDS,
        )
        delivery = dict(result.completions)
        by_session: dict[object, list[int]] = {}
        for request_id, timed in enumerate(trace):
            if timed.session_id is not None:
                by_session.setdefault(timed.session_id, []).append(request_id)
        for ids in by_session.values():
            times = [delivery[i] for i in sorted(ids)]
            assert times == sorted(times)

    @given(trace=traces())
    @settings(max_examples=40, deadline=None)
    def test_worker_accounting_conserves_service(self, trace):
        result = simulate_schedule(
            trace,
            batch_window=4,
            workers=3,
            service_model=lambda batch: BATCH_SECONDS,
            service_estimate=BATCH_SECONDS,
        )
        busy = sum(result.metrics.worker_busy_seconds.values())
        assert busy == pytest.approx(
            BATCH_SECONDS * result.metrics.micro_batches
        )
        assert sum(result.metrics.worker_batches.values()) == (
            result.metrics.micro_batches
        )
        # No worker can be busier than the schedule is long.
        assert busy <= 3 * result.makespan + 1e-9


# ----------------------------------------------------------------------
# Differential properties: deadline-aware vs fixed-window (seed matrix)
# ----------------------------------------------------------------------
def _policy_pair(seed, workers):
    trace = random_trace(
        np.random.default_rng(seed),
        300,
        mean_gap=BATCH_SECONDS / 2,
        slo_choices=(None, 3 * BATCH_SECONDS, 10 * BATCH_SECONDS),
        n_sessions=6,
    )
    kwargs = dict(
        batch_window=8,
        workers=workers,
        batch_timeout=4 * BATCH_SECONDS,
        service_model=lambda batch: BATCH_SECONDS,
        service_estimate=BATCH_SECONDS,
    )
    adaptive = simulate_schedule(trace, deadline_aware=True, **kwargs)
    fixed = simulate_schedule(trace, deadline_aware=False, **kwargs)
    return adaptive, fixed


class TestDeadlineAwareBeatsFixedWindow:
    @pytest.mark.parametrize("seed", TRACE_SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_no_deadline_regression_at_equal_throughput(self, seed, workers):
        adaptive, fixed = _policy_pair(seed, workers)
        assert adaptive.metrics.slo_total == fixed.metrics.slo_total > 0
        assert adaptive.metrics.slo_attainment >= fixed.metrics.slo_attainment
        # Equal work, comparable schedule length: the attainment win is
        # not bought with a throughput collapse.
        assert adaptive.throughput >= 0.9 * fixed.throughput

    @pytest.mark.parametrize("seed", TRACE_SEEDS)
    def test_deterministic_replay(self, seed):
        first, _ = _policy_pair(seed, 1)
        second, _ = _policy_pair(seed, 1)
        assert first.completions == second.completions
        assert first.metrics.slo_attainment == second.metrics.slo_attainment

    def test_tight_slos_drive_the_win(self):
        """The attainment gap comes from tight-SLO requests the fixed
        window keeps waiting; with uniformly loose SLOs the two policies
        coincide."""
        rng = np.random.default_rng(0)
        loose = random_trace(
            rng, 200, mean_gap=BATCH_SECONDS / 2,
            slo_choices=(50 * BATCH_SECONDS,),
        )
        kwargs = dict(
            batch_window=8,
            batch_timeout=4 * BATCH_SECONDS,
            service_model=lambda batch: BATCH_SECONDS,
            service_estimate=BATCH_SECONDS,
        )
        adaptive = simulate_schedule(loose, deadline_aware=True, **kwargs)
        fixed = simulate_schedule(loose, deadline_aware=False, **kwargs)
        assert adaptive.metrics.slo_attainment == 1.0
        assert fixed.metrics.slo_attainment == 1.0
