"""Multi-worker serving engine: parity, ordering, and determinism.

The acceptance property of the deadline-aware multi-worker engine: on
randomized request streams (arrival jitter is irrelevant to content —
batch composition is decided by the FIFO dispatcher — but sizes, SLOs,
sessions, and worker counts all vary), the engine produces **bit-identical
logits** to the sequential reference path, releases responses of one
session in submission order, and draws noise deterministically no matter
how worker threads race.

The CI ``serve-stress`` job re-runs this module across a seed × worker
matrix via ``REPRO_SERVE_SEED`` / ``REPRO_SERVE_WORKERS``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import NoiseCollection, ShredderPipeline, SplitInferenceModel
from repro.edge import Channel, InferenceSession, _fastexec
from repro.edge.protocol import decode_activation_batch
from repro.errors import ConfigurationError
from repro.serve import ServingEngine

_ENV_SEED = os.environ.get("REPRO_SERVE_SEED")
_ENV_WORKERS = int(os.environ.get("REPRO_SERVE_WORKERS", "0"))
STREAM_SEEDS = [11, 23, 57] + ([1000 + int(_ENV_SEED)] if _ENV_SEED else [])
WORKER_COUNTS = sorted({1, 4} | ({_ENV_WORKERS} if _ENV_WORKERS else set()))
# The parity matrix runs with the executor kernels forced on AND forced
# off: scheduling correctness must not depend on which backend computes.
KERNEL_BACKENDS = ["numpy"] + (["native"] if _fastexec.available() else [])


@pytest.fixture(scope="module")
def bundle():
    from repro.models import get_pretrained

    return get_pretrained("lenet", Config(scale=TINY))


@pytest.fixture(scope="module")
def collection(bundle):
    split = SplitInferenceModel(bundle.model)
    rng = np.random.default_rng(5)
    collection = NoiseCollection(split.activation_shape)
    for _ in range(4):
        collection.add(
            rng.laplace(0, 0.05, size=split.activation_shape).astype(np.float32),
            accuracy=0.8,
            in_vivo_privacy=0.1,
        )
    return collection


def _random_stream(bundle, rng, n_requests):
    """Mixed-size request batches with mixed SLOs and sessions."""
    images = bundle.test_set.images
    stream, slos, sessions = [], [], []
    cursor = 0
    for _ in range(n_requests):
        size = int(rng.integers(1, 4))
        stream.append(images[cursor % len(images) : cursor % len(images) + 1].repeat(size, axis=0))
        cursor += size
        slos.append([None, 0.050, 0.200][int(rng.integers(0, 3))])
        sessions.append(f"user-{int(rng.integers(0, 3))}")
    return stream, slos, sessions


def _engine(bundle, collection, *, seed=11, workers=1, window=4, **kwargs):
    cut = bundle.model.last_conv_cut()
    mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
    return ServingEngine(
        bundle.model, cut, mean, std, noise=collection,
        rng=np.random.default_rng(seed), workers=workers,
        batch_window=window, **kwargs,
    )


class TestBitwiseParity:
    @pytest.mark.parametrize("stream_seed", STREAM_SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("kernel_backend", KERNEL_BACKENDS)
    def test_randomized_stream_matches_sequential(
        self, bundle, collection, stream_seed, workers, kernel_backend
    ):
        stream, slos, sessions = _random_stream(
            bundle, np.random.default_rng(stream_seed), 11
        )
        cut = bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
        sequential = InferenceSession(
            bundle.model, cut, mean, std, noise=collection,
            rng=np.random.default_rng(7), kernel_backend=kernel_backend,
        )
        expected = [sequential.infer(images) for images in stream]
        with _engine(
            bundle, collection, seed=7, workers=workers,
            kernel_backend=kernel_backend,
        ) as engine:
            actual = engine.infer_stream(
                stream, slo_seconds=slos, session_ids=sessions
            )
        assert len(actual) == len(expected)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_deterministic_across_runs(self, bundle, collection, workers):
        stream, slos, sessions = _random_stream(
            bundle, np.random.default_rng(3), 9
        )
        outputs = []
        for _ in range(2):
            with _engine(bundle, collection, seed=13, workers=workers) as engine:
                outputs.append(
                    engine.infer_stream(
                        stream, slo_seconds=slos, session_ids=sessions
                    )
                )
        for a, b in zip(*outputs):
            np.testing.assert_array_equal(a, b)

    def test_noise_draws_match_total_rows(self, bundle, collection):
        """The dispatcher consumes exactly one draw per sample — the
        explicit generator-handoff accounting."""
        stream, slos, sessions = _random_stream(
            bundle, np.random.default_rng(4), 8
        )
        with _engine(bundle, collection, workers=4) as engine:
            engine.infer_stream(stream, slo_seconds=slos, session_ids=sessions)
            assert engine.noise_stream.draws == sum(len(r) for r in stream)

    def test_deadline_unaware_engine_same_bits(self, bundle, collection):
        """Scheduling policy shifts *when* batches close, never *what*
        they compute."""
        stream, _, _ = _random_stream(bundle, np.random.default_rng(6), 7)
        with _engine(bundle, collection, seed=21, deadline_aware=False) as a:
            fixed = a.infer_stream(stream)
        with _engine(bundle, collection, seed=21, deadline_aware=True) as b:
            adaptive = b.infer_stream(stream)
        for x, y in zip(fixed, adaptive):
            np.testing.assert_array_equal(x, y)


class _StallRequestZero(ServingEngine):
    """Deterministically delays the micro-batch carrying request id 0, so
    later batches always complete first — forcing the ordering gate."""

    STALL_SECONDS = 0.05

    def _service_batch(self, uplink):
        if 0 in decode_activation_batch(uplink).request_ids:
            time.sleep(self.STALL_SECONDS)
        return super()._service_batch(uplink)


def _poll(engine, *, until, timeout=5.0):
    delivered = []
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        delivered.extend(engine.pump(flush=True))
        if until(delivered):
            return delivered
        time.sleep(0.002)
    raise AssertionError(f"poll timed out with delivered={delivered}")


class TestSessionOrdering:
    def test_out_of_order_completion_gated_per_session(self, bundle, collection):
        """Requests of one session interleaved across two batches: the
        stalled first batch must gate the finished second one."""
        images = bundle.test_set.images
        cut = bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
        with _StallRequestZero(
            bundle.model, cut, mean, std, noise=collection,
            rng=np.random.default_rng(1), workers=2, batch_window=2,
            batch_timeout=0.0,
        ) as engine:
            for i, session in enumerate(["A", "B", "A", "B"]):
                engine.submit(images[i : i + 1], session_id=session)
            delivered = _poll(engine, until=lambda ids: len(ids) == 4)
        # Per-session delivery respects submission order...
        assert [i for i in delivered if i in (0, 2)] == [0, 2]
        assert [i for i in delivered if i in (1, 3)] == [1, 3]
        # ...and nothing from the second batch leaked ahead of the stalled
        # first batch, because every request was gated by a session peer.
        assert delivered.index(2) > delivered.index(0)
        assert delivered.index(3) > delivered.index(1)

    def test_sessionless_requests_deliver_independently(self, bundle, collection):
        """Without session ids the second batch's results become
        deliverable while the first batch is still in flight."""
        images = bundle.test_set.images
        cut = bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
        with _StallRequestZero(
            bundle.model, cut, mean, std, noise=collection,
            rng=np.random.default_rng(1), workers=2, batch_window=2,
            batch_timeout=0.0,
        ) as engine:
            for i in range(4):
                engine.submit(images[i : i + 1])
            early = _poll(engine, until=lambda ids: {2, 3} <= set(ids))
            # The stalled batch (ids 0, 1) may not have landed yet; the
            # poll deadline says ids 2 and 3 did not wait for it.
            assert {2, 3} <= set(early)
            late = _poll(engine, until=lambda ids: {0, 1} <= set(ids))
            assert set(early + late) == {0, 1, 2, 3}

    def test_result_before_delivery_raises(self, bundle, collection):
        images = bundle.test_set.images
        with _engine(bundle, collection) as engine:
            request = engine.submit(images[:1])
            with pytest.raises(ConfigurationError):
                engine.result(request)
            engine.drain()
            assert engine.result(request).shape == (1, 10)


class TestEngineMechanics:
    def test_metrics_and_report(self, bundle, collection):
        stream, slos, sessions = _random_stream(
            bundle, np.random.default_rng(8), 10
        )
        with _engine(bundle, collection, workers=2) as engine:
            engine.infer_stream(stream, slo_seconds=slos, session_ids=sessions)
            metrics = engine.metrics
            assert metrics.requests == 10
            assert metrics.samples == sum(len(r) for r in stream)
            assert metrics.micro_batches >= 3
            assert len(metrics.latencies) == 10
            assert len(metrics.queue_ages) == 10
            assert all(age >= 0 for age in metrics.queue_ages)
            assert metrics.slo_total == sum(1 for s in slos if s is not None)
            assert metrics.uplink_bytes > 0 and metrics.downlink_bytes > 0
            assert metrics.wall_seconds > 0
            assert sum(metrics.worker_batches.values()) == metrics.micro_batches
            report = engine.report()
            assert report.requests == 10
            assert report.uplink_bytes == metrics.uplink_bytes
            assert report.simulated_seconds > 0

    def test_all_workers_used_under_overlap(self, bundle, collection):
        """With slept wire time and a queue of batches, every worker
        context serves traffic."""
        images = bundle.test_set.images
        stream = [images[i : i + 1] for i in range(16)]
        with _engine(
            bundle, collection, workers=4, window=2,
            channel=Channel(latency_ms=2.0, realtime=True), batch_timeout=0.0,
        ) as engine:
            engine.infer_stream(stream)
            assert set(engine.metrics.worker_batches) == {0, 1, 2, 3}

    def test_worker_error_propagates_without_wedging(self, bundle, collection):
        """A worker failure surfaces once; the failed batch's requests are
        lost but the engine — and their session — keeps serving."""

        class FailOnce(ServingEngine):
            failures = 0

            def _service_batch(self, uplink):
                if type(self).failures == 0:
                    type(self).failures += 1
                    raise RuntimeError("worker down")
                return super()._service_batch(uplink)

        FailOnce.failures = 0
        images = bundle.test_set.images
        cut = bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
        with FailOnce(
            bundle.model, cut, mean, std, noise=collection,
            rng=np.random.default_rng(1), batch_timeout=0.0,
        ) as engine:
            lost = engine.submit(images[:1], session_id="S")
            with pytest.raises(RuntimeError, match="worker down"):
                engine.drain()
            assert engine.in_flight == 0
            # The same session is not gated behind the lost request.
            retry = engine.submit(images[:1], session_id="S")
            delivered = engine.drain()
            assert delivered == [retry]
            assert engine.result(retry).shape == (1, 10)
            with pytest.raises(ConfigurationError):
                engine.result(lost)

    def test_closed_engine_rejects_work(self, bundle, collection):
        engine = _engine(bundle, collection)
        engine.close()
        engine.close()  # idempotent
        engine.submit(bundle.test_set.images[:1])
        with pytest.raises(ConfigurationError, match="closed"):
            engine.drain()


class TestPipelineDeploy:
    def test_deploy_returns_engine_and_matches_sequential(self, bundle):
        pipeline = ShredderPipeline(bundle, config=Config(scale=TINY))
        collection = pipeline.collect(2, iterations=10)
        engine = pipeline.deploy(collection, workers=2, batch_window=4)
        sequential = pipeline.deploy(collection, batched=False)
        assert isinstance(engine, ServingEngine)
        images = bundle.test_set.images
        stream = [images[i : i + 1] for i in range(6)]
        expected = [sequential.infer(x) for x in stream]
        with engine:
            actual = engine.infer_stream(stream)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_engine_knobs_require_batched(self, bundle):
        pipeline = ShredderPipeline(bundle, config=Config(scale=TINY))
        with pytest.raises(ConfigurationError):
            pipeline.deploy(None, batched=False, workers=4)
