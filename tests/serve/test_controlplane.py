"""Multi-deployment serving control plane: routing, parity, crash
recovery, and the batch-composition policy.

The acceptance properties, per deployment, on interleaved multi-tenant
streams across worker counts:

* **bit parity** — every deployment's logits are bit-identical to that
  deployment's own sequential reference path
  (:class:`repro.edge.InferenceSession` with the same seed), no matter
  how tenants interleave or how many shared workers race;
* **ordering** — within one (deployment, session), responses deliver in
  submission order;
* **exactly-once under crash** — a worker killed mid-batch (deterministic
  fault injection) loses capacity, not requests: the in-flight batch is
  requeued to the survivors, completes exactly once, and parity/ordering
  still hold;
* **noise-draw accounting** — each deployment's single-owner stream is
  consumed exactly once per sample of that deployment.

The CI ``serve-stress`` job re-runs this module across the same
seed × worker matrix as the engine suite (``REPRO_SERVE_SEED`` /
``REPRO_SERVE_WORKERS``), plus a fault leg (``REPRO_SERVE_FAULT=1``:
every parity run also crashes one worker), a multi-deployment leg
(``REPRO_SERVE_DEPLOYMENTS=3``), and — since the elastic PR — a chaos
leg (``REPRO_SERVE_CHAOS=1``: every parity run crashes one worker on an
``auto_heal`` plane and asserts the pool healed back to target, parity
intact).  :class:`TestElasticLifecycle` covers the elastic surface
deterministically: heal-then-parity, auto-heal under total loss,
hot-swap and unregister under live traffic, manual scaling, the
autoscaler, and context release on close.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import NoiseCollection, ShredderPipeline, SplitInferenceModel
from repro.edge import Channel, InferenceSession, plan_deployment_windows
from repro.errors import (
    ConfigurationError,
    ServingFaultError,
)
from repro.serve import ControlPlane, DeploymentSpec, RequestHandle

_ENV_SEED = os.environ.get("REPRO_SERVE_SEED")
_ENV_WORKERS = int(os.environ.get("REPRO_SERVE_WORKERS", "0"))
STREAM_SEEDS = [31, 77] + ([2000 + int(_ENV_SEED)] if _ENV_SEED else [])
WORKER_COUNTS = sorted({1, 2, 4} | ({_ENV_WORKERS} if _ENV_WORKERS else set()))
#: CI legs: REPRO_SERVE_DEPLOYMENTS=3 widens the tenant matrix;
#: REPRO_SERVE_FAULT=1 injects a worker crash into every parity run;
#: REPRO_SERVE_CHAOS=1 additionally runs the parity matrix on an
#: auto-healing plane and asserts the crashed capacity grew back.
#: REPRO_SERVE_SHUFFLE=1 runs the whole parity matrix with the
#: cross-session row shuffler on (the shuffling contract: permute →
#: compute → unpermute must be bit-exact, crashes included).
#: REPRO_SERVE_WEIGHT_BITS=8 runs the whole parity matrix with int8
#: weight quantisation on — parity is against a sequential reference in
#: the *same* weight regime (quantised vs quantised), never across.
N_DEPLOYMENTS = int(os.environ.get("REPRO_SERVE_DEPLOYMENTS", "2"))
FAULT_LEG = os.environ.get("REPRO_SERVE_FAULT") == "1"
CHAOS_LEG = os.environ.get("REPRO_SERVE_CHAOS") == "1"
SHUFFLE_LEG = os.environ.get("REPRO_SERVE_SHUFFLE") == "1"
WEIGHT_BITS = int(os.environ.get("REPRO_SERVE_WEIGHT_BITS", "0")) or None


@pytest.fixture(scope="module")
def bundle():
    from repro.models import get_pretrained

    return get_pretrained("lenet", Config(scale=TINY))


@pytest.fixture(scope="module")
def collections(bundle):
    """One distinct noise collection per deployment (the third tenant is
    the privacy-free baseline: ``None``)."""
    split = SplitInferenceModel(bundle.model)
    built = []
    for seed in (5, 17):
        rng = np.random.default_rng(seed)
        collection = NoiseCollection(split.activation_shape)
        for _ in range(3):
            collection.add(
                rng.laplace(0, 0.05, size=split.activation_shape).astype(
                    np.float32
                ),
                accuracy=0.8,
                in_vivo_privacy=0.1,
            )
        built.append(collection)
    return built + [None]


def _noise_for(collections, index):
    return collections[index % len(collections)]


def _make_plane(
    bundle,
    collections,
    *,
    n_deployments=None,
    workers=1,
    window=4,
    isolate_sessions=False,
    fault_injector=None,
    channel=None,
    shuffle=None,
    **plane_kwargs,
):
    if shuffle is None:
        shuffle = SHUFFLE_LEG
    plane = ControlPlane(
        workers=workers, channel=channel, fault_injector=fault_injector,
        **plane_kwargs,
    )
    cut = bundle.model.last_conv_cut()
    for index in range(n_deployments or N_DEPLOYMENTS):
        plane.register(
            f"dep{index}",
            bundle.model,
            cut,
            noise=_noise_for(collections, index),
            rng=np.random.default_rng(100 + index),
            batch_window=window,
            batch_timeout=0.0,
            isolate_sessions=isolate_sessions,
            shuffle=shuffle,
            weight_bits=WEIGHT_BITS,
        )
    return plane


def _interleaved_plan(bundle, rng, n_requests, n_deployments):
    """A randomized multi-tenant request plan: (deployment, images, slo,
    session) in one global arrival order."""
    images = bundle.test_set.images
    plan = []
    cursor = 0
    for _ in range(n_requests):
        deployment = f"dep{int(rng.integers(0, n_deployments))}"
        size = int(rng.integers(1, 4))
        start = cursor % (len(images) - 1)
        plan.append(
            (
                deployment,
                images[start : start + 1].repeat(size, axis=0),
                [None, 0.050, 0.200][int(rng.integers(0, 3))],
                f"user-{int(rng.integers(0, 3))}",
            )
        )
        cursor += size
    return plan


def _sequential_reference(bundle, collections, plan, n_deployments):
    """Each deployment's own sequential reference on its sub-stream."""
    cut = bundle.model.last_conv_cut()
    mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
    sessions = {
        f"dep{index}": InferenceSession(
            bundle.model, cut, mean, std,
            noise=_noise_for(collections, index),
            rng=np.random.default_rng(100 + index),
            weight_bits=WEIGHT_BITS,
        )
        for index in range(n_deployments)
    }
    return [sessions[deployment].infer(images) for deployment, images, _, _ in plan]


def _one_shot_fault(target_deployment="dep0", target_request=0):
    """Kill the (first) worker that picks up the batch holding one
    specific request — the ISSUE's deterministic crash scenario."""
    crashed: list[int] = []

    def injector(worker_id, task):
        if (
            not crashed
            and task.deployment == target_deployment
            and target_request in task.request_ids
        ):
            crashed.append(worker_id)
            return True
        return False

    injector.crashed = crashed
    return injector


class TestRoutingAndRegistry:
    def test_duplicate_registration_rejected(self, bundle, collections):
        with _make_plane(bundle, collections, n_deployments=1) as plane:
            with pytest.raises(ConfigurationError, match="already registered"):
                plane.register(
                    "dep0", bundle.model, bundle.model.last_conv_cut()
                )

    def test_unknown_deployment_rejected(self, bundle, collections):
        with _make_plane(bundle, collections, n_deployments=1) as plane:
            with pytest.raises(ConfigurationError, match="unknown deployment"):
                plane.submit(bundle.test_set.images[:1], deployment="nope")

    def test_default_routing_needs_single_deployment(self, bundle, collections):
        images = bundle.test_set.images[:1]
        with _make_plane(bundle, collections, n_deployments=1) as plane:
            handle = plane.submit(images)  # sole deployment: routes there
            assert handle == RequestHandle("dep0", 0)
        with _make_plane(bundle, collections, n_deployments=2) as plane:
            with pytest.raises(ConfigurationError, match="must\\s+name"):
                plane.submit(images)

    def test_per_deployment_request_ids(self, bundle, collections):
        images = bundle.test_set.images[:1]
        with _make_plane(bundle, collections, n_deployments=2) as plane:
            assert plane.submit(images, deployment="dep0").request_id == 0
            assert plane.submit(images, deployment="dep1").request_id == 0
            assert plane.submit(images, deployment="dep0").request_id == 1
            plane.drain()

    def test_failed_registration_rolls_back(self, bundle, collections):
        """A mid-warm failure must not leave a half-equipped, routable
        deployment behind (workers would KeyError on its batches)."""

        class ExplodingChannel(Channel):
            def clone(self, rng=None):
                raise RuntimeError("no link for you")

        with _make_plane(bundle, collections, n_deployments=1) as plane:
            cut = bundle.model.last_conv_cut()
            with pytest.raises(RuntimeError, match="no link"):
                plane.register(
                    "broken", bundle.model, cut, channel=ExplodingChannel()
                )
            assert "broken" not in plane.registry
            # The pool is intact: the same name registers cleanly and the
            # original deployment still serves.
            plane.register("broken", bundle.model, cut)
            a = plane.submit(bundle.test_set.images[:1], deployment="dep0")
            b = plane.submit(bundle.test_set.images[:1], deployment="broken")
            plane.drain()
            assert plane.result(a).shape == (1, 10)
            assert plane.result(b).shape == (1, 10)

    def test_registration_during_flight_rejected(self, bundle, collections):
        channel = Channel(latency_ms=30.0, realtime=True)
        with _make_plane(
            bundle, collections, n_deployments=1, channel=channel
        ) as plane:
            plane.submit(bundle.test_set.images[:1], deployment="dep0")
            plane.pump(flush=True)  # dispatches; the wire sleep keeps it in flight
            assert plane.in_flight == 1
            with pytest.raises(ConfigurationError, match="in\\s+flight"):
                plane.register(
                    "late", bundle.model, bundle.model.last_conv_cut()
                )
            plane.drain()


class TestMultiDeploymentParity:
    @pytest.mark.parametrize("stream_seed", STREAM_SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_interleaved_streams_match_sequential(
        self, bundle, collections, stream_seed, workers
    ):
        n_deployments = N_DEPLOYMENTS
        plan = _interleaved_plan(
            bundle, np.random.default_rng(stream_seed), 14, n_deployments
        )
        expected = _sequential_reference(bundle, collections, plan, n_deployments)
        # The optional fault leg crashes one worker mid-run; recovery must
        # keep the run indistinguishable (needs a survivor to requeue to).
        # The chaos leg does the same on an auto-healing plane, so the
        # crashed capacity must also grow back by the end of the run.
        injector = (
            _one_shot_fault()
            if (FAULT_LEG or CHAOS_LEG) and workers > 1
            else None
        )
        with _make_plane(
            bundle,
            collections,
            n_deployments=n_deployments,
            workers=workers,
            fault_injector=injector,
            auto_heal=CHAOS_LEG,
        ) as plane:
            handles = [
                plane.submit(
                    images,
                    deployment=deployment,
                    slo_seconds=slo,
                    session_id=session,
                )
                for deployment, images, slo, session in plan
            ]
            delivered = plane.drain()
            assert sorted(delivered) == sorted(handles)  # exactly once
            if CHAOS_LEG and injector is not None and injector.crashed:
                assert plane.alive_workers == workers
                assert plane.pool_metrics.respawned_workers >= 1
            actual = [plane.result(handle) for handle in handles]
        assert len(actual) == len(expected)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_deterministic_across_runs(self, bundle, collections, workers):
        plan = _interleaved_plan(
            bundle, np.random.default_rng(9), 10, N_DEPLOYMENTS
        )
        outputs = []
        for _ in range(2):
            with _make_plane(
                bundle, collections, workers=workers
            ) as plane:
                handles = [
                    plane.submit(
                        images, deployment=dep, slo_seconds=slo, session_id=sid
                    )
                    for dep, images, slo, sid in plan
                ]
                plane.drain()
                outputs.append([plane.result(h) for h in handles])
        for a, b in zip(*outputs):
            np.testing.assert_array_equal(a, b)

    def test_noise_draws_accounted_per_deployment(self, bundle, collections):
        plan = _interleaved_plan(
            bundle, np.random.default_rng(12), 12, N_DEPLOYMENTS
        )
        with _make_plane(bundle, collections, workers=4) as plane:
            for dep, images, slo, sid in plan:
                plane.submit(
                    images, deployment=dep, slo_seconds=slo, session_id=sid
                )
            plane.drain()
            for deployment in plane.registry:
                expected_rows = sum(
                    len(images) for dep, images, _, _ in plan
                    if dep == deployment.name
                )
                if deployment.device.noise is None:
                    assert deployment.noise_stream.draws == 0
                else:
                    assert deployment.noise_stream.draws == expected_rows

    def test_per_session_ordering_within_each_deployment(
        self, bundle, collections
    ):
        plan = _interleaved_plan(
            bundle, np.random.default_rng(21), 16, N_DEPLOYMENTS
        )
        with _make_plane(bundle, collections, workers=4, window=2) as plane:
            submitted: dict[tuple, list] = {}
            for dep, images, slo, sid in plan:
                handle = plane.submit(
                    images, deployment=dep, slo_seconds=slo, session_id=sid
                )
                submitted.setdefault((dep, sid), []).append(handle)
            delivered = plane.drain()
            for handles in submitted.values():
                order = [delivered.index(handle) for handle in handles]
                assert order == sorted(order)
            for handle in [h for hs in submitted.values() for h in hs]:
                plane.result(handle)


class TestCrashRecovery:
    def test_crash_requeues_exactly_once_with_parity(self, bundle, collections):
        """Kill the worker holding request 0's batch: the batch lands on
        the survivor, completes exactly once, in order, bit-identical."""
        n_deployments = 2
        plan = _interleaved_plan(
            bundle, np.random.default_rng(3), 12, n_deployments
        )
        # Guarantee request 0 of dep0 exists regardless of the random plan.
        plan[0] = ("dep0", bundle.test_set.images[:1], None, "user-0")
        expected = _sequential_reference(bundle, collections, plan, n_deployments)
        injector = _one_shot_fault("dep0", 0)
        with _make_plane(
            bundle,
            collections,
            n_deployments=n_deployments,
            workers=2,
            fault_injector=injector,
        ) as plane:
            handles = [
                plane.submit(images, deployment=dep, slo_seconds=slo, session_id=sid)
                for dep, images, slo, sid in plan
            ]
            delivered = plane.drain()
            # The crash actually happened, capacity shrank, and the batch
            # was requeued exactly once.
            assert len(injector.crashed) == 1
            assert plane.alive_workers == 1
            assert (
                plane.metrics_by_deployment()["dep0"].requeued_batches == 1
            )
            # Exactly-once delivery, per-session order intact.
            assert sorted(delivered) == sorted(handles)
            per_session: dict[tuple, list] = {}
            for (dep, _, _, sid), handle in zip(plan, handles):
                per_session.setdefault((dep, sid), []).append(handle)
            for session_handles in per_session.values():
                order = [delivered.index(h) for h in session_handles]
                assert order == sorted(order)
            actual = [plane.result(handle) for handle in handles]
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_total_worker_loss_surfaces_fault(self, bundle, collections):
        with _make_plane(
            bundle,
            collections,
            n_deployments=1,
            workers=1,
            fault_injector=lambda worker_id, task: True,
        ) as plane:
            plane.submit(bundle.test_set.images[:1], deployment="dep0")
            with pytest.raises(ServingFaultError, match="every cloud worker"):
                plane.drain()
            assert plane.alive_workers == 0
            assert plane.in_flight == 0

    def test_serving_continues_after_recovery(self, bundle, collections):
        """Post-crash, the shrunken pool keeps serving new traffic."""
        injector = _one_shot_fault("dep0", 0)
        images = bundle.test_set.images
        with _make_plane(
            bundle, collections, n_deployments=2, workers=3,
            fault_injector=injector,
        ) as plane:
            first = [
                plane.submit(images[i : i + 1], deployment=f"dep{i % 2}",
                             session_id="S")
                for i in range(4)
            ]
            plane.drain()
            assert plane.alive_workers == 2
            second = [
                plane.submit(images[i : i + 1], deployment=f"dep{i % 2}",
                             session_id="S")
                for i in range(4)
            ]
            plane.drain()
            for handle in first + second:
                assert plane.result(handle).shape == (1, 10)


class TestBatchCompositionPolicy:
    def _submit_alternating(self, plane, images, n=4):
        return [
            plane.submit(
                images[i : i + 1], deployment="dep0",
                session_id="AB"[i % 2],
            )
            for i in range(n)
        ]

    def test_mixed_policy_reports_mixing_index(self, bundle, collections):
        with _make_plane(
            bundle, collections, n_deployments=1, window=4
        ) as plane:
            handles = self._submit_alternating(plane, bundle.test_set.images)
            plane.drain()
            metrics = plane.metrics_by_deployment()["dep0"]
            # One window of 4 alternating single-row sessions: every
            # request shared its batch half-and-half with the other user.
            assert metrics.micro_batches == 1
            assert metrics.mixing_index == pytest.approx(0.5)
            for handle in handles:
                plane.result(handle)

    def test_isolated_policy_never_mixes(self, bundle, collections):
        with _make_plane(
            bundle, collections, n_deployments=1, window=4,
            isolate_sessions=True,
        ) as plane:
            handles = self._submit_alternating(plane, bundle.test_set.images)
            plane.drain()
            metrics = plane.metrics_by_deployment()["dep0"]
            assert metrics.micro_batches == 4  # one per session boundary
            assert metrics.mixing_index == 0.0
            for handle in handles:
                plane.result(handle)

    def test_isolation_preserves_parity(self, bundle, collections):
        """Isolation changes batch composition, never content: the FIFO
        prefix rule keeps noise draws in arrival order."""
        plan = _interleaved_plan(bundle, np.random.default_rng(6), 10, 1)
        expected = _sequential_reference(bundle, collections, plan, 1)
        with _make_plane(
            bundle, collections, n_deployments=1, workers=2,
            isolate_sessions=True,
        ) as plane:
            handles = [
                plane.submit(images, deployment=dep, slo_seconds=slo,
                             session_id=sid)
                for dep, images, slo, sid in plan
            ]
            plane.drain()
            actual = [plane.result(h) for h in handles]
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)


class TestShuffledServing:
    """The shuffling contract on the control plane: permuted wire frames,
    bit-exact restored results — interleaved tenants, racing workers, and
    crashed workers included."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_shuffled_parity_across_workers(self, bundle, collections, workers):
        plan = _interleaved_plan(
            bundle, np.random.default_rng(42), 14, N_DEPLOYMENTS
        )
        expected = _sequential_reference(bundle, collections, plan, N_DEPLOYMENTS)
        with _make_plane(
            bundle, collections, workers=workers, shuffle=True
        ) as plane:
            handles = [
                plane.submit(images, deployment=dep, slo_seconds=slo,
                             session_id=sid)
                for dep, images, slo, sid in plan
            ]
            plane.drain()
            shuffled = sum(
                m.shuffled_batches
                for m in plane.metrics_by_deployment().values()
            )
            assert shuffled > 0  # the stage actually ran
            actual = [plane.result(h) for h in handles]
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_shuffled_crash_recovery_preserves_parity(self, bundle, collections):
        """A worker killed mid-shuffled-batch: the *permuted* uplink bytes
        are requeued on the survivor and the recorded inverse stays valid
        across attempts — exactly-once, bit-identical."""
        n_deployments = 2
        plan = _interleaved_plan(
            bundle, np.random.default_rng(3), 12, n_deployments
        )
        plan[0] = ("dep0", bundle.test_set.images[:1], None, "user-0")
        expected = _sequential_reference(bundle, collections, plan, n_deployments)
        injector = _one_shot_fault("dep0", 0)
        with _make_plane(
            bundle, collections, n_deployments=n_deployments, workers=2,
            fault_injector=injector, shuffle=True,
        ) as plane:
            handles = [
                plane.submit(images, deployment=dep, slo_seconds=slo,
                             session_id=sid)
                for dep, images, slo, sid in plan
            ]
            delivered = plane.drain()
            assert len(injector.crashed) == 1
            assert plane.metrics_by_deployment()["dep0"].requeued_batches == 1
            assert sorted(delivered) == sorted(handles)
            actual = [plane.result(h) for h in handles]
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_anonymity_sets_and_amplification_surface(self, bundle, collections):
        from repro.privacy.shuffle_eval import amplified_epsilon

        images = bundle.test_set.images
        with _make_plane(
            bundle, collections, n_deployments=1, window=4, shuffle=True
        ) as plane:
            handles = [
                plane.submit(images[i : i + 1], deployment="dep0",
                             session_id=f"user-{i % 4}")
                for i in range(8)
            ]
            plane.drain()
            metrics = plane.metrics_by_deployment()["dep0"]
            assert metrics.shuffled_batches == 2
            assert metrics.anonymity_sets == [4, 4]
            assert metrics.shuffle_amplification(1.0) == pytest.approx(
                amplified_epsilon(1.0, 4)
            )
            for handle in handles:
                plane.result(handle)

    def test_explicit_seed_reproduces_the_stream(self, bundle, collections):
        """Same shuffle seed, same permutation stream: two identically
        configured planes serve identical bytes end to end."""
        plan = _interleaved_plan(bundle, np.random.default_rng(8), 10, 1)
        outputs = []
        for _ in range(2):
            plane = _make_plane(
                bundle, collections, n_deployments=1, workers=2, shuffle=True
            )
            with plane:
                handles = [
                    plane.submit(images, deployment=dep, slo_seconds=slo,
                                 session_id=sid)
                    for dep, images, slo, sid in plan
                ]
                plane.drain()
                outputs.append([plane.result(h) for h in handles])
        for a, b in zip(*outputs):
            np.testing.assert_array_equal(a, b)


class TestDeployMany:
    def test_pipeline_deploy_many(self, bundle):
        pipeline = ShredderPipeline(bundle, config=Config(scale=TINY))
        collection = pipeline.collect(2, iterations=10)
        plane = pipeline.deploy_many(
            {
                "shredded": collection,
                "baseline": None,
                "planned": DeploymentSpec(
                    noise=collection,
                    batch_window=None,
                    target_slo_seconds=0.5,
                    arrival_rate_rps=200.0,
                ),
            },
            workers=2,
        )
        try:
            assert isinstance(plane, ControlPlane)
            assert plane.registry.names() == ["shredded", "baseline", "planned"]
            assert plane.registry.get("planned").batch_window >= 1
            images = bundle.test_set.images
            handles = [
                plane.submit(
                    images[i : i + 1],
                    deployment=name,
                    session_id=f"user-{i % 2}",
                )
                for i, name in enumerate(
                    ["shredded", "baseline", "planned"] * 3
                )
            ]
            plane.drain()
            for handle in handles:
                assert plane.result(handle).shape == (1, 10)
            report = plane.report_for("shredded")
            assert report.requests == 3
            assert report.uplink_bytes > 0
        finally:
            plane.close()

    def test_deploy_many_rejects_bad_spec(self, bundle):
        pipeline = ShredderPipeline(bundle, config=Config(scale=TINY))
        with pytest.raises(ConfigurationError):
            pipeline.deploy_many({})
        with pytest.raises(ConfigurationError, match="DeploymentSpec"):
            pipeline.deploy_many({"x": 42})

    def test_planner_windows_per_deployment(self, bundle):
        cut = bundle.model.last_conv_cut()
        plans = plan_deployment_windows(
            {
                "tight": {"target_slo_seconds": 0.030, "arrival_rate_rps": 500.0},
                "loose": {"target_slo_seconds": 0.500, "arrival_rate_rps": 500.0},
            },
            model=bundle.model,
            cut=cut,
            service_seconds_per_sample=1e-4,
        )
        assert set(plans) == {"tight", "loose"}
        assert plans["tight"].window <= plans["loose"].window
        assert plans["loose"].feasible


class _StepClock:
    """Hand-advanced clock for deterministic autoscaler/admission tests."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestElasticLifecycle:
    """The elastic surface: healing, scaling, hot-swap, unregister — all
    without ever disturbing bit parity or dropping admitted work."""

    def test_heal_restores_pool_with_parity(self, bundle, collections):
        """Crash one worker mid-stream, heal, keep serving: the whole
        stream (before and after the heal) stays bit-identical to the
        sequential reference — noise streams continue across the heal."""
        plan = _interleaved_plan(bundle, np.random.default_rng(41), 12, 2)
        plan[0] = ("dep0", bundle.test_set.images[:1], None, "user-0")
        expected = _sequential_reference(bundle, collections, plan, 2)
        injector = _one_shot_fault("dep0", 0)
        with _make_plane(
            bundle, collections, n_deployments=2, workers=2,
            fault_injector=injector,
        ) as plane:
            first = [
                plane.submit(images, deployment=dep, slo_seconds=slo,
                             session_id=sid)
                for dep, images, slo, sid in plan[:6]
            ]
            plane.drain()
            assert len(injector.crashed) == 1
            assert plane.alive_workers == 1
            spawned = plane.heal()
            assert spawned == 1
            assert plane.alive_workers == 2
            assert plane.pool_metrics.respawned_workers == 1
            second = [
                plane.submit(images, deployment=dep, slo_seconds=slo,
                             session_id=sid)
                for dep, images, slo, sid in plan[6:]
            ]
            plane.drain()
            actual = [plane.result(h) for h in first + second]
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_auto_heal_recovers_total_worker_loss(self, bundle, collections):
        """With ``auto_heal``, even the sole worker dying mid-batch is
        survivable: the pool respawns, the batch requeues, and the result
        is bit-identical to the undisturbed reference."""
        plan = _interleaved_plan(bundle, np.random.default_rng(43), 8, 1)
        plan[0] = ("dep0", bundle.test_set.images[:1], None, "user-0")
        expected = _sequential_reference(bundle, collections, plan, 1)
        injector = _one_shot_fault("dep0", 0)
        with _make_plane(
            bundle, collections, n_deployments=1, workers=1,
            fault_injector=injector, auto_heal=True,
        ) as plane:
            handles = [
                plane.submit(images, deployment=dep, slo_seconds=slo,
                             session_id=sid)
                for dep, images, slo, sid in plan
            ]
            delivered = plane.drain()
            assert sorted(delivered) == sorted(handles)
            assert len(injector.crashed) == 1
            assert plane.alive_workers == 1
            assert plane.pool_metrics.respawned_workers == 1
            assert (
                plane.metrics_by_deployment()["dep0"].requeued_batches == 1
            )
            actual = [plane.result(h) for h in handles]
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_hot_swap_preserves_parity_on_both_sides(
        self, bundle, collections
    ):
        """Swap dep0's noise/rng under live traffic: pre-barrier requests
        serve under the old regime (bit-identical to the old reference),
        post-swap requests under the new one (bit-identical to a fresh
        reference), and the untouched tenant never notices."""
        images = bundle.test_set.images
        cut = bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
        phase_a = [
            (f"dep{i % 2}", images[i : i + 1]) for i in range(6)
        ]
        phase_b = [
            (f"dep{i % 2}", images[6 + i : 7 + i]) for i in range(6)
        ]
        with _make_plane(
            bundle, collections, n_deployments=2, workers=2
        ) as plane:
            a_handles = [
                plane.submit(img, deployment=dep) for dep, img in phase_a
            ]
            delivered = plane.swap(
                "dep0",
                noise=collections[1],
                rng=np.random.default_rng(777),
            )
            # The drain barrier finished every pre-swap dep0 request
            # under the old configuration before re-equipping.
            dep0_a = [h for h in a_handles if h.deployment == "dep0"]
            assert set(dep0_a) <= set(delivered)
            plane.drain()  # dep1's phase-A remainder
            b_handles = [
                plane.submit(img, deployment=dep) for dep, img in phase_b
            ]
            plane.drain()

            reference_old = InferenceSession(
                bundle.model, cut, mean, std,
                noise=_noise_for(collections, 0),
                rng=np.random.default_rng(100),
                weight_bits=WEIGHT_BITS,
            )
            reference_new = InferenceSession(
                bundle.model, cut, mean, std,
                noise=collections[1],
                rng=np.random.default_rng(777),
                weight_bits=WEIGHT_BITS,
            )
            reference_dep1 = InferenceSession(
                bundle.model, cut, mean, std,
                noise=_noise_for(collections, 1),
                rng=np.random.default_rng(101),
                weight_bits=WEIGHT_BITS,
            )
            for (dep, img), handle in zip(phase_a, a_handles):
                reference = (
                    reference_old if dep == "dep0" else reference_dep1
                )
                np.testing.assert_array_equal(
                    plane.result(handle), reference.infer(img)
                )
            for (dep, img), handle in zip(phase_b, b_handles):
                reference = (
                    reference_new if dep == "dep0" else reference_dep1
                )
                np.testing.assert_array_equal(
                    plane.result(handle), reference.infer(img)
                )

    def test_unregister_returns_leftovers_and_spares_other_tenants(
        self, bundle, collections
    ):
        """Removing a tenant under live traffic drains it first (nothing
        admitted is dropped — uncollected results come back), then frees
        its name; the surviving tenant keeps serving bit-identically."""
        images = bundle.test_set.images
        cut = bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
        with _make_plane(
            bundle, collections, n_deployments=2, workers=2
        ) as plane:
            dep0_handles = [
                plane.submit(images[i : i + 1], deployment="dep0")
                for i in range(3)
            ]
            dep1_handles = [
                plane.submit(images[i : i + 1], deployment="dep1")
                for i in range(3)
            ]
            leftovers = plane.unregister("dep0")
            assert set(leftovers) == {h.request_id for h in dep0_handles}
            assert "dep0" not in plane.registry
            with pytest.raises(ConfigurationError, match="unknown deployment"):
                plane.submit(images[:1], deployment="dep0")
            reference_0 = InferenceSession(
                bundle.model, cut, mean, std,
                noise=_noise_for(collections, 0),
                rng=np.random.default_rng(100),
                weight_bits=WEIGHT_BITS,
            )
            for i, handle in enumerate(dep0_handles):
                np.testing.assert_array_equal(
                    leftovers[handle.request_id],
                    reference_0.infer(images[i : i + 1]),
                )
            # The surviving tenant serves on, parity intact.
            more = [
                plane.submit(images[3 + i : 4 + i], deployment="dep1")
                for i in range(2)
            ]
            plane.drain()
            reference_1 = InferenceSession(
                bundle.model, cut, mean, std,
                noise=_noise_for(collections, 1),
                rng=np.random.default_rng(101),
                weight_bits=WEIGHT_BITS,
            )
            for i, handle in enumerate(dep1_handles + more):
                np.testing.assert_array_equal(
                    plane.result(handle),
                    reference_1.infer(images[i : i + 1]),
                )

    def test_scale_to_grows_and_shrinks_within_bounds(
        self, bundle, collections
    ):
        with _make_plane(
            bundle, collections, n_deployments=1, workers=1, max_workers=4
        ) as plane:
            assert plane.scale_to(3) == 3
            assert plane.alive_workers == 3
            assert plane.scale_to(1) == 1  # all parked: shrink is immediate
            assert plane.alive_workers == 1
            with pytest.raises(ConfigurationError, match="pool size"):
                plane.scale_to(0)
            with pytest.raises(ConfigurationError, match="pool size"):
                plane.scale_to(5)
            # An explicit heal target overrides the shrink target — the
            # deferred-shrink pass must not undo it on the next pump.
            assert plane.heal(to=3) == 2
            plane.pump_handles()
            assert plane.alive_workers == 3
            assert plane.pool_metrics.pool_size_samples
            assert max(plane.pool_metrics.pool_size_samples) >= 3

    def test_autoscaler_grows_under_backlog_and_decays_when_idle(
        self, bundle, collections
    ):
        clock = _StepClock()
        plane = ControlPlane(workers=1, max_workers=3, clock=clock)
        plane.register(
            "dep0",
            bundle.model,
            bundle.model.last_conv_cut(),
            noise=_noise_for(collections, 0),
            rng=np.random.default_rng(100),
            batch_window=2,
            batch_timeout=0.0,
        )
        with plane:
            scaler = plane.enable_autoscale(
                min_workers=1, max_workers=3,
                interval_seconds=0.05, scale_down_idle_steps=2,
            )
            assert plane.autoscaler is scaler
            handles = [
                plane.submit(bundle.test_set.images[i : i + 1],
                             deployment="dep0")
                for i in range(12)
            ]
            plane.pump_handles()  # backlog of 6 windows: the pool grows
            assert plane.alive_workers == 2
            assert scaler.decisions
            assert scaler.decisions[0].previous == 1
            assert scaler.decisions[0].target == 2
            plane.drain()
            for handle in handles:
                assert plane.result(handle).shape == (1, 10)
            # Idle now: after scale_down_idle_steps quiet control steps
            # the pool decays back to min_workers.
            for _ in range(8):
                clock.advance(0.1)
                plane.pump_handles()
            assert plane.alive_workers == 1
            assert any(d.target < d.previous for d in scaler.decisions)
            assert max(plane.pool_metrics.pool_size_samples) >= 2

    def test_close_releases_every_context_even_after_crashes(
        self, bundle, collections
    ):
        """Regression for the PR-5 leak: ``close()`` must drain the
        context pool and strip executors/channels from *every* context
        ever spawned — including ones killed by a crash."""
        injector = _one_shot_fault("dep0", 0)
        plane = _make_plane(
            bundle, collections, n_deployments=1, workers=2,
            fault_injector=injector,
        )
        plane.submit(bundle.test_set.images[:1], deployment="dep0")
        plane.drain()
        assert len(injector.crashed) == 1
        plane.close()
        assert plane._contexts.empty()
        assert plane._all_contexts  # the killed context is still tracked
        for context in plane._all_contexts:
            assert not context.alive
            assert context.servers == {}
            assert context.channels == {}
        assert plane.alive_workers == 0
