"""Admission control: token-bucket invariants, typed rejection at the
plane's front door, and the admitted-means-served contract.

Three layers under test:

* :class:`repro.serve.TokenBucket` alone, under hypothesis-generated
  clock/acquire traces — the never-admits-above-rate bound
  (``admitted <= burst + rate * elapsed``), monotone refill under clock
  skew, and the capacity cap;
* :class:`repro.serve.AdmissionController` alone — check ordering (a
  request rejected by the queue cap or shed on its deadline never burns
  a token) and constructor validation;
* the :class:`repro.serve.ControlPlane` front door on a deterministic
  virtual clock — ``max_pending`` / rate rejections surface as typed
  :class:`~repro.errors.AdmissionError`, deadline sheds as
  :class:`~repro.errors.OverloadError`, each counted on the deployment's
  metrics, rejected requests never consume a request id, and every
  *admitted* request still completes bit-identically to the sequential
  reference over the admitted sub-stream.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TINY, Config
from repro.core import NoiseCollection, SplitInferenceModel
from repro.edge import InferenceSession
from repro.errors import AdmissionError, ConfigurationError, OverloadError
from repro.serve import AdmissionController, ControlPlane, TokenBucket


class _VirtualClock:
    """A hand-advanced clock shared by the plane and the test."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


@pytest.fixture(scope="module")
def bundle():
    from repro.models import get_pretrained

    return get_pretrained("lenet", Config(scale=TINY))


@pytest.fixture(scope="module")
def collection(bundle):
    split = SplitInferenceModel(bundle.model)
    rng = np.random.default_rng(5)
    collection = NoiseCollection(split.activation_shape)
    for _ in range(3):
        collection.add(
            rng.laplace(0, 0.05, size=split.activation_shape).astype(np.float32),
            accuracy=0.8,
            in_vivo_privacy=0.1,
        )
    return collection


def _admission_plane(bundle, collection, clock, **admission_kwargs):
    plane = ControlPlane(workers=1, clock=clock)
    plane.register(
        "dep0",
        bundle.model,
        bundle.model.last_conv_cut(),
        noise=collection,
        rng=np.random.default_rng(100),
        batch_window=4,
        batch_timeout=0.0,
        **admission_kwargs,
    )
    return plane


class TestTokenBucket:
    @given(
        rate=st.floats(0.5, 50.0),
        burst=st.floats(1.0, 20.0),
        trace=st.lists(
            st.tuples(
                st.floats(0.0, 0.5),  # clock advance before the attempts
                st.integers(0, 5),  # admission attempts at that instant
            ),
            max_size=40,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_admits_above_rate(self, rate, burst, trace):
        """Over any window, admitted work is bounded by the initial burst
        plus the refill: ``admitted <= burst + rate * elapsed``."""
        bucket = TokenBucket(rate, burst)
        now = 0.0
        admitted = 0
        for advance, attempts in trace:
            now += advance
            for _ in range(attempts):
                if bucket.try_acquire(now):
                    admitted += 1
        assert admitted <= burst + rate * now + 1e-6

    @given(
        rate=st.floats(0.5, 50.0),
        burst=st.floats(1.0, 20.0),
        times=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_refill_is_monotone_and_capped(self, rate, burst, times):
        """Out-of-order ``now`` values never drain the bucket, and the
        level never exceeds the configured burst."""
        bucket = TokenBucket(rate, burst)
        previous = bucket.available(times[0])
        high_water = times[0]
        for now in times[1:]:
            level = bucket.available(now)
            assert level <= burst + 1e-9
            if now <= high_water:  # stale clock: no refund, no drain
                assert level == pytest.approx(previous)
            else:
                assert level >= previous - 1e-9
                high_water = now
            previous = level

    def test_starts_full_and_absorbs_burst(self):
        bucket = TokenBucket(10.0, burst=3.0)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(10.0, burst=2.0)
        assert bucket.try_acquire(0.0) and bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.available(0.05) == pytest.approx(0.5)
        assert bucket.try_acquire(0.1)  # one token back after 100 ms
        assert not bucket.try_acquire(0.1)

    def test_failed_acquire_leaves_bucket_untouched(self):
        bucket = TokenBucket(1.0, burst=1.0)
        assert bucket.try_acquire(0.0)
        before = bucket.available(0.2)
        assert not bucket.try_acquire(0.2)
        assert bucket.available(0.2) == pytest.approx(before)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError, match="rate"):
            TokenBucket(0.0)
        with pytest.raises(ConfigurationError, match="rate"):
            TokenBucket(-1.0)
        with pytest.raises(ConfigurationError, match="burst"):
            TokenBucket(5.0, burst=0.5)
        with pytest.raises(ConfigurationError, match="> 0 tokens"):
            TokenBucket(5.0).try_acquire(0.0, tokens=0.0)

    def test_default_burst_is_one_second_but_at_least_one(self):
        assert TokenBucket(8.0).burst == 8.0
        assert TokenBucket(0.25).burst == 1.0


class TestAdmissionController:
    def test_queue_cap_rejects_before_burning_a_token(self):
        gate = AdmissionController(max_pending=2, rate_rps=10.0, burst=1.0)
        with pytest.raises(AdmissionError, match="max_pending"):
            gate.check(now=0.0, pending=2)
        # The rejection above must not have consumed the single token.
        gate.check(now=0.0, pending=0)
        with pytest.raises(AdmissionError, match="rate limit"):
            gate.check(now=0.0, pending=0)

    def test_deadline_shed_rejects_before_burning_a_token(self):
        gate = AdmissionController(
            rate_rps=10.0, burst=1.0, shed_unmeetable=True
        )
        with pytest.raises(OverloadError, match="shed"):
            gate.check(
                now=0.0,
                pending=0,
                predicted_delay_seconds=1.0,
                slo_seconds=0.010,
            )
        gate.check(now=0.0, pending=0)  # the token is still there

    def test_shed_is_a_distinct_type_from_admission(self):
        gate = AdmissionController(shed_unmeetable=True)
        with pytest.raises(OverloadError) as excinfo:
            gate.check(
                now=0.0,
                pending=0,
                predicted_delay_seconds=1.0,
                slo_seconds=0.010,
            )
        assert not isinstance(excinfo.value, AdmissionError)

    def test_best_effort_requests_are_never_shed(self):
        gate = AdmissionController(shed_unmeetable=True)
        gate.check(now=0.0, pending=10, predicted_delay_seconds=99.0)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError, match="max_pending"):
            AdmissionController(max_pending=0)
        with pytest.raises(ConfigurationError, match="rate_rps"):
            AdmissionController(burst=4.0)


class TestPlaneFrontDoor:
    def test_max_pending_rejects_typed_and_counts(self, bundle, collection):
        clock = _VirtualClock()
        images = bundle.test_set.images[:1]
        with _admission_plane(
            bundle, collection, clock, max_pending=2
        ) as plane:
            first = plane.submit(images, deployment="dep0")
            second = plane.submit(images, deployment="dep0")
            with pytest.raises(AdmissionError, match="max_pending"):
                plane.submit(images, deployment="dep0")
            metrics = plane.metrics_by_deployment()["dep0"]
            assert metrics.rejected_requests == 1
            assert metrics.shed_requests == 0
            # Rejected submissions never consume a request id: the next
            # admitted request is contiguous with the last admitted one.
            plane.drain()
            third = plane.submit(images, deployment="dep0")
            assert [h.request_id for h in (first, second, third)] == [0, 1, 2]
            plane.drain()

    def test_rate_limit_rejects_then_recovers(self, bundle, collection):
        clock = _VirtualClock()
        images = bundle.test_set.images[:1]
        with _admission_plane(
            bundle, collection, clock, admission_rate_rps=10.0,
            admission_burst=2.0,
        ) as plane:
            plane.submit(images, deployment="dep0")
            plane.submit(images, deployment="dep0")
            with pytest.raises(AdmissionError, match="rate limit"):
                plane.submit(images, deployment="dep0")
            assert plane.metrics_by_deployment()["dep0"].rejected_requests == 1
            clock.advance(0.1)  # one token refills at 10 req/s
            plane.submit(images, deployment="dep0")
            plane.drain()

    def test_unmeetable_slo_is_shed_as_overload(self, bundle, collection):
        clock = _VirtualClock()
        images = bundle.test_set.images[:1]
        with _admission_plane(
            bundle, collection, clock, shed_unmeetable=True
        ) as plane:
            # Build a backlog so the predicted delay is strictly positive,
            # then offer a request whose SLO cannot possibly be met.
            for _ in range(4):
                plane.submit(images, deployment="dep0")
            with pytest.raises(OverloadError, match="shed"):
                plane.submit(images, deployment="dep0", slo_seconds=1e-12)
            metrics = plane.metrics_by_deployment()["dep0"]
            assert metrics.shed_requests == 1
            assert metrics.rejected_requests == 0
            # Best-effort requests sail through the same gate.
            plane.submit(images, deployment="dep0")
            plane.drain()

    def test_admitted_requests_keep_bit_parity(self, bundle, collection):
        """Rejections interleaved with admissions must not disturb the
        admitted sub-stream: it stays bit-identical to a sequential
        reference run over exactly the admitted requests."""
        clock = _VirtualClock()
        images = bundle.test_set.images
        with _admission_plane(
            bundle, collection, clock, admission_rate_rps=10.0,
            admission_burst=3.0,
        ) as plane:
            admitted = []
            rejections = 0
            for index in range(8):
                try:
                    handle = plane.submit(
                        images[index : index + 1], deployment="dep0"
                    )
                except AdmissionError:
                    rejections += 1
                    clock.advance(0.1)  # back off: let one token refill
                else:
                    admitted.append((index, handle))
            assert rejections > 0
            plane.drain()
            reference = InferenceSession(
                bundle.model,
                bundle.model.last_conv_cut(),
                np.zeros(1, np.float32),
                np.ones(1, np.float32),
                noise=collection,
                rng=np.random.default_rng(100),
            )
            for index, handle in admitted:
                np.testing.assert_array_equal(
                    plane.result(handle),
                    reference.infer(images[index : index + 1]),
                )

    def test_unadmitted_deployment_is_never_gated(self, bundle, collection):
        clock = _VirtualClock()
        images = bundle.test_set.images[:1]
        with _admission_plane(bundle, collection, clock) as plane:
            for _ in range(20):  # no admission knobs: nothing rejects
                plane.submit(images, deployment="dep0")
            plane.drain()
            metrics = plane.metrics_by_deployment()["dep0"]
            assert metrics.rejected_requests == 0
            assert metrics.shed_requests == 0
