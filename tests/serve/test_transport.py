"""Unit tests for the length-prefixed socket transport (PR 7).

The sharded serving plane rides on :mod:`repro.serve.transport`; these
tests pin its framing contract in isolation: incremental decode over
arbitrary fragmentations, short-write-safe sends, typed errors for
mis-framed streams, typed :class:`~repro.errors.ShardCrashError` on peer
death, and non-blocking backpressure via ``on_block``.
"""

import socket
import threading

import numpy as np
import pytest

from repro.errors import ChannelError, ConfigurationError, ShardCrashError
from repro.serve.transport import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    SocketTransport,
    encode_frame,
    transport_pair,
)


class TestFrameDecoder:
    def test_roundtrip_single_frame(self):
        payload = b"hello, shard"
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(payload)) == [payload]
        assert decoder.pending_bytes == 0

    def test_empty_payload_is_a_valid_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"")) == [b""]

    def test_byte_at_a_time_never_misframes(self):
        payloads = [b"a", b"bb" * 100, b"", b"\x00" * 7]
        wire = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i : i + 1]))
        assert out == payloads
        assert decoder.pending_bytes == 0

    def test_random_fragmentation(self):
        rng = np.random.default_rng(3)
        payloads = [bytes(rng.integers(0, 256, size=int(n), dtype=np.uint8))
                    for n in rng.integers(0, 200, size=20)]
        wire = b"".join(encode_frame(p) for p in payloads)
        for trial in range(10):
            decoder = FrameDecoder()
            out = []
            cursor = 0
            while cursor < len(wire):
                step = int(rng.integers(1, 64))
                out.extend(decoder.feed(wire[cursor : cursor + step]))
                cursor += step
            assert out == payloads

    def test_multiple_frames_in_one_feed(self):
        decoder = FrameDecoder()
        wire = encode_frame(b"one") + encode_frame(b"two") + encode_frame(b"three")
        assert decoder.feed(wire) == [b"one", b"two", b"three"]

    def test_bad_magic_raises_typed(self):
        decoder = FrameDecoder()
        with pytest.raises(ChannelError, match="magic"):
            decoder.feed(b"XXXX\x01\x00\x00\x00a")

    def test_oversized_declared_length_fails_fast_not_hangs(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        import struct

        header = struct.pack("<4sI", b"SHRL", 65)
        with pytest.raises(ChannelError, match="refusing to wait"):
            decoder.feed(header)

    def test_max_frame_bytes_validation(self):
        with pytest.raises(ConfigurationError):
            FrameDecoder(max_frame_bytes=0)
        assert FrameDecoder().max_frame_bytes == DEFAULT_MAX_FRAME_BYTES

    def test_partial_header_is_not_an_error(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"SHR") == []
        assert decoder.pending_bytes == 3
        assert decoder.feed(b"L\x01\x00\x00\x00Z") == [b"Z"]


class TestSocketTransport:
    def test_roundtrip_over_socketpair(self):
        left, right = transport_pair()
        try:
            left.send(b"ping")
            assert right.recv(timeout=5.0) == b"ping"
            right.send(b"pong")
            assert left.recv(timeout=5.0) == b"pong"
        finally:
            left.close()
            right.close()

    def test_large_payload_survives_short_writes(self):
        # Well beyond the kernel socket buffer: the send loop must ride
        # out short writes while the reader drains concurrently.
        payload = bytes(np.random.default_rng(0).integers(
            0, 256, size=4 << 20, dtype=np.uint8))
        left, right = transport_pair()
        received = []

        def reader():
            received.append(right.recv(timeout=30.0))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            left.send(payload)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert received == [payload]
        finally:
            left.close()
            right.close()

    def test_recv_timeout_returns_none(self):
        left, right = transport_pair()
        try:
            assert right.recv(timeout=0.05) is None
            assert right.try_recv() is None
        finally:
            left.close()
            right.close()

    def test_peer_close_raises_shard_crash(self):
        left, right = transport_pair()
        try:
            left.close()
            with pytest.raises(ShardCrashError):
                right.recv(timeout=5.0)
        finally:
            right.close()

    def test_peer_death_mid_frame_reports_partial_bytes(self):
        left, right = transport_pair()
        try:
            frame = encode_frame(b"x" * 100)
            left._sock.sendall(frame[:20])  # half a frame, then death
            left.close()
            with pytest.raises(ShardCrashError, match="partial frame"):
                right.recv(timeout=5.0)
        finally:
            right.close()

    def test_send_to_dead_peer_raises_shard_crash_with_shard_id(self):
        sock_a, sock_b = socket.socketpair()
        left = SocketTransport(sock_a, shard_id=3)
        right = SocketTransport(sock_b)
        right.close()
        with pytest.raises(ShardCrashError) as excinfo:
            # One send may land in the (now orphaned) kernel buffer;
            # keep pushing until the broken pipe surfaces.
            for _ in range(64):
                left.send(b"y" * (1 << 16))
        assert excinfo.value.shard_id == 3
        left.close()

    def test_on_block_callback_drains_backpressure(self):
        # Fill the outbound buffer of a non-blocking socket; on_block
        # must be invoked, and draining the peer lets the send finish.
        left, right = transport_pair()
        left.setblocking(False)
        blocked = {"calls": 0}

        def on_block():
            blocked["calls"] += 1
            while right.try_recv() is not None:
                pass

        payload = b"z" * (1 << 20)
        try:
            for _ in range(8):
                left.send(payload, on_block=on_block)
            while right.try_recv() is not None:
                pass
            assert blocked["calls"] > 0
        finally:
            left.close()
            right.close()

    def test_queued_extra_frames_come_out_in_order(self):
        left, right = transport_pair()
        try:
            for i in range(5):
                left.send(f"frame-{i}".encode())
            got = [right.recv(timeout=5.0) for _ in range(5)]
            assert got == [f"frame-{i}".encode() for i in range(5)]
        finally:
            left.close()
            right.close()

    def test_close_is_idempotent_and_context_managed(self):
        left, right = transport_pair()
        with left, right:
            left.send(b"ok")
            assert right.recv(timeout=5.0) == b"ok"
        left.close()  # second close is a no-op
