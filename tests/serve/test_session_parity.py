"""Batched serving session tests: the parity contract and accounting.

The acceptance property of the serving runtime: on the same request stream
with identically seeded noise generators, the batched session produces
**bit-identical** logits to the retained sequential reference path —
regardless of batching window or mixed request sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NoiseCollection, ShredderPipeline, SplitInferenceModel
from repro.edge import Channel, InferenceSession, calibrate, dequantize, quantize
from repro.errors import ConfigurationError
from repro.serve import BatchedInferenceSession


@pytest.fixture(scope="module")
def collection(lenet_module_bundle):
    split = SplitInferenceModel(lenet_module_bundle.model)
    rng = np.random.default_rng(5)
    collection = NoiseCollection(split.activation_shape)
    for _ in range(4):
        collection.add(
            rng.laplace(0, 0.05, size=split.activation_shape).astype(np.float32),
            accuracy=0.8,
            in_vivo_privacy=0.1,
        )
    return collection


@pytest.fixture(scope="module")
def lenet_module_bundle():
    from repro.config import TINY, Config
    from repro.models import get_pretrained

    return get_pretrained("lenet", Config(scale=TINY))


def _sessions(
    bundle, collection, seed=11, window=4, quantization=None,
    shuffle=False, shuffle_seed=None,
):
    cut = bundle.model.last_conv_cut()
    mean = np.zeros(1, dtype=np.float32)
    std = np.ones(1, dtype=np.float32)
    sequential = InferenceSession(
        bundle.model, cut, mean, std, noise=collection,
        rng=np.random.default_rng(seed),
    )
    batched = BatchedInferenceSession(
        bundle.model, cut, mean, std, noise=collection,
        rng=np.random.default_rng(seed), batch_window=window,
        quantization=quantization, shuffle=shuffle, shuffle_seed=shuffle_seed,
    )
    return sequential, batched


def _single_image_stream(bundle, n):
    images = bundle.test_set.images
    return [images[i % len(images)][None] for i in range(n)]


class TestBitwiseParity:
    def test_single_image_stream(self, lenet_module_bundle, collection):
        sequential, batched = _sessions(lenet_module_bundle, collection)
        stream = _single_image_stream(lenet_module_bundle, 13)
        expected = [sequential.infer(images) for images in stream]
        actual = batched.infer_stream(stream)
        assert len(actual) == len(expected)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_mixed_request_sizes(self, lenet_module_bundle, collection):
        sequential, batched = _sessions(lenet_module_bundle, collection, window=3)
        images = lenet_module_bundle.test_set.images
        sizes = [1, 3, 2, 1, 5, 1, 2]
        stream, start = [], 0
        for size in sizes:
            stream.append(images[start : start + size])
            start += size
        expected = [sequential.infer(batch) for batch in stream]
        actual = batched.infer_stream(stream)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("window", [1, 2, 8, 64])
    def test_any_window_is_equivalent(self, lenet_module_bundle, collection, window):
        sequential, batched = _sessions(
            lenet_module_bundle, collection, window=window
        )
        stream = _single_image_stream(lenet_module_bundle, 9)
        expected = np.concatenate([sequential.infer(x) for x in stream])
        actual = np.concatenate(batched.infer_stream(stream))
        np.testing.assert_array_equal(expected, actual)

    def test_classify_stream_labels_identical(self, lenet_module_bundle, collection):
        sequential, batched = _sessions(lenet_module_bundle, collection)
        stream = _single_image_stream(lenet_module_bundle, 10)
        expected = np.concatenate([sequential.classify(x) for x in stream])
        actual = np.concatenate(batched.classify_stream(stream))
        np.testing.assert_array_equal(expected, actual)

    def test_no_noise_baseline_parity(self, lenet_module_bundle):
        cut = lenet_module_bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
        sequential = InferenceSession(lenet_module_bundle.model, cut, mean, std)
        batched = BatchedInferenceSession(
            lenet_module_bundle.model, cut, mean, std, batch_window=4
        )
        stream = _single_image_stream(lenet_module_bundle, 6)
        expected = [sequential.infer(x) for x in stream]
        actual = batched.infer_stream(stream)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)


class TestShuffledParity:
    """The shuffling contract: permute → compute → unpermute is bit-exact.

    The shuffler permutes each closed micro-batch's rows *after* noise and
    quantisation (both row-local), and the executor is row-invariant, so
    a shuffle-on session must stay bit-identical to the sequential
    reference on every stream — that identity is what lets the privacy
    stage ride along for free.
    """

    @pytest.mark.parametrize("window", [2, 4, 8])
    def test_shuffled_stream_is_bit_identical(
        self, lenet_module_bundle, collection, window
    ):
        sequential, batched = _sessions(
            lenet_module_bundle, collection, window=window, shuffle=True
        )
        stream = _single_image_stream(lenet_module_bundle, 13)
        expected = [sequential.infer(x) for x in stream]
        actual = batched.infer_stream(stream)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)
        assert batched.metrics.shuffled_batches > 0

    def test_shuffled_mixed_request_sizes(self, lenet_module_bundle, collection):
        sequential, batched = _sessions(
            lenet_module_bundle, collection, window=3, shuffle=True,
            shuffle_seed=17,
        )
        images = lenet_module_bundle.test_set.images
        sizes = [1, 3, 2, 1, 5, 1, 2]
        stream, start = [], 0
        for size in sizes:
            stream.append(images[start : start + size])
            start += size
        expected = [sequential.infer(batch) for batch in stream]
        actual = batched.infer_stream(stream)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_shuffled_quantized_matches_unshuffled_quantized(
        self, lenet_module_bundle, collection
    ):
        """Shuffling after quantisation must not move a single wire bit's
        worth of result: quantised shuffle-on == quantised shuffle-off."""
        split = SplitInferenceModel(lenet_module_bundle.model)
        activations = split.activations(lenet_module_bundle.test_set.images[:32])
        params = calibrate(activations, bits=8)
        _, plain = _sessions(
            lenet_module_bundle, collection, quantization=params
        )
        _, shuffled = _sessions(
            lenet_module_bundle, collection, quantization=params, shuffle=True
        )
        stream = _single_image_stream(lenet_module_bundle, 9)
        expected = plain.infer_stream(stream)
        actual = shuffled.infer_stream(stream)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_seeded_policy_is_deterministic(self, lenet_module_bundle, collection):
        from repro.serve import Shuffler

        _, first = _sessions(
            lenet_module_bundle, collection, shuffle=True, shuffle_seed=5
        )
        _, second = _sessions(
            lenet_module_bundle, collection, shuffle=True, shuffle_seed=5
        )
        assert isinstance(first.shuffler, Shuffler)
        stream = _single_image_stream(lenet_module_bundle, 8)
        a = first.infer_stream(stream)
        b = second.infer_stream(stream)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
        # Identically-seeded shufflers drew identical permutations.
        assert first.shuffler.batches == second.shuffler.batches
        assert first.metrics.anonymity_sets == second.metrics.anonymity_sets

    def test_single_request_batches_skip_the_permutation(
        self, lenet_module_bundle, collection
    ):
        _, batched = _sessions(
            lenet_module_bundle, collection, window=1, shuffle=True
        )
        batched.infer_stream(_single_image_stream(lenet_module_bundle, 4))
        # <2-row frames cannot mix; nothing is recorded as shuffled...
        assert batched.metrics.shuffled_batches == 0
        # ...but the policy counter still advanced once per batch, so a
        # later multi-row batch draws from a stable stream position.
        assert batched.shuffler.batches == 4


class TestQuantizedServing:
    def test_quantized_matches_per_request_quantization(
        self, lenet_module_bundle, collection
    ):
        """Stacked-once quantisation == per-request quantisation (it is an
        elementwise map, and the server's quantised-ingest path is batch
        invariant), so the quantised engine must equal a hand-built
        per-request quantise/ingest reference **bitwise** — and stay
        f32-close to a dequantise-then-run reference (the int8-ingest IR
        rewrite folds the affine map into the first GEMM's epilogue, which
        reassociates the float math)."""
        from repro.edge.protocol import BatchActivationMessage

        split = SplitInferenceModel(lenet_module_bundle.model)
        activations = split.activations(lenet_module_bundle.test_set.images[:32])
        params = calibrate(activations, bits=8)
        sequential, batched = _sessions(
            lenet_module_bundle, collection, quantization=params
        )
        stream = _single_image_stream(lenet_module_bundle, 7)
        # Reference: run the sequential device, quantise each request's
        # activation as its own single-request frame, and push the codes
        # through the quantised server path one request at a time.
        expected = []
        dequant_reference = []
        for images in stream:
            message = sequential.device.process(images)
            codes = quantize(message.tensor, params)
            if params.bits <= 8:
                codes = codes.astype(np.uint8)
            frame = BatchActivationMessage(
                request_ids=(message.request_id,),
                splits=(len(images),),
                tensor=codes,
                quantization=params,
            )
            expected.append(batched.server.predict_batch(frame).logits)
            dequant_reference.append(
                sequential.server.handle(
                    type(message)(
                        request_id=message.request_id,
                        tensor=dequantize(codes, params),
                    )
                ).logits
            )
        actual = batched.infer_stream(stream)
        for a, b, c in zip(expected, actual, dequant_reference):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_allclose(b, c, atol=2e-4, rtol=2e-4)

    def test_quantized_uplink_smaller(self, lenet_module_bundle, collection):
        split = SplitInferenceModel(lenet_module_bundle.model)
        activations = split.activations(lenet_module_bundle.test_set.images[:32])
        params = calibrate(activations, bits=8)
        _, float_session = _sessions(lenet_module_bundle, collection)
        _, quant_session = _sessions(
            lenet_module_bundle, collection, quantization=params
        )
        stream = _single_image_stream(lenet_module_bundle, 8)
        float_session.infer_stream(stream)
        quant_session.infer_stream(stream)
        assert (
            quant_session.metrics.uplink_bytes
            < 0.5 * float_session.metrics.uplink_bytes
        )


class TestSessionMechanics:
    def test_metrics_accounting(self, lenet_module_bundle, collection):
        _, batched = _sessions(lenet_module_bundle, collection, window=4)
        stream = _single_image_stream(lenet_module_bundle, 10)
        batched.infer_stream(stream)
        metrics = batched.metrics
        assert metrics.requests == 10
        assert metrics.samples == 10
        assert metrics.micro_batches == 3
        assert metrics.occupancies == [4, 4, 2]
        assert metrics.uplink_bytes > 0 and metrics.downlink_bytes > 0
        assert metrics.wall_seconds > 0
        assert metrics.simulated_wire_seconds > 0
        assert len(metrics.latencies) == 10
        assert metrics.latency_percentile(99) >= metrics.latency_percentile(50) > 0
        assert metrics.requests_per_second > 0
        report = batched.report()
        assert report.requests == 10
        assert report.uplink_bytes == metrics.uplink_bytes
        as_dict = metrics.as_dict()
        assert as_dict["mean_occupancy"] == pytest.approx(10 / 3)
        assert "latency_p99_ms" in metrics.format() or metrics.format()

    def test_submit_step_result_lifecycle(self, lenet_module_bundle, collection):
        _, batched = _sessions(lenet_module_bundle, collection, window=8)
        images = lenet_module_bundle.test_set.images
        first = batched.submit(images[0])
        second = batched.submit(images[1:3])
        assert batched.pending == 2
        completed = batched.step()
        assert completed == [first, second]
        assert batched.pending == 0
        assert batched.result(first).shape == (1, 10)
        assert batched.result(second).shape == (2, 10)
        with pytest.raises(ConfigurationError):
            batched.result(first)  # already collected
        assert batched.step() == []  # empty queue is a no-op

    def test_lossy_channel_still_delivers(self, lenet_module_bundle, collection):
        cut = lenet_module_bundle.model.last_conv_cut()
        batched = BatchedInferenceSession(
            lenet_module_bundle.model, cut,
            np.zeros(1, np.float32), np.ones(1, np.float32),
            noise=collection,
            channel=Channel(drop_rate=0.3, max_retries=20, rng=np.random.default_rng(1)),
            rng=np.random.default_rng(0),
            batch_window=4,
        )
        logits = batched.infer_stream(_single_image_stream(lenet_module_bundle, 6))
        assert np.concatenate(logits).shape == (6, 10)


class TestPipelineDeploy:
    def test_deploy_parity_and_defaults(self, lenet_module_bundle):
        from repro.config import TINY, Config

        pipeline = ShredderPipeline(lenet_module_bundle, config=Config(scale=TINY))
        collection = pipeline.collect(2, iterations=10)
        batched = pipeline.deploy(collection, batch_window=4)
        sequential = pipeline.deploy(collection, batched=False)
        assert isinstance(batched, BatchedInferenceSession)
        assert isinstance(sequential, InferenceSession)
        stream = _single_image_stream(lenet_module_bundle, 6)
        expected = [sequential.infer(x) for x in stream]
        actual = batched.infer_stream(stream)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_deploy_quantized(self, lenet_module_bundle):
        from repro.config import TINY, Config

        pipeline = ShredderPipeline(lenet_module_bundle, config=Config(scale=TINY))
        collection = pipeline.collect(2, iterations=10)
        session = pipeline.deploy(collection, quantize_bits=8)
        assert session.device.quantization is not None
        labels = session.classify_stream(_single_image_stream(lenet_module_bundle, 5))
        assert np.concatenate(labels).shape == (5,)
        with pytest.raises(ConfigurationError):
            pipeline.deploy(collection, batched=False, quantize_bits=8)
