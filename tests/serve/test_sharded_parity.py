"""Bit-parity and fault tests for the process-sharded serving plane (PR 7).

The sharding contract (ROADMAP item 3): requests route to shard
subprocesses by deterministic session hashing, and every shard is
**bit-identical** to its own sequential
:class:`~repro.edge.InferenceSession` reference — the per-shard noise
stream seeded by :func:`~repro.serve.shard.shard_seed` — run over exactly
the subsequence of requests routed to it.  On top of parity:

* per-session ordering (results of one session deliver in submit order),
* spawn-safety (the :class:`~repro.serve.shard.ShardSpec` crossing the
  process boundary is plain data; ``spawn`` works, not just ``fork``),
* exactly-once healing: SIGKILL a shard mid-stream and the respawned
  shard replays its admitted log, duplicates discarded, parity intact
  (heavier leg behind ``REPRO_SERVE_FAULT=1``, mirroring the PR 5/6
  fault-matrix convention).

Env knobs (the CI serve-stress matrix): ``REPRO_SERVE_SEED`` adds a
stream seed, ``REPRO_SERVE_SHARDS`` adds a shard count,
``REPRO_SERVE_FAULT=1`` enables the kill legs.
"""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import NoiseCollection, SplitInferenceModel
from repro.edge import Channel
from repro.errors import ConfigurationError
from repro.serve import (
    ShardSpec,
    ShardedServingEngine,
    generate_trace,
    route_session,
    shard_seed,
)

_ENV_SEED = os.environ.get("REPRO_SERVE_SEED")
_ENV_SHARDS = int(os.environ.get("REPRO_SERVE_SHARDS") or 0)
_FAULTS = os.environ.get("REPRO_SERVE_FAULT") == "1"
STREAM_SEEDS = [11, 23] + ([1000 + int(_ENV_SEED)] if _ENV_SEED else [])
SHARD_COUNTS = sorted({1, 2, 4} | ({_ENV_SHARDS} if _ENV_SHARDS else set()))


@pytest.fixture(scope="module")
def bundle():
    from repro.models import get_pretrained

    return get_pretrained("lenet", Config(scale=TINY))


@pytest.fixture(scope="module")
def collection(bundle):
    split = SplitInferenceModel(bundle.model)
    rng = np.random.default_rng(5)
    collection = NoiseCollection(split.activation_shape)
    for _ in range(4):
        collection.add(
            rng.laplace(0, 0.05, size=split.activation_shape).astype(np.float32),
            accuracy=0.8,
            in_vivo_privacy=0.1,
        )
    return collection


@pytest.fixture(scope="module")
def spec(bundle, collection):
    return ShardSpec.capture(
        bundle.model,
        bundle.model.last_conv_cut(),
        mean=np.zeros(1, np.float32),
        std=np.ones(1, np.float32),
        noise=collection,
        base_seed=7,
        workers=1,
        batch_window=4,
        kernel_backend="numpy",
    )


def _random_stream(bundle, rng, n_requests, n_sessions=6):
    """Mixed-size request batches over a rotating session population."""
    images = bundle.test_set.images
    stream, slos, sessions = [], [], []
    cursor = 0
    for _ in range(n_requests):
        size = int(rng.integers(1, 4))
        stream.append(
            images[cursor % len(images) : cursor % len(images) + 1].repeat(size, axis=0)
        )
        cursor += size
        slos.append([None, 0.050, 0.200][int(rng.integers(0, 3))])
        sessions.append(f"user-{int(rng.integers(0, n_sessions))}")
    return stream, slos, sessions


def _reference_outputs(spec, n_shards, stream, sessions):
    """Per-shard sequential references over each shard's routed subsequence."""
    refs = [spec.reference_session(i, n_shards) for i in range(n_shards)]
    return [
        refs[route_session(session, n_shards)].infer(images)
        for images, session in zip(stream, sessions)
    ]


class TestRouting:
    def test_route_is_deterministic_and_in_range(self):
        for n in (1, 2, 4, 7):
            for sid in ["user-0", "u12345", 42, ("tenant", 3)]:
                first = route_session(sid, n)
                assert 0 <= first < n
                assert all(route_session(sid, n) == first for _ in range(5))

    def test_route_spreads_a_million_user_population(self):
        trace = generate_trace(
            2000, shape="poisson", mean_rate_rps=1e4, seed=0, n_users=1_000_000
        )
        counts = np.bincount(
            [route_session(e.session_id, 4) for e in trace], minlength=4
        )
        assert counts.min() > 0  # no dead shard under heavy-tailed traffic

    def test_shard_seeds_are_distinct_and_stable(self):
        seeds = [shard_seed(7, i) for i in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [shard_seed(7, i) for i in range(8)]

    def test_bad_shard_count_is_typed(self):
        with pytest.raises(ConfigurationError):
            route_session("u0", 0)

    def test_str_canonicalisation_is_the_contract(self):
        """Routing hashes ``str(session_id)`` — the documented contract.

        The sharded wire header already serialises session ids as strings
        (``_send_batch``), so ids with equal string forms are the *same*
        session on the wire and must route identically; hashing the
        pre-``str()`` value would let the parent and a healed, replaying
        shard disagree about session identity.  Pin the behaviour so a
        refactor cannot silently change where existing populations land.
        """
        import zlib

        for n in (1, 2, 4, 7):
            # Equal string forms route together, whatever the type.
            assert route_session(1, n) == route_session("1", n)
            assert route_session(3.5, n) == route_session("3.5", n)
            assert route_session(None, n) == route_session("None", n)
            # And the hash is exactly CRC32 of that string form.
            for sid in ("user-0", 42, ("tenant", 3)):
                assert route_session(sid, n) == (
                    zlib.crc32(str(sid).encode("utf-8")) % n
                )
        # Frozen sample routes: any change to the canonicalisation or
        # hash would re-home sessions (and their noise streams) on
        # existing deployments.
        assert [route_session(f"user-{i}", 4) for i in range(8)] == [
            route_session(f"user-{i}", 4) for i in range(8)
        ]
        assert route_session("user-0", 4) == zlib.crc32(b"user-0") % 4


class TestShuffledShardSpec:
    def test_spec_carries_shuffle_and_engine_stays_bit_identical(
        self, bundle, collection
    ):
        """A shuffle-on spec builds a shuffle-on engine, and the engine's
        results are still bit-identical to the shard's sequential
        reference (the shuffling contract, across the spec boundary)."""
        from dataclasses import replace

        base = ShardSpec.capture(
            bundle.model,
            bundle.model.last_conv_cut(),
            mean=np.zeros(1, np.float32),
            std=np.ones(1, np.float32),
            noise=collection,
            base_seed=7,
            batch_window=4,
            kernel_backend="numpy",
            shuffle=True,
            shuffle_seed=9,
        )
        spec = replace(base)  # still plain data; dataclass ops work
        assert spec.shuffle and spec.shuffle_seed == 9
        stream, _, sessions = _random_stream(
            bundle, np.random.default_rng(13), 8
        )
        expected = _reference_outputs(spec, 1, stream, sessions)
        engine = spec.build_engine(0)
        try:
            ids = [
                engine.submit(images, session_id=session)
                for images, session in zip(stream, sessions)
            ]
            engine.drain()
            actual = [engine.result(request_id) for request_id in ids]
            assert engine.metrics.shuffled_batches > 0
        finally:
            engine.close()
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)


class TestSpawnSafety:
    def test_spec_is_plain_data_and_pickles(self, spec):
        blob = pickle.dumps(spec)
        clone = pickle.loads(blob)
        assert clone.model_name == spec.model_name
        assert clone.cut == spec.cut
        np.testing.assert_array_equal(
            clone.noise_tensors, spec.noise_tensors
        )
        for value in vars(clone).values():
            assert not callable(getattr(value, "transmit", None))  # no Channel
            assert not hasattr(value, "acquire") or isinstance(value, dict)

    def test_spec_rejects_live_channel(self, bundle, collection):
        with pytest.raises(ConfigurationError, match="plain data|dict"):
            ShardSpec.capture(
                bundle.model,
                bundle.model.last_conv_cut(),
                mean=np.zeros(1, np.float32),
                std=np.ones(1, np.float32),
                noise=collection,
                channel=Channel(),  # live object, not kwargs
            )

    def test_spawn_start_method_regression(self, bundle, spec):
        # `spawn` inherits nothing from the parent address space: the
        # spec alone must be enough to rebuild a bit-identical engine.
        stream, slos, sessions = _random_stream(
            bundle, np.random.default_rng(29), 6
        )
        with ShardedServingEngine(spec, shards=2, start_method="spawn") as engine:
            actual = engine.infer_stream(
                stream, slo_seconds=slos, session_ids=sessions
            )
        expected = _reference_outputs(spec, 2, stream, sessions)
        for a, b in zip(actual, expected):
            np.testing.assert_array_equal(a, b)


class TestShardedParity:
    @pytest.mark.parametrize("stream_seed", STREAM_SEEDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_randomized_stream_matches_per_shard_references(
        self, bundle, spec, stream_seed, n_shards
    ):
        stream, slos, sessions = _random_stream(
            bundle, np.random.default_rng(stream_seed), 12
        )
        with ShardedServingEngine(
            spec, shards=n_shards, start_method="fork"
        ) as engine:
            actual = engine.infer_stream(
                stream, slo_seconds=slos, session_ids=sessions
            )
        expected = _reference_outputs(spec, n_shards, stream, sessions)
        assert len(actual) == len(expected)
        for a, b in zip(actual, expected):
            np.testing.assert_array_equal(a, b)

    def test_trace_driven_stream_from_loadgen(self, bundle, spec):
        # The million-user trace harness drives the sharded plane the
        # same way the bench does: ids from a Zipf population, rows from
        # the trace, everything reproducible from the seed.
        trace = generate_trace(
            16,
            shape="bursty",
            mean_rate_rps=500.0,
            seed=4,
            n_users=1_000_000,
            rows_choices=(1, 2),
        )
        images = bundle.test_set.images
        stream = [
            images[i % len(images) : i % len(images) + 1].repeat(e.rows, axis=0)
            for i, e in enumerate(trace)
        ]
        sessions = [e.session_id for e in trace]
        with ShardedServingEngine(spec, shards=2, start_method="fork") as engine:
            actual = engine.infer_stream(stream, session_ids=sessions)
        expected = _reference_outputs(spec, 2, stream, sessions)
        for a, b in zip(actual, expected):
            np.testing.assert_array_equal(a, b)

    def test_per_session_ordering_and_incremental_results(self, bundle, spec):
        stream, _, sessions = _random_stream(bundle, np.random.default_rng(1), 10)
        with ShardedServingEngine(spec, shards=2, start_method="fork") as engine:
            ids = [
                engine.submit(images, session_id=session)
                for images, session in zip(stream, sessions)
            ]
            engine.drain()
            assert engine.outstanding == 0
            actual = [engine.result(request_id) for request_id in ids]
            with pytest.raises(ConfigurationError):
                engine.result(ids[0])  # results are collected exactly once
        expected = _reference_outputs(spec, 2, stream, sessions)
        for a, b in zip(actual, expected):
            np.testing.assert_array_equal(a, b)

    def test_merged_metrics_cover_all_shards(self, bundle, spec):
        stream, _, sessions = _random_stream(bundle, np.random.default_rng(2), 8)
        with ShardedServingEngine(spec, shards=2, start_method="fork") as engine:
            engine.infer_stream(stream, session_ids=sessions)
            merged = engine.metrics()
        assert merged.requests == len(stream)
        assert merged.samples == sum(images.shape[0] for images in stream)
        assert len(merged.latencies) == len(stream)
        # Worker tallies are namespaced per shard: (shard, worker) keys.
        assert all(isinstance(key, tuple) for key in merged.worker_batches)


@pytest.mark.skipif(not _FAULTS, reason="set REPRO_SERVE_FAULT=1 to run kill legs")
class TestShardCrashHealing:
    def test_sigkill_mid_stream_preserves_parity_exactly_once(self, bundle, spec):
        stream, _, sessions = _random_stream(bundle, np.random.default_rng(13), 18)
        with ShardedServingEngine(spec, shards=2, start_method="fork") as engine:
            ids = []
            for index, (images, session) in enumerate(zip(stream, sessions)):
                ids.append(engine.submit(images, session_id=session))
                if index == 8:
                    os.kill(engine.shard_pids()[0], signal.SIGKILL)
                    time.sleep(0.05)
            engine.drain()
            actual = [engine.result(request_id) for request_id in ids]
            respawns = engine.respawned_shards
        assert respawns >= 1
        expected = _reference_outputs(spec, 2, stream, sessions)
        for a, b in zip(actual, expected):
            np.testing.assert_array_equal(a, b)

    def test_kill_during_drain_still_delivers_everything(self, bundle, spec):
        stream, _, sessions = _random_stream(bundle, np.random.default_rng(17), 12)
        with ShardedServingEngine(spec, shards=2, start_method="fork") as engine:
            ids = [
                engine.submit(images, session_id=session)
                for images, session in zip(stream, sessions)
            ]
            os.kill(engine.shard_pids()[-1], signal.SIGKILL)
            engine.drain()
            actual = [engine.result(request_id) for request_id in ids]
            assert engine.respawned_shards >= 1
        expected = _reference_outputs(spec, 2, stream, sessions)
        for a, b in zip(actual, expected):
            np.testing.assert_array_equal(a, b)

    def test_auto_heal_off_surfaces_typed_error(self, bundle, spec):
        from repro.errors import ShardCrashError

        stream, _, sessions = _random_stream(bundle, np.random.default_rng(19), 4)
        with ShardedServingEngine(
            spec, shards=2, start_method="fork", auto_heal=False
        ) as engine:
            for images, session in zip(stream, sessions):
                engine.submit(images, session_id=session)
            for pid in engine.shard_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(ShardCrashError):
                engine.drain(timeout=10.0)
