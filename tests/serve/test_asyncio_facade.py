"""Asyncio facade over the control plane: concurrent awaits, bounded
backpressure, cancellation safety, and failure propagation.

The facade's contract: ``await client.submit(...)`` callers multiplexed
on one event loop get exactly the logits the synchronous path would
produce (arrival order is the gather order, so parity against the
sequential reference is still bitwise); at most ``max_pending`` requests
are admitted-but-unfinished (the bounded-queue backpressure); and a
cancelled caller releases its slot without wedging the dispatcher or any
other caller.

The elastic PR adds lifecycle bridges: ``await client.swap(...)`` /
``unregister(...)`` run on the dispatcher thread between serving turns
(:class:`TestElasticControlOps`), and admission rejections surface as a
typed :class:`~repro.errors.AdmissionError` on the rejected caller only.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import NoiseCollection, SplitInferenceModel
from repro.edge import Channel, InferenceSession
from repro.errors import AdmissionError, ConfigurationError, ServingFaultError
from repro.serve import AsyncServingClient, ControlPlane, ServingEngine


@pytest.fixture(scope="module")
def bundle():
    from repro.models import get_pretrained

    return get_pretrained("lenet", Config(scale=TINY))


@pytest.fixture(scope="module")
def collection(bundle):
    split = SplitInferenceModel(bundle.model)
    rng = np.random.default_rng(5)
    collection = NoiseCollection(split.activation_shape)
    for _ in range(4):
        collection.add(
            rng.laplace(0, 0.05, size=split.activation_shape).astype(np.float32),
            accuracy=0.8,
            in_vivo_privacy=0.1,
        )
    return collection


def _plane(bundle, collection, *, deployments=2, workers=2, channel=None,
           fault_injector=None):
    plane = ControlPlane(
        workers=workers, channel=channel, fault_injector=fault_injector
    )
    cut = bundle.model.last_conv_cut()
    for index in range(deployments):
        plane.register(
            f"dep{index}",
            bundle.model,
            cut,
            noise=collection,
            rng=np.random.default_rng(300 + index),
            batch_window=4,
            batch_timeout=0.0,
        )
    return plane


def _reference(bundle, collection, plan, deployments=2):
    cut = bundle.model.last_conv_cut()
    mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
    sessions = {
        f"dep{index}": InferenceSession(
            bundle.model, cut, mean, std, noise=collection,
            rng=np.random.default_rng(300 + index),
        )
        for index in range(deployments)
    }
    return [sessions[dep].infer(images) for dep, images, _ in plan]


class TestConcurrentAwaits:
    def test_gathered_callers_get_bitwise_results(self, bundle, collection):
        images = bundle.test_set.images
        plan = [
            (f"dep{i % 2}", images[i : i + 1], f"user-{i % 3}")
            for i in range(12)
        ]
        expected = _reference(bundle, collection, plan)

        async def main():
            with _plane(bundle, collection) as plane:
                async with AsyncServingClient(plane, max_pending=32) as client:
                    return await asyncio.gather(
                        *[
                            client.submit(
                                images, deployment=dep, session_id=session
                            )
                            for dep, images, session in plan
                        ]
                    )

        actual = asyncio.run(main())
        assert len(actual) == len(expected)
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_facade_over_single_deployment_engine(self, bundle, collection):
        """The engine IS a control plane; the facade drives it directly
        (deployment defaults to its sole tenant)."""
        images = bundle.test_set.images
        stream = [images[i : i + 1] for i in range(6)]
        cut = bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)
        sequential = InferenceSession(
            bundle.model, cut, mean, std, noise=collection,
            rng=np.random.default_rng(7),
        )
        expected = [sequential.infer(x) for x in stream]

        async def main():
            engine = ServingEngine(
                bundle.model, cut, mean, std, noise=collection,
                rng=np.random.default_rng(7), workers=2, batch_window=4,
                batch_timeout=0.0,
            )
            with engine:
                async with AsyncServingClient(engine) as client:
                    return await asyncio.gather(
                        *[client.submit(x) for x in stream]
                    )

        actual = asyncio.run(main())
        for a, b in zip(expected, actual):
            np.testing.assert_array_equal(a, b)

    def test_classify_helper(self, bundle, collection):
        async def main():
            with _plane(bundle, collection, deployments=1) as plane:
                async with AsyncServingClient(plane) as client:
                    return await client.classify(bundle.test_set.images[:1])

        labels = asyncio.run(main())
        assert labels.shape == (1,)


class TestBackpressure:
    def test_bounded_pending_engages(self, bundle, collection):
        """With a budget of 3 and 10 eager callers over a slow wire, the
        admitted-but-unfinished count never exceeds the bound — and
        everyone still completes correctly."""
        images = bundle.test_set.images

        async def main():
            channel = Channel(latency_ms=2.0, realtime=True)
            with _plane(
                bundle, collection, deployments=1, channel=channel
            ) as plane:
                async with AsyncServingClient(plane, max_pending=3) as client:
                    results = await asyncio.gather(
                        *[
                            client.submit(images[i : i + 1], deployment="dep0")
                            for i in range(10)
                        ]
                    )
                    return results, client.peak_pending

        results, peak = asyncio.run(main())
        assert len(results) == 10
        assert all(logits.shape == (1, 10) for logits in results)
        assert peak <= 3  # the bound engaged...
        assert peak > 1  # ...and concurrency actually happened

    def test_invalid_bounds_rejected(self, bundle, collection):
        with _plane(bundle, collection, deployments=1) as plane:
            with pytest.raises(ConfigurationError):
                AsyncServingClient(plane, max_pending=0)


class TestCancellation:
    def test_cancelled_caller_does_not_wedge_dispatcher(
        self, bundle, collection
    ):
        images = bundle.test_set.images

        async def main():
            channel = Channel(latency_ms=5.0, realtime=True)
            with _plane(
                bundle, collection, deployments=1, channel=channel
            ) as plane:
                async with AsyncServingClient(plane, max_pending=4) as client:
                    doomed = asyncio.ensure_future(
                        client.submit(images[:1], deployment="dep0",
                                      session_id="S")
                    )
                    await asyncio.sleep(0)  # let it reach the inbox
                    doomed.cancel()
                    # Later callers — including the same session, which
                    # orders behind the cancelled request — still finish.
                    survivors = await asyncio.gather(
                        *[
                            client.submit(images[i : i + 1], deployment="dep0",
                                          session_id="S")
                            for i in range(1, 4)
                        ]
                    )
                    with pytest.raises(asyncio.CancelledError):
                        await doomed
                    assert client.pending == 0
                    return survivors

        survivors = asyncio.run(main())
        assert len(survivors) == 3
        assert all(logits.shape == (1, 10) for logits in survivors)

    def test_close_releases_backpressure_waiters(self, bundle, collection):
        """A caller parked on the backpressure semaphore when close() runs
        must fail fast, not enqueue into the dead dispatcher and hang."""
        images = bundle.test_set.images

        async def main():
            channel = Channel(latency_ms=5.0, realtime=True)
            with _plane(
                bundle, collection, deployments=1, channel=channel
            ) as plane:
                client = AsyncServingClient(plane, max_pending=1)
                first = asyncio.ensure_future(
                    client.submit(images[:1], deployment="dep0")
                )
                await asyncio.sleep(0)  # first takes the only slot
                second = asyncio.ensure_future(
                    client.submit(images[1:2], deployment="dep0")
                )
                await asyncio.sleep(0)  # second parks on the semaphore
                # Blocks until the dispatcher drains `first` and exits;
                # only then does `first`'s slot release and wake `second`.
                client.close()
                assert (await first).shape == (1, 10)
                with pytest.raises(ConfigurationError, match="closed"):
                    await second

        asyncio.run(main())

    def test_submit_after_close_rejected(self, bundle, collection):
        async def main():
            with _plane(bundle, collection, deployments=1) as plane:
                client = AsyncServingClient(plane)
                await client.aclose()
                with pytest.raises(ConfigurationError, match="closed"):
                    await client.submit(bundle.test_set.images[:1])

        asyncio.run(main())


class TestElasticControlOps:
    def test_swap_between_awaits_preserves_parity(self, bundle, collection):
        """``await client.swap(...)`` runs on the dispatcher thread between
        serving turns; awaits before it see the old regime, awaits after
        it see the new one — both bit-identical to their references."""
        images = bundle.test_set.images
        cut = bundle.model.last_conv_cut()
        mean, std = np.zeros(1, np.float32), np.ones(1, np.float32)

        async def main():
            with _plane(bundle, collection, deployments=1) as plane:
                async with AsyncServingClient(plane, max_pending=16) as client:
                    before = await asyncio.gather(
                        *[
                            client.submit(images[i : i + 1], deployment="dep0")
                            for i in range(4)
                        ]
                    )
                    delivered = await client.swap(
                        "dep0", rng=np.random.default_rng(777)
                    )
                    after = await asyncio.gather(
                        *[
                            client.submit(images[i : i + 1], deployment="dep0")
                            for i in range(4, 8)
                        ]
                    )
                    return before, delivered, after

        before, delivered, after = asyncio.run(main())
        assert delivered == []  # nothing was queued at the barrier
        reference_old = InferenceSession(
            bundle.model, cut, mean, std, noise=collection,
            rng=np.random.default_rng(300),
        )
        reference_new = InferenceSession(
            bundle.model, cut, mean, std, noise=collection,
            rng=np.random.default_rng(777),
        )
        for i, logits in enumerate(before):
            np.testing.assert_array_equal(
                logits, reference_old.infer(images[i : i + 1])
            )
        for i, logits in enumerate(after, start=4):
            np.testing.assert_array_equal(
                logits, reference_new.infer(images[i : i + 1])
            )

    def test_unregister_never_hangs_awaiting_callers(self, bundle, collection):
        """Unregistering a tenant with callers in flight resolves every
        admitted await (the drain barrier serves them) and fails later
        submissions typed — nobody hangs."""
        images = bundle.test_set.images

        async def main():
            channel = Channel(latency_ms=2.0, realtime=True)
            with _plane(
                bundle, collection, deployments=2, channel=channel
            ) as plane:
                async with AsyncServingClient(plane, max_pending=16) as client:
                    in_flight = [
                        asyncio.ensure_future(
                            client.submit(
                                images[i : i + 1], deployment=f"dep{i % 2}"
                            )
                        )
                        for i in range(6)
                    ]
                    await asyncio.sleep(0)  # let them reach the inbox
                    await client.unregister("dep0")
                    results = await asyncio.gather(*in_flight)
                    assert "dep0" not in plane.registry
                    with pytest.raises(ConfigurationError,
                                       match="unknown deployment"):
                        await client.submit(images[:1], deployment="dep0")
                    survivor = await client.submit(
                        images[:1], deployment="dep1"
                    )
                    return results, survivor

        results, survivor = asyncio.run(main())
        assert all(logits.shape == (1, 10) for logits in results)
        assert survivor.shape == (1, 10)

    def test_admission_rejection_fails_only_that_caller(
        self, bundle, collection
    ):
        """A token-bucket rejection surfaces as a typed AdmissionError on
        the rejected caller alone; admitted neighbours still complete."""
        images = bundle.test_set.images

        async def main():
            plane = ControlPlane(workers=1)
            plane.register(
                "dep0",
                bundle.model,
                bundle.model.last_conv_cut(),
                noise=collection,
                rng=np.random.default_rng(300),
                batch_window=4,
                batch_timeout=0.0,
                admission_rate_rps=1e-6,  # ~one token, ever
                admission_burst=1.0,
            )
            with plane:
                async with AsyncServingClient(plane) as client:
                    outcomes = await asyncio.gather(
                        *[
                            client.submit(images[i : i + 1], deployment="dep0")
                            for i in range(3)
                        ],
                        return_exceptions=True,
                    )
                    rejected = plane.metrics_by_deployment()[
                        "dep0"
                    ].rejected_requests
                    return outcomes, rejected

        outcomes, rejected = asyncio.run(main())
        served = [o for o in outcomes if isinstance(o, np.ndarray)]
        refused = [o for o in outcomes if isinstance(o, AdmissionError)]
        assert len(served) == 1 and served[0].shape == (1, 10)
        assert len(refused) == 2
        assert rejected == 2


class TestFailurePropagation:
    def test_unrecoverable_fault_rejects_awaits(self, bundle, collection):
        """When every worker dies, outstanding awaits fail with the
        serving fault instead of hanging forever."""

        async def main():
            plane = _plane(
                bundle, collection, deployments=1, workers=1,
                fault_injector=lambda worker_id, task: True,
            )
            with plane:
                client = AsyncServingClient(plane)
                try:
                    with pytest.raises(ServingFaultError):
                        await asyncio.wait_for(
                            client.submit(
                                bundle.test_set.images[:1], deployment="dep0"
                            ),
                            timeout=10.0,
                        )
                finally:
                    client.close()

        asyncio.run(main())
