"""Shared numerical helpers for the test suite."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor


def tensor64(array, requires_grad: bool = True) -> Tensor:
    """Create a float64 tensor (for tight numeric gradient checks)."""
    return Tensor(np.asarray(array, dtype=np.float64), requires_grad=requires_grad)


def numeric_gradient(
    f: Callable[[], Tensor], x: Tensor, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. ``x.data``."""
    grad = np.zeros_like(x.data, dtype=np.float64)
    flat = x.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = f().item()
        flat[i] = original - eps
        lo = f().item()
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2.0 * eps)
    return grad


def assert_gradcheck(
    f: Callable[[], Tensor], x: Tensor, tol: float = 1e-6, eps: float = 1e-5
) -> None:
    """Assert the analytic gradient of ``f`` w.r.t. ``x`` matches numerics."""
    x.zero_grad()
    loss = f()
    loss.backward()
    assert x.grad is not None, "no gradient reached the input"
    numeric = numeric_gradient(f, x, eps=eps)
    error = np.abs(numeric - x.grad).max()
    assert error < tol, f"gradcheck failed: max error {error:.3e} >= {tol:.0e}"
