"""Shared pytest fixtures for the Shredder reproduction test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Tests always run at tiny scale and cache into a throwaway directory so
# they never pollute (or depend on) a user's experiment cache.
os.environ.setdefault("REPRO_SCALE", "tiny")


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic per-test RNG."""
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Point the pretrained-model cache at a per-test temp directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield


@pytest.fixture(scope="session")
def session_cache_dir(tmp_path_factory):
    """A cache shared across one test session, for expensive fixtures."""
    return tmp_path_factory.mktemp("session_cache")


@pytest.fixture(scope="session")
def lenet_bundle():
    """A pre-trained tiny LeNet shared by the whole test session.

    Training takes ~1 s at tiny scale; sharing it avoids re-training in
    every test that needs a realistic frozen backbone.
    """
    from repro.config import TINY, Config
    from repro.models import get_pretrained

    return get_pretrained("lenet", Config(scale=TINY))
