"""Tests for the noise baselines and the adaptive operating-point search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NoiseCollection,
    OperatingPointSearch,
    accuracy_budget_evaluator,
    activation_sensitivity,
    laplace_mechanism_noise,
    matched_variance_noise,
    require_converged,
)
from repro.errors import ConfigurationError, TrainingError


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self, rng):
        noise = laplace_mechanism_noise((20000,), sensitivity=2.0, epsilon=0.5, rng=rng)
        # Laplace(0, b): std = sqrt(2) b with b = 4.
        assert noise.std() == pytest.approx(np.sqrt(2) * 4.0, rel=0.05)

    def test_smaller_epsilon_noisier(self, rng):
        strong = laplace_mechanism_noise((5000,), 1.0, 0.1, rng)
        weak = laplace_mechanism_noise((5000,), 1.0, 10.0, rng)
        assert strong.std() > weak.std() * 10

    @pytest.mark.parametrize("kwargs", [dict(sensitivity=0.0, epsilon=1.0), dict(sensitivity=1.0, epsilon=0.0)])
    def test_validation(self, rng, kwargs):
        with pytest.raises(ConfigurationError):
            laplace_mechanism_noise((4,), rng=rng, **kwargs)

    def test_sensitivity_is_range(self):
        assert activation_sensitivity(np.array([-1.0, 0.0, 3.0])) == pytest.approx(4.0)

    def test_sensitivity_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            activation_sensitivity(np.array([]))


class TestMatchedVariance:
    @pytest.fixture()
    def collection(self, rng):
        collection = NoiseCollection((4, 3, 3))
        for _ in range(5):
            collection.add(
                rng.laplace(0, 2.0, size=(4, 3, 3)).astype(np.float32), 0.9, 0.5
            )
        return collection

    def test_variance_matched(self, collection, rng):
        stacked = np.stack([s.tensor for s in collection.samples])
        fresh = matched_variance_noise(collection, 500, rng)
        assert fresh.std() == pytest.approx(stacked.std(), rel=0.1)

    def test_gaussian_family(self, collection, rng):
        fresh = matched_variance_noise(collection, 500, rng, family="gaussian")
        stacked = np.stack([s.tensor for s in collection.samples])
        assert fresh.std() == pytest.approx(stacked.std(), rel=0.1)

    def test_shape(self, collection, rng):
        assert matched_variance_noise(collection, 7, rng).shape == (7, 4, 3, 3)

    def test_unknown_family(self, collection, rng):
        with pytest.raises(ConfigurationError):
            matched_variance_noise(collection, 3, rng, family="cauchy")


class TestOperatingPointSearch:
    @staticmethod
    def make_evaluator(knee: float):
        """Accuracy loss grows linearly past a knee; privacy = level."""

        def evaluate(level: float) -> tuple[float, float]:
            loss = max(0.0, (level - knee) * 10.0)
            return loss, level

        return evaluate

    def test_finds_level_near_budget_boundary(self):
        # loss = 10*(level-1) -> budget 2% is crossed at level 1.2.
        search = OperatingPointSearch(
            self.make_evaluator(knee=1.0),
            max_accuracy_loss_percent=2.0,
            low=0.1,
            high=4.0,
            iterations=8,
        )
        result = search.run()
        assert result.best is not None
        assert result.best.level == pytest.approx(1.2, abs=0.1)

    def test_budget_infeasible_reports_none(self):
        search = OperatingPointSearch(
            lambda level: (50.0, level), max_accuracy_loss_percent=1.0
        )
        result = search.run()
        assert result.best is None
        assert len(result.probes) == 1

    def test_whole_bracket_affordable_short_circuits(self):
        search = OperatingPointSearch(
            lambda level: (0.0, level), max_accuracy_loss_percent=5.0,
            low=0.1, high=2.0, iterations=6,
        )
        result = search.run()
        assert result.best is not None
        assert result.best.level == pytest.approx(2.0)
        assert len(result.probes) == 2  # low + high only

    def test_probes_recorded(self):
        search = OperatingPointSearch(
            self.make_evaluator(1.0), 2.0, iterations=3
        )
        result = search.run()
        assert len(result.probes) == 5  # low, high, 3 bisections

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_accuracy_loss_percent=0.0),
            dict(max_accuracy_loss_percent=1.0, low=2.0, high=1.0),
            dict(max_accuracy_loss_percent=1.0, iterations=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            OperatingPointSearch(lambda level: (0.0, level), **kwargs)

    def test_end_to_end_on_lenet(self, lenet_bundle):
        from repro.config import TINY, Config
        from repro.eval import build_pipeline, get_benchmark

        config = Config(scale=TINY)
        benchmark = get_benchmark("lenet")

        def factory(level: float):
            return build_pipeline(bundle=lenet_bundle, benchmark=benchmark,
                                  config=config, target_in_vivo=level)

        search = OperatingPointSearch(
            accuracy_budget_evaluator(factory, iterations=120, n_members=2),
            max_accuracy_loss_percent=8.0,
            low=0.05,
            high=2.0,
            iterations=2,
        )
        result = search.run()
        assert result.probes, "search evaluated nothing"
        if result.best is not None:
            assert result.best.accuracy_loss_percent <= 8.0


class TestRequireConverged:
    def test_passes_good_run(self):
        from repro.core.trainer import NoiseTrainingHistory, NoiseTrainingResult

        result = NoiseTrainingResult(
            noise=np.zeros((1, 2)), history=NoiseTrainingHistory(),
            final_in_vivo_privacy=0.5, final_accuracy=0.9, signal_power=1.0,
            epochs=1.0,
        )
        require_converged(result, minimum_accuracy=0.8)

    def test_raises_on_bad_run(self):
        from repro.core.trainer import NoiseTrainingHistory, NoiseTrainingResult

        result = NoiseTrainingResult(
            noise=np.zeros((1, 2)), history=NoiseTrainingHistory(),
            final_in_vivo_privacy=0.5, final_accuracy=0.4, signal_power=1.0,
            epochs=1.0,
        )
        with pytest.raises(TrainingError):
            require_converged(result, minimum_accuracy=0.8)
