"""Tests for SNR and the in-vivo privacy proxy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    in_vivo_privacy,
    in_vivo_privacy_from_power,
    noise_variance,
    signal_power,
    snr,
)
from repro.errors import EstimatorError


class TestSignalPower:
    def test_known_value(self):
        assert signal_power(np.array([1.0, -1.0, 2.0, 0.0])) == pytest.approx(1.5)

    def test_empty_rejected(self):
        with pytest.raises(EstimatorError):
            signal_power(np.array([]))


class TestNoiseVariance:
    def test_matches_numpy(self, rng):
        noise = rng.laplace(0, 2, size=(4, 8, 8))
        assert noise_variance(noise) == pytest.approx(noise.var(), rel=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(EstimatorError):
            noise_variance(np.array([]))


class TestSNR:
    def test_paper_formula(self, rng):
        activations = rng.standard_normal((16, 4, 4)) * 3
        noise = rng.laplace(0, 1, size=(4, 4))
        expected = np.mean(activations.astype(np.float64) ** 2) / noise.var()
        assert snr(activations, noise) == pytest.approx(expected, rel=1e-6)

    def test_zero_variance_noise_rejected(self, rng):
        with pytest.raises(EstimatorError):
            snr(rng.standard_normal(10), np.ones(10))

    def test_in_vivo_is_reciprocal(self, rng):
        activations = rng.standard_normal((8, 4))
        noise = rng.laplace(0, 1, size=(8, 4))
        assert in_vivo_privacy(activations, noise) == pytest.approx(
            1.0 / snr(activations, noise)
        )

    def test_from_power_matches(self, rng):
        activations = rng.standard_normal((8, 4))
        noise = rng.laplace(0, 1, size=(8, 4))
        assert in_vivo_privacy_from_power(
            signal_power(activations), noise
        ) == pytest.approx(in_vivo_privacy(activations, noise))

    def test_from_power_validates(self, rng):
        with pytest.raises(EstimatorError):
            in_vivo_privacy_from_power(0.0, rng.laplace(0, 1, size=8))

    @given(st.floats(min_value=0.2, max_value=8.0))
    @settings(max_examples=20, deadline=None)
    def test_privacy_monotone_in_noise_scale(self, scale):
        # Bigger noise ==> strictly more in-vivo privacy (lower SNR).
        rng = np.random.default_rng(0)
        activations = rng.standard_normal((32, 8))
        base = rng.laplace(0, 1.0, size=(32, 8))
        assert in_vivo_privacy(activations, base * (scale + 0.1)) > in_vivo_privacy(
            activations, base * scale
        )
