"""Batched multi-member noise training must match sequential training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import (
    ConstantLambda,
    DecayOnTarget,
    MultiNoiseTensor,
    NoiseTensor,
    NoiseTrainer,
    ShredderLoss,
    ShredderPipeline,
    SplitInferenceModel,
    in_vivo_privacy_from_power,
    in_vivo_privacy_members,
    noise_variance,
    noise_variance_members,
)
from repro.errors import ConfigurationError, TrainingError
from repro.nn import Tensor
from repro.nn import functional as F


def make_trainer(bundle, **kwargs):
    split = SplitInferenceModel(bundle.model)
    defaults = dict(
        loss=ShredderLoss(1e-3),
        lr=1e-2,
        batch_size=32,
        eval_every=25,
    )
    defaults.update(kwargs)
    return NoiseTrainer(split, bundle.train_set, bundle.test_set, **defaults)


def fresh_noises(trainer, m, scale=1.0):
    return [
        NoiseTensor.from_laplace(
            trainer.split.activation_shape, np.random.default_rng(seed), scale=scale
        )
        for seed in range(m)
    ]


class TestMultiNoiseTensor:
    def test_from_members_stacks(self):
        members = [
            NoiseTensor.from_array(np.full((2, 3, 3), float(i), dtype=np.float32))
            for i in range(4)
        ]
        bank = MultiNoiseTensor.from_members(members)
        assert bank.n_members == 4
        assert bank.activation_shape == (2, 3, 3)
        for i in range(4):
            np.testing.assert_array_equal(bank.member(i), members[i].data)

    def test_members_iterates_with_batch_dim(self):
        bank = MultiNoiseTensor(np.zeros((3, 2, 2), dtype=np.float32))
        shapes = [member.shape for member in bank.members()]
        assert shapes == [(1, 2, 2)] * 3

    def test_mismatched_shapes_rejected(self):
        members = [
            NoiseTensor.from_array(np.zeros((2, 2), dtype=np.float32)),
            NoiseTensor.from_array(np.zeros((3, 2), dtype=np.float32)),
        ]
        with pytest.raises(ConfigurationError):
            MultiNoiseTensor.from_members(members)

    def test_from_laplace_uses_per_member_rngs(self):
        rngs = [np.random.default_rng(s) for s in (0, 0, 1)]
        bank = MultiNoiseTensor.from_laplace(3, (4, 2, 2), rngs)
        np.testing.assert_array_equal(bank.member(0), bank.member(1))
        assert not np.array_equal(bank.member(0), bank.member(2))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiNoiseTensor.from_members([])


class TestPerMemberReductions:
    def test_noise_variance_members_matches_scalar(self, rng):
        bank = rng.normal(size=(5, 3, 4, 4)).astype(np.float32)
        per_member = noise_variance_members(bank)
        for i in range(5):
            assert per_member[i] == pytest.approx(noise_variance(bank[i]), rel=1e-12)

    def test_in_vivo_members_matches_scalar(self, rng):
        bank = rng.normal(size=(3, 2, 2, 2)).astype(np.float32)
        per_member = in_vivo_privacy_members(2.5, bank)
        for i in range(3):
            assert per_member[i] == pytest.approx(
                in_vivo_privacy_from_power(2.5, bank[i][None]), rel=1e-12
            )

    @pytest.mark.parametrize("variant", ["l1", "inverse_variance"])
    def test_loss_many_matches_individual_calls(self, rng, variant):
        m, b, classes = 3, 16, 10
        logits_data = rng.normal(size=(m * b, classes)).astype(np.float32)
        targets = rng.integers(0, classes, size=m * b)
        bank_data = rng.normal(size=(m, 4, 2, 2)).astype(np.float32)
        lambdas = [1e-2, 5e-3, 0.0]

        bank = MultiNoiseTensor(bank_data.copy())
        logits = Tensor(logits_data.copy(), requires_grad=True)
        loss = ShredderLoss(1e-2, variant=variant)
        total, parts = loss.many(logits, targets, bank, lambdas)
        total.backward()

        for i in range(m):
            single_noise = NoiseTensor(bank_data[i : i + 1].copy())
            single_logits = Tensor(
                logits_data[i * b : (i + 1) * b].copy(), requires_grad=True
            )
            single_total, single_parts = loss.with_lambda(lambdas[i])(
                single_logits, targets[i * b : (i + 1) * b], single_noise
            )
            single_total.backward()
            assert parts[i].cross_entropy == pytest.approx(
                single_parts.cross_entropy, rel=1e-6
            )
            assert parts[i].privacy_term == pytest.approx(
                single_parts.privacy_term, rel=1e-5
            )
            assert parts[i].total == pytest.approx(single_parts.total, rel=1e-5)
            np.testing.assert_allclose(
                bank.grad[i], single_noise.grad[0], rtol=1e-5, atol=1e-7
            )
            np.testing.assert_allclose(
                logits.grad[i * b : (i + 1) * b],
                single_logits.grad,
                rtol=1e-5,
                atol=1e-8,
            )

    def test_loss_many_lambda_count_mismatch(self, rng):
        bank = MultiNoiseTensor(np.zeros((2, 2, 2), dtype=np.float32))
        logits = Tensor(rng.normal(size=(4, 3)).astype(np.float32), requires_grad=True)
        with pytest.raises(ConfigurationError):
            ShredderLoss(1e-3).many(logits, np.zeros(4, dtype=int), bank, [1e-3])

    def test_many_arrays_cross_entropy_matches_scalar(self, rng):
        # many_arrays' fused group-mean CE against the reference scalar
        # cross_entropy, member by member.
        m, b = 3, 4
        logits_data = rng.normal(size=(m * b, 5)).astype(np.float32)
        targets = rng.integers(0, 5, size=m * b)
        bank = MultiNoiseTensor(np.zeros((m, 2, 2), dtype=np.float32))
        _, ce, _, _ = ShredderLoss(0.0).many_arrays(
            Tensor(logits_data, requires_grad=True), targets, bank, [0.0] * m
        )
        for g in range(m):
            single = F.cross_entropy(
                Tensor(logits_data[g * b : (g + 1) * b]), targets[g * b : (g + 1) * b]
            )
            assert float(ce[g]) == pytest.approx(single.item(), rel=1e-6)


class TestTrainManyParity:
    def test_matches_sequential_training(self, lenet_bundle):
        m, iterations = 3, 40
        seq_trainer = make_trainer(lenet_bundle, rng=np.random.default_rng(42))
        sequential = [
            seq_trainer.train(noise, iterations)
            for noise in fresh_noises(seq_trainer, m, scale=1.5)
        ]
        bat_trainer = make_trainer(lenet_bundle, rng=np.random.default_rng(42))
        batched = bat_trainer.train_many(
            fresh_noises(bat_trainer, m, scale=1.5), iterations
        )
        assert len(batched) == m
        for seq, bat in zip(sequential, batched):
            np.testing.assert_allclose(bat.noise, seq.noise, atol=1e-5)
            assert bat.final_in_vivo_privacy == pytest.approx(
                seq.final_in_vivo_privacy, rel=1e-4
            )
            assert bat.final_accuracy == pytest.approx(seq.final_accuracy, abs=0.03)
            assert bat.epochs == pytest.approx(seq.epochs)
            np.testing.assert_allclose(
                bat.history.cross_entropies,
                seq.history.cross_entropies,
                rtol=1e-3,
                atol=1e-4,
            )
            assert bat.history.accuracy_iterations == seq.history.accuracy_iterations

    def test_accepts_prebuilt_bank(self, lenet_bundle):
        trainer = make_trainer(lenet_bundle, rng=np.random.default_rng(0))
        bank = MultiNoiseTensor.from_members(fresh_noises(trainer, 2))
        results = trainer.train_many(bank, 10)
        assert len(results) == 2
        for result in results:
            assert result.noise.shape == (1, *trainer.split.activation_shape)

    def test_history_lengths(self, lenet_bundle):
        trainer = make_trainer(lenet_bundle, rng=np.random.default_rng(1))
        results = trainer.train_many(fresh_noises(trainer, 2), 30)
        for result in results:
            h = result.history
            assert len(h.iterations) == len(h.losses) == len(h.lambdas) == 30
            assert len(h.accuracies) == len(h.accuracy_iterations)
            assert h.accuracy_iterations[-1] == 29

    def test_per_member_decay_schedules_are_independent(self, lenet_bundle):
        # One member starts far above the decay target, the other far
        # below; with per-member clones only the first sees λ decayed
        # immediately.
        trainer = make_trainer(
            lenet_bundle,
            schedule=DecayOnTarget(base=5e-2, target=0.5, decay=0.5),
            rng=np.random.default_rng(2),
        )
        loud = NoiseTensor.from_laplace(
            trainer.split.activation_shape, np.random.default_rng(0), scale=5.0
        )
        quiet = NoiseTensor.from_laplace(
            trainer.split.activation_shape, np.random.default_rng(1), scale=0.05
        )
        results = trainer.train_many([loud, quiet], 5)
        assert results[0].history.lambdas[0] < 5e-2
        assert results[1].history.lambdas[0] == pytest.approx(5e-2)

    def test_zero_iterations_rejected(self, lenet_bundle):
        trainer = make_trainer(lenet_bundle)
        with pytest.raises(TrainingError):
            trainer.train_many(fresh_noises(trainer, 2), 0)

    def test_empty_members_rejected(self, lenet_bundle):
        trainer = make_trainer(lenet_bundle)
        with pytest.raises(TrainingError):
            trainer.train_many([], 10)

    def test_wrong_shape_rejected(self, lenet_bundle):
        trainer = make_trainer(lenet_bundle)
        bad = MultiNoiseTensor(np.zeros((2, 3, 2, 2), dtype=np.float32))
        with pytest.raises(TrainingError):
            trainer.train_many(bad, 10)

    def test_weights_untouched(self, lenet_bundle):
        trainer = make_trainer(lenet_bundle, rng=np.random.default_rng(3))
        before = {
            name: param.numpy().copy()
            for name, param in lenet_bundle.model.named_parameters()
        }
        trainer.train_many(fresh_noises(trainer, 2), 15)
        for name, param in lenet_bundle.model.named_parameters():
            np.testing.assert_array_equal(param.numpy(), before[name])


class TestPipelineCollectBatched:
    @pytest.fixture()
    def pipeline(self, lenet_bundle):
        return ShredderPipeline(
            lenet_bundle, lambda_coeff=1e-3, init_scale=1.0, config=Config(scale=TINY)
        )

    def test_batched_matches_sequential_collect(self, lenet_bundle):
        config = Config(scale=TINY)
        seq_pipe = ShredderPipeline(
            lenet_bundle, lambda_coeff=1e-3, init_scale=1.0, config=config
        )
        sequential = seq_pipe.collect(3, iterations=40, batched=False)
        bat_pipe = ShredderPipeline(
            lenet_bundle, lambda_coeff=1e-3, init_scale=1.0, config=config
        )
        batched = bat_pipe.collect(3, iterations=40, batched=True)
        assert len(batched) == len(sequential) == 3
        for seq, bat in zip(sequential.samples, batched.samples):
            np.testing.assert_allclose(bat.tensor, seq.tensor, atol=1e-5)
            assert bat.in_vivo_privacy == pytest.approx(seq.in_vivo_privacy, rel=1e-4)

    def test_members_differ(self, pipeline):
        collection = pipeline.collect(3, iterations=20)
        tensors = [s.tensor for s in collection.samples]
        assert not np.array_equal(tensors[0], tensors[1])
        assert not np.array_equal(tensors[1], tensors[2])

    def test_decay_schedule_parity_between_modes(self, lenet_bundle):
        # Stateful schedules must behave identically in both collect
        # modes: every member gets its own clone, so one member reaching
        # the decay target cannot decay λ for the others.
        config = Config(scale=TINY)

        def make_pipe():
            return ShredderPipeline(
                lenet_bundle,
                lambda_coeff=5e-2,
                init_scale=0.5,
                schedule=DecayOnTarget(base=5e-2, target=0.3, decay=0.5),
                config=config,
            )

        sequential = make_pipe().collect(2, iterations=30, batched=False)
        batched = make_pipe().collect(2, iterations=30, batched=True)
        for seq, bat in zip(sequential.samples, batched.samples):
            np.testing.assert_allclose(bat.tensor, seq.tensor, atol=1e-5)

    def test_sequential_collect_restores_shared_schedule(self, lenet_bundle):
        schedule = DecayOnTarget(base=5e-2, target=0.3, decay=0.5)
        pipe = ShredderPipeline(
            lenet_bundle,
            lambda_coeff=5e-2,
            init_scale=0.5,
            schedule=schedule,
            config=Config(scale=TINY),
        )
        pipe.collect(2, iterations=10, batched=False)
        assert pipe.trainer.schedule is schedule

    def test_single_member_uses_sequential_path(self, pipeline):
        collection = pipeline.collect(1, iterations=15)
        assert len(collection) == 1


class TestMultiAccuracyEval:
    def test_matches_single_member_eval(self, lenet_bundle, rng):
        trainer = make_trainer(lenet_bundle)
        bank = rng.laplace(
            0, 0.5, size=(3, *trainer.split.activation_shape)
        ).astype(np.float32)
        multi = trainer.split.accuracy_from_activations_multi(
            trainer.eval_activations, trainer.eval_labels, bank
        )
        for i in range(3):
            single = trainer.split.accuracy_from_activations(
                trainer.eval_activations, trainer.eval_labels, bank[i][None]
            )
            assert multi[i] == pytest.approx(single, abs=1e-9)

    def test_shape_mismatch_rejected(self, lenet_bundle):
        from repro.errors import ModelError

        trainer = make_trainer(lenet_bundle)
        with pytest.raises(ModelError):
            trainer.split.accuracy_from_activations_multi(
                trainer.eval_activations,
                trainer.eval_labels,
                np.zeros((2, 1, 1, 1), dtype=np.float32),
            )
