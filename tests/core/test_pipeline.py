"""Integration tests for the end-to-end Shredder pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import NoiseCollection, ShredderPipeline


@pytest.fixture(scope="module")
def pipeline(lenet_bundle):
    return ShredderPipeline(
        lenet_bundle,
        lambda_coeff=1e-3,
        init_scale=1.0,
        config=Config(scale=TINY),
    )


@pytest.fixture(scope="module")
def report(pipeline):
    return pipeline.run(iterations=200, n_members=4)


class TestReportConsistency:
    def test_headline_tradeoff(self, report):
        # The paper's claim at tiny scale: large MI loss, small accuracy loss.
        assert report.mi_loss_percent > 20.0
        assert report.accuracy_loss_percent < 15.0

    def test_accuracy_loss_consistent(self, report):
        assert report.accuracy_loss_percent == pytest.approx(
            100.0 * (report.clean_accuracy - report.noisy_accuracy), abs=1e-9
        )

    def test_mi_loss_consistent(self, report):
        expected = 100.0 * (
            (report.original_mi_bits - report.shredded_mi_bits)
            / report.original_mi_bits
        )
        assert report.mi_loss_percent == pytest.approx(expected, rel=1e-6)

    def test_params_ratio_small(self, report):
        # Table 1: the noise tensor is a tiny fraction of the model.
        assert 0 < report.params_ratio_percent < 5.0

    def test_metadata(self, report, lenet_bundle):
        assert report.model_name == "lenet"
        assert report.cut == lenet_bundle.model.last_conv_cut()
        assert report.epochs > 0

    def test_shredded_mi_below_original(self, report):
        assert report.shredded_mi_bits < report.original_mi_bits


class TestPipelinePieces:
    def test_new_noise_deterministic_by_tag(self, pipeline):
        a = pipeline.new_noise(seed_tag=1)
        b = pipeline.new_noise(seed_tag=1)
        c = pipeline.new_noise(seed_tag=2)
        np.testing.assert_array_equal(a.numpy(), b.numpy())
        assert not np.array_equal(a.numpy(), c.numpy())

    def test_collect_members_differ(self, pipeline):
        collection = pipeline.collect(n_members=2, iterations=30)
        assert len(collection) == 2
        assert not np.array_equal(
            collection.samples[0].tensor, collection.samples[1].tensor
        )

    def test_clean_accuracy_matches_bundle(self, pipeline, lenet_bundle):
        assert pipeline.clean_accuracy() == pytest.approx(
            lenet_bundle.test_accuracy, abs=0.02
        )

    def test_fixed_noise_leaves_mi_unchanged(self, pipeline, rng):
        # Constant-shift invariance measured through the pipeline API.
        fixed = rng.laplace(0, 2, size=(1, *pipeline.split.activation_shape)).astype(
            np.float32
        )
        original = pipeline.measure_leakage(None).mi_bits
        shifted = pipeline.measure_leakage(fixed).mi_bits
        assert shifted == pytest.approx(original, abs=0.2)

    def test_collection_reduces_mi(self, pipeline, report):
        collection = pipeline.collect(n_members=3, iterations=100)
        original = pipeline.measure_leakage(None).mi_bits
        sampled = pipeline.measure_leakage(collection).mi_bits
        assert sampled < original

    def test_noisy_accuracy_with_collection(self, pipeline):
        collection = pipeline.collect(n_members=2, iterations=100)
        accuracy = pipeline.noisy_accuracy(collection)
        assert 0.0 <= accuracy <= 1.0
        assert accuracy > 0.3  # far above chance after recovery training
