"""The shared activation cache must be transparent and must actually hit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import (
    ActivationCache,
    NoiseTrainer,
    ShredderLoss,
    ShredderPipeline,
    SplitInferenceModel,
    clear_activation_cache,
    get_activation_cache,
)
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_activation_cache()
    yield
    clear_activation_cache()


class TestActivationCache:
    def test_returns_identical_arrays(self, lenet_bundle):
        split = SplitInferenceModel(lenet_bundle.model)
        cache = ActivationCache()
        acts, labels = cache.get_or_compute(split, lenet_bundle.test_set)
        direct_acts, direct_labels = split.materialize_activations(
            lenet_bundle.test_set
        )
        np.testing.assert_array_equal(acts, direct_acts)
        np.testing.assert_array_equal(labels, direct_labels)

    def test_hit_returns_same_objects(self, lenet_bundle):
        split = SplitInferenceModel(lenet_bundle.model)
        cache = ActivationCache()
        first = cache.get_or_compute(split, lenet_bundle.test_set)
        second = cache.get_or_compute(split, lenet_bundle.test_set)
        assert first[0] is second[0] and first[1] is second[1]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_hits_across_split_instances_of_same_model(self, lenet_bundle):
        cache = ActivationCache()
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model), lenet_bundle.test_set
        )
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model), lenet_bundle.test_set
        )
        assert cache.stats.hits == 1

    def test_different_cut_misses(self, lenet_bundle):
        cache = ActivationCache()
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model, "conv1"), lenet_bundle.test_set
        )
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model, "conv2"), lenet_bundle.test_set
        )
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_weight_mutation_invalidates(self, lenet_bundle):
        split = SplitInferenceModel(lenet_bundle.model)
        cache = ActivationCache()
        stale_acts, _ = cache.get_or_compute(split, lenet_bundle.test_set)
        param = lenet_bundle.model.parameters()[0]
        original = param.data.copy()
        try:
            param.data += 0.5
            fresh_acts, _ = cache.get_or_compute(split, lenet_bundle.test_set)
            assert cache.stats.misses == 2
            assert not np.array_equal(stale_acts, fresh_acts)
        finally:
            param.data[...] = original

    def test_lru_eviction(self, lenet_bundle):
        cache = ActivationCache(max_entries=1)
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model, "conv1"), lenet_bundle.test_set
        )
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model, "conv2"), lenet_bundle.test_set
        )
        assert len(cache) == 1 and cache.stats.evictions == 1
        # The conv1 entry was evicted, so asking again is a miss.
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model, "conv1"), lenet_bundle.test_set
        )
        assert cache.stats.misses == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivationCache(max_entries=0)
        with pytest.raises(ConfigurationError):
            ActivationCache(max_bytes=0)

    def test_byte_budget_evicts_lru(self, lenet_bundle):
        cache = ActivationCache(max_entries=8, max_bytes=1)
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model, "conv1"), lenet_bundle.test_set
        )
        # A single oversized entry is kept, but adding a second evicts
        # the older one to respect the budget.
        assert len(cache) == 1
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model, "conv2"), lenet_bundle.test_set
        )
        assert len(cache) == 1 and cache.stats.evictions == 1

    def test_clear(self, lenet_bundle):
        cache = ActivationCache()
        cache.get_or_compute(
            SplitInferenceModel(lenet_bundle.model), lenet_bundle.test_set
        )
        cache.clear()
        assert len(cache) == 0


class TestGlobalCacheIntegration:
    def test_trainers_share_materialisation(self, lenet_bundle):
        split = SplitInferenceModel(lenet_bundle.model)
        kwargs = dict(loss=ShredderLoss(1e-3), rng=np.random.default_rng(0))
        first = NoiseTrainer(
            split, lenet_bundle.train_set, lenet_bundle.test_set, **kwargs
        )
        baseline = get_activation_cache().stats.hits
        second = NoiseTrainer(
            SplitInferenceModel(lenet_bundle.model),
            lenet_bundle.train_set,
            lenet_bundle.test_set,
            **kwargs,
        )
        assert get_activation_cache().stats.hits == baseline + 2
        assert second.train_activations is first.train_activations
        np.testing.assert_array_equal(second.eval_labels, first.eval_labels)

    def test_pipelines_share_materialisation(self, lenet_bundle):
        config = Config(scale=TINY)
        ShredderPipeline(lenet_bundle, config=config)
        before = get_activation_cache().stats.hits
        ShredderPipeline(lenet_bundle, config=config)
        assert get_activation_cache().stats.hits == before + 2
