"""Tests for the split-inference runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SplitInferenceModel
from repro.errors import ModelError, TrainingError
from repro.nn import Tensor, TensorDataset, no_grad
from repro.privacy import estimate_leakage


@pytest.fixture()
def split(lenet_bundle):
    return SplitInferenceModel(lenet_bundle.model)


class TestConstruction:
    def test_default_cut_is_last_conv(self, lenet_bundle, split):
        assert split.cut == lenet_bundle.model.last_conv_cut()

    def test_explicit_cut(self, lenet_bundle):
        split = SplitInferenceModel(lenet_bundle.model, cut="conv0")
        assert split.cut == "conv0"

    def test_activation_shape_per_sample(self, split):
        assert len(split.activation_shape) == 3


class TestForwardPaths:
    def test_prediction_matches_full_model(self, lenet_bundle, split):
        images = lenet_bundle.test_set.images[:8]
        with no_grad():
            expected = lenet_bundle.model(Tensor(images)).numpy()
        np.testing.assert_allclose(split.predict(images), expected, rtol=1e-5, atol=1e-6)

    def test_zero_noise_is_identity(self, lenet_bundle, split):
        images = lenet_bundle.test_set.images[:4]
        clean = split.predict(images)
        zero = np.zeros((1, *split.activation_shape), dtype=np.float32)
        np.testing.assert_allclose(split.predict(images, zero), clean, rtol=1e-5, atol=1e-6)

    def test_noise_changes_logits(self, lenet_bundle, split, rng):
        images = lenet_bundle.test_set.images[:4]
        noise = rng.laplace(0, 5, size=(1, *split.activation_shape)).astype(np.float32)
        assert not np.allclose(split.predict(images, noise), split.predict(images))

    def test_per_sample_noise_accepted(self, lenet_bundle, split, rng):
        images = lenet_bundle.test_set.images[:4]
        noise = rng.laplace(0, 1, size=(4, *split.activation_shape)).astype(np.float32)
        out = split.predict(images, noise)
        assert out.shape == (4, 10)


class TestDatasetHelpers:
    def test_materialize_shapes(self, lenet_bundle, split):
        activations, labels = split.materialize_activations(lenet_bundle.test_set)
        assert len(activations) == len(lenet_bundle.test_set)
        assert activations.shape[1:] == split.activation_shape
        np.testing.assert_array_equal(labels, lenet_bundle.test_set.labels)

    def test_materialize_empty_rejected(self, split):
        empty = TensorDataset(np.zeros((0, 1, 28, 28), dtype=np.float32), np.zeros(0))
        with pytest.raises(TrainingError):
            split.materialize_activations(empty)

    def test_accuracy_matches_cached_path(self, lenet_bundle, split):
        direct = split.accuracy(lenet_bundle.test_set)
        activations, labels = split.materialize_activations(lenet_bundle.test_set)
        cached = split.accuracy_from_activations(activations, labels)
        assert direct == pytest.approx(cached)

    def test_accuracy_from_activations_validates_pairing(self, split, rng):
        with pytest.raises(ModelError):
            split.accuracy_from_activations(
                rng.standard_normal((4, *split.activation_shape)), np.zeros(5)
            )

    def test_huge_noise_destroys_accuracy(self, lenet_bundle, split, rng):
        activations, labels = split.materialize_activations(lenet_bundle.test_set)
        clean = split.accuracy_from_activations(activations, labels)
        wild = rng.laplace(0, 1000, size=(1, *split.activation_shape)).astype(np.float32)
        noisy = split.accuracy_from_activations(activations, labels, wild)
        assert noisy < clean


class TestInformationInvariance:
    def test_fixed_noise_is_constant_shift(self, lenet_bundle, split, rng):
        # I(x; a + c) == I(x; a) for a constant tensor c: the reason the
        # paper needs noise *sampling* (§2.5) for deployment privacy.
        activations, _ = split.materialize_activations(lenet_bundle.test_set)
        images = lenet_bundle.test_set.images
        fixed = rng.laplace(0, 3, size=(1, *split.activation_shape)).astype(np.float32)
        original = estimate_leakage(images, activations, n_components=6).mi_bits
        shifted = estimate_leakage(images, activations + fixed, n_components=6).mi_bits
        assert shifted == pytest.approx(original, abs=0.15)

    def test_per_sample_noise_reduces_information(self, lenet_bundle, split, rng):
        activations, _ = split.materialize_activations(lenet_bundle.test_set)
        images = lenet_bundle.test_set.images
        sigma = 5.0 * np.abs(activations).mean()
        per_sample = rng.laplace(0, sigma, size=activations.shape).astype(np.float32)
        original = estimate_leakage(images, activations, n_components=6).mi_bits
        noisy = estimate_leakage(images, activations + per_sample, n_components=6).mi_bits
        assert noisy < original
