"""Tests for the noise trainer — the paper's core algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstantLambda,
    DecayOnTarget,
    NoiseTensor,
    NoiseTrainer,
    ShredderLoss,
    SplitInferenceModel,
)
from repro.errors import TrainingError


@pytest.fixture()
def trainer(lenet_bundle):
    split = SplitInferenceModel(lenet_bundle.model)
    return NoiseTrainer(
        split,
        lenet_bundle.train_set,
        lenet_bundle.test_set,
        loss=ShredderLoss(1e-3),
        lr=1e-2,
        batch_size=32,
        eval_every=25,
        rng=np.random.default_rng(0),
    )


def fresh_noise(trainer, scale=1.0, seed=0):
    return NoiseTensor.from_laplace(
        trainer.split.activation_shape, np.random.default_rng(seed), scale=scale
    )


class TestTrainingDynamics:
    def test_accuracy_recovers_during_training(self, trainer):
        result = trainer.train(fresh_noise(trainer, scale=2.0), iterations=150)
        assert result.history.accuracies[-1] > result.history.accuracies[0] + 0.1

    def test_cross_entropy_decreases(self, trainer):
        result = trainer.train(fresh_noise(trainer, scale=2.0), iterations=150)
        first = np.mean(result.history.cross_entropies[:10])
        last = np.mean(result.history.cross_entropies[-10:])
        assert last < first

    def test_lambda_zero_baseline_loses_privacy(self, trainer):
        # Figure 4 (black lines): regular (privacy-agnostic) training drives
        # in vivo privacy *down* as cross entropy is minimised.
        trainer.schedule = ConstantLambda(0.0)
        result = trainer.train(fresh_noise(trainer, scale=2.0), iterations=200)
        assert result.history.in_vivo_privacies[-1] < result.history.in_vivo_privacies[0]

    def test_large_lambda_grows_privacy(self, trainer):
        # Figure 4 (orange lines): Shredder's loss pushes in vivo privacy up.
        trainer.schedule = ConstantLambda(5e-2)
        result = trainer.train(fresh_noise(trainer, scale=0.5), iterations=200)
        assert result.history.in_vivo_privacies[-1] > result.history.in_vivo_privacies[0]

    def test_decay_on_target_stabilises_privacy(self, trainer):
        trainer.schedule = DecayOnTarget(base=5e-2, target=0.6, decay=0.3)
        result = trainer.train(fresh_noise(trainer, scale=0.5), iterations=250)
        assert trainer.schedule.reached_at_step is not None
        # λ was decayed after the target was hit.
        assert result.history.lambdas[-1] < 5e-2

    def test_epochs_accounting(self, trainer):
        result = trainer.train(fresh_noise(trainer), iterations=100)
        expected = 100 * trainer.batch_size / len(trainer.train_labels)
        assert result.epochs == pytest.approx(expected)

    def test_history_lengths(self, trainer):
        result = trainer.train(fresh_noise(trainer), iterations=60)
        h = result.history
        assert len(h.iterations) == len(h.losses) == len(h.in_vivo_privacies) == 60
        assert len(h.accuracies) == len(h.accuracy_iterations)
        assert h.accuracy_iterations[-1] == 59

    def test_result_noise_is_a_copy(self, trainer):
        noise = fresh_noise(trainer)
        result = trainer.train(noise, iterations=10)
        noise.data[...] = 0.0
        assert np.abs(result.noise).sum() > 0


class TestValidation:
    def test_zero_iterations_rejected(self, trainer):
        with pytest.raises(TrainingError):
            trainer.train(fresh_noise(trainer), iterations=0)

    def test_wrong_noise_shape_rejected(self, trainer):
        bad = NoiseTensor.from_array(np.zeros((3, 2, 2), dtype=np.float32))
        with pytest.raises(TrainingError):
            trainer.train(bad, iterations=10)

    def test_signal_power_positive(self, trainer):
        assert trainer.signal_power > 0

    def test_backbone_left_frozen(self, trainer, lenet_bundle):
        trainer.train(fresh_noise(trainer), iterations=20)
        assert all(not p.requires_grad for p in lenet_bundle.model.parameters())

    def test_weights_unchanged_by_noise_training(self, trainer, lenet_bundle):
        before = {
            name: param.numpy().copy()
            for name, param in lenet_bundle.model.named_parameters()
        }
        trainer.train(fresh_noise(trainer), iterations=30)
        for name, param in lenet_bundle.model.named_parameters():
            np.testing.assert_array_equal(param.numpy(), before[name]), name


class TestStreamingEvalSubset:
    def _make_trainer(self, lenet_bundle, eval_subset):
        split = SplitInferenceModel(lenet_bundle.model)
        return NoiseTrainer(
            split,
            lenet_bundle.train_set,
            lenet_bundle.test_set,
            loss=ShredderLoss(1e-3),
            lr=1e-2,
            batch_size=32,
            eval_every=10,
            rng=np.random.default_rng(0),
            eval_subset=eval_subset,
            eval_rng=np.random.default_rng(42),
        )

    def test_trained_noise_identical_to_full_eval_run(self, lenet_bundle):
        """Subset probing must not perturb training (it only reads)."""
        full = self._make_trainer(lenet_bundle, None).train(
            fresh_noise(self._make_trainer(lenet_bundle, None)), 40
        )
        subset = self._make_trainer(lenet_bundle, 16).train(
            fresh_noise(self._make_trainer(lenet_bundle, 16)), 40
        )
        np.testing.assert_array_equal(full.noise, subset.noise)

    def test_final_accuracy_is_full_set(self, lenet_bundle):
        trainer_full = self._make_trainer(lenet_bundle, None)
        trainer_sub = self._make_trainer(lenet_bundle, 8)
        result_full = trainer_full.train(fresh_noise(trainer_full), 21)
        result_sub = trainer_sub.train(fresh_noise(trainer_sub), 21)
        assert result_sub.final_accuracy == result_full.final_accuracy

    def test_probe_schedule_unchanged(self, lenet_bundle):
        trainer = self._make_trainer(lenet_bundle, 8)
        result = trainer.train(fresh_noise(trainer), 25)
        assert result.history.accuracy_iterations == [0, 10, 20, 24]
        assert len(result.history.accuracies) == 4

    def test_subset_probes_rotate_through_eval_set(self, lenet_bundle):
        from repro.core.trainer import _StreamingEvalPlan

        n = 96
        plan = _StreamingEvalPlan(n, 8, np.random.default_rng(0))
        seen = set()
        for _ in range(n // 8):
            window = plan.indices()
            assert len(window) == 8
            seen.update(window.tolist())
        # One full rotation covers the whole eval set exactly once.
        assert len(seen) == n

    def test_train_many_matches_sequential_with_subset(self, lenet_bundle):
        trainer = self._make_trainer(lenet_bundle, 12)
        noises = [fresh_noise(trainer, seed=i) for i in range(3)]
        results = trainer.train_many(noises, 15)
        assert len(results) == 3
        for result in results:
            assert len(result.history.accuracies) == len(
                result.history.accuracy_iterations
            )

    def test_invalid_subset_rejected(self, lenet_bundle):
        trainer = self._make_trainer(lenet_bundle, 0)
        with pytest.raises(TrainingError):
            trainer.train(fresh_noise(trainer), 11)
