"""Tests for the Shredder loss (Eq. 2 / Eq. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NoiseTensor, ShredderLoss
from repro.errors import ConfigurationError
from repro.nn import Tensor


@pytest.fixture()
def logits_and_targets(rng):
    logits = Tensor(rng.standard_normal((8, 5)).astype(np.float32), requires_grad=True)
    targets = rng.integers(0, 5, size=8)
    return logits, targets


class TestEq3L1Variant:
    def test_total_is_ce_minus_lambda_l1(self, logits_and_targets, rng):
        logits, targets = logits_and_targets
        noise = NoiseTensor.from_laplace((2, 3, 3), rng)
        loss = ShredderLoss(lambda_coeff=0.01)
        total, parts = loss(logits, targets, noise)
        assert parts.total == pytest.approx(
            parts.cross_entropy - 0.01 * parts.privacy_term, rel=1e-5
        )
        assert parts.privacy_term == pytest.approx(noise.magnitude_l1(), rel=1e-5)

    def test_lambda_zero_is_pure_cross_entropy(self, logits_and_targets, rng):
        logits, targets = logits_and_targets
        noise = NoiseTensor.from_laplace((2, 3, 3), rng)
        total, parts = ShredderLoss(0.0)(logits, targets, noise)
        assert parts.total == pytest.approx(parts.cross_entropy)

    def test_gradient_grows_noise_magnitude(self, logits_and_targets, rng):
        # The "anti weight decay" property: with no CE pressure the update
        # direction is -λ·sign(n) on the loss, so a gradient step makes
        # positive entries bigger and negative entries smaller (paper §2.4).
        logits, targets = logits_and_targets
        noise = NoiseTensor.from_laplace((2, 3, 3), rng, scale=1.0)
        loss = ShredderLoss(lambda_coeff=1.0)
        total, _ = loss(logits.detach(), targets, noise)  # CE has no noise path
        total.backward()
        np.testing.assert_allclose(noise.grad, -np.sign(noise.numpy()), rtol=1e-5)

    def test_larger_noise_lowers_loss(self, logits_and_targets, rng):
        logits, targets = logits_and_targets
        small = NoiseTensor.from_array(np.full((2, 2), 0.5))
        large = NoiseTensor.from_array(np.full((2, 2), 5.0))
        loss = ShredderLoss(lambda_coeff=0.1)
        total_small, _ = loss(logits, targets, small)
        total_large, _ = loss(logits, targets, large)
        assert total_large.item() < total_small.item()


class TestEq2InverseVarianceVariant:
    def test_total_is_ce_plus_lambda_inverse_variance(self, logits_and_targets, rng):
        logits, targets = logits_and_targets
        noise = NoiseTensor.from_laplace((2, 3, 3), rng)
        loss = ShredderLoss(lambda_coeff=0.01, variant="inverse_variance")
        total, parts = loss(logits, targets, noise)
        assert parts.privacy_term == pytest.approx(1.0 / noise.variance(), rel=1e-3)
        assert parts.total == pytest.approx(
            parts.cross_entropy + 0.01 * parts.privacy_term, rel=1e-4
        )

    def test_higher_variance_lowers_privacy_term(self, logits_and_targets, rng):
        logits, targets = logits_and_targets
        loss = ShredderLoss(0.01, variant="inverse_variance")
        _, narrow = loss(logits, targets, NoiseTensor.from_laplace((4, 4, 4), rng, scale=0.5))
        _, wide = loss(logits, targets, NoiseTensor.from_laplace((4, 4, 4), rng, scale=3.0))
        assert wide.privacy_term < narrow.privacy_term

    def test_gradient_increases_variance(self, logits_and_targets, rng):
        logits, targets = logits_and_targets
        noise = NoiseTensor.from_laplace((4, 4, 4), rng, scale=1.0)
        loss = ShredderLoss(1.0, variant="inverse_variance")
        before = noise.variance()
        total, _ = loss(logits.detach(), targets, noise)
        total.backward()
        noise.data -= 0.1 * noise.grad  # one SGD step
        assert noise.variance() > before


class TestValidation:
    def test_negative_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            ShredderLoss(-0.1)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            ShredderLoss(0.1, variant="l2")

    def test_with_lambda_copies(self):
        loss = ShredderLoss(0.1, variant="l1")
        other = loss.with_lambda(0.05)
        assert other.lambda_coeff == 0.05
        assert other.variant == "l1"
        assert loss.lambda_coeff == 0.1
