"""Tests for λ schedules."""

from __future__ import annotations

import pytest

from repro.core import ConstantLambda, DecayOnTarget
from repro.errors import ConfigurationError


class TestConstantLambda:
    def test_always_same(self):
        schedule = ConstantLambda(0.01)
        assert schedule.coefficient(0, 0.0) == 0.01
        assert schedule.coefficient(1000, 99.0) == 0.01

    def test_zero_allowed(self):
        assert ConstantLambda(0.0).coefficient(5, 1.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantLambda(-1.0)


class TestDecayOnTarget:
    def test_holds_base_below_target(self):
        schedule = DecayOnTarget(base=0.01, target=0.5, decay=0.5)
        assert schedule.coefficient(0, 0.1) == 0.01
        assert schedule.coefficient(1, 0.49) == 0.01
        assert schedule.reached_at_step is None

    def test_decays_once_target_reached(self):
        schedule = DecayOnTarget(base=0.01, target=0.5, decay=0.5)
        assert schedule.coefficient(10, 0.6) == pytest.approx(0.005)
        assert schedule.reached_at_step == 10

    def test_keeps_decaying_while_above_target(self):
        schedule = DecayOnTarget(base=0.01, target=0.5, decay=0.5)
        schedule.coefficient(1, 0.6)
        schedule.coefficient(2, 0.7)
        assert schedule.coefficient(3, 0.8) == pytest.approx(0.00125)

    def test_stops_decaying_below_target_again(self):
        schedule = DecayOnTarget(base=0.01, target=0.5, decay=0.5)
        schedule.coefficient(1, 0.6)
        assert schedule.coefficient(2, 0.3) == pytest.approx(0.005)

    def test_floor(self):
        schedule = DecayOnTarget(base=0.01, target=0.5, decay=0.1, floor=0.004)
        schedule.coefficient(1, 0.9)
        schedule.coefficient(2, 0.9)
        assert schedule.coefficient(3, 0.9) == pytest.approx(0.004)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base=-0.1, target=0.5),
            dict(base=0.1, target=0.0),
            dict(base=0.1, target=0.5, decay=0.0),
            dict(base=0.1, target=0.5, decay=1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            DecayOnTarget(**kwargs)
