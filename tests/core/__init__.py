"""Test package."""
