"""Tests for the trainable noise tensor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NoiseTensor
from repro.errors import ConfigurationError


class TestLaplaceInit:
    def test_shape_has_broadcast_dim(self, rng):
        noise = NoiseTensor.from_laplace((4, 5, 5), rng)
        assert noise.shape == (1, 4, 5, 5)

    def test_location_parameter(self, rng):
        noise = NoiseTensor.from_laplace((64, 8, 8), rng, loc=3.0, scale=0.5)
        assert noise.numpy().mean() == pytest.approx(3.0, abs=0.1)

    def test_scale_parameter_controls_spread(self, rng):
        small = NoiseTensor.from_laplace((64, 8, 8), rng, scale=0.5)
        large = NoiseTensor.from_laplace((64, 8, 8), rng, scale=4.0)
        assert large.numpy().std() > small.numpy().std() * 3

    def test_laplace_variance(self, rng):
        # Var[Laplace(0, b)] = 2 b^2.
        b = 1.5
        noise = NoiseTensor.from_laplace((32, 16, 16), rng, scale=b)
        assert noise.variance() == pytest.approx(2 * b * b, rel=0.1)

    def test_requires_grad(self, rng):
        assert NoiseTensor.from_laplace((2, 3, 3), rng).requires_grad

    def test_invalid_shape(self, rng):
        with pytest.raises(ConfigurationError):
            NoiseTensor.from_laplace((0, 3, 3), rng)

    def test_invalid_scale(self, rng):
        with pytest.raises(ConfigurationError):
            NoiseTensor.from_laplace((2, 3, 3), rng, scale=0.0)


class TestFromArray:
    def test_adds_batch_dim(self):
        noise = NoiseTensor.from_array(np.zeros((2, 3, 3)))
        assert noise.shape == (1, 2, 3, 3)

    def test_keeps_existing_batch_dim(self):
        noise = NoiseTensor.from_array(np.zeros((1, 2, 3, 3)))
        assert noise.shape == (1, 2, 3, 3)

    def test_per_sample_strips_batch(self):
        noise = NoiseTensor.from_array(np.ones((2, 3, 3)))
        assert noise.per_sample.shape == (2, 3, 3)


class TestStatistics:
    def test_magnitude_l1(self):
        noise = NoiseTensor.from_array(np.array([[1.0, -2.0], [0.5, 0.0]]))
        assert noise.magnitude_l1() == pytest.approx(3.5)

    def test_variance_zero_for_constant(self):
        assert NoiseTensor.from_array(np.full((4, 4), 2.0)).variance() == 0.0

    def test_broadcast_addition_over_batch(self, rng):
        from repro.nn import Tensor

        noise = NoiseTensor.from_laplace((2, 3, 3), rng)
        batch = Tensor(np.zeros((5, 2, 3, 3), dtype=np.float32))
        out = batch + noise
        assert out.shape == (5, 2, 3, 3)
        np.testing.assert_allclose(out.numpy()[0], noise.per_sample)
        np.testing.assert_allclose(out.numpy()[4], noise.per_sample)

    def test_gradient_sums_over_batch(self, rng):
        from repro.nn import Tensor

        noise = NoiseTensor.from_laplace((1, 2, 2), rng)
        batch = Tensor(np.ones((7, 1, 2, 2), dtype=np.float32))
        (batch + noise).sum().backward()
        np.testing.assert_allclose(noise.grad, np.full((1, 1, 2, 2), 7.0))
