"""Tests for the parametric noise-distribution fit (§2.5, parametric reading)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FittedNoiseDistribution, NoiseCollection
from repro.errors import ConfigurationError, TrainingError


def make_collection(rng, n_members=6, shape=(2, 3, 3), loc=1.5, scale=0.4):
    collection = NoiseCollection(shape)
    for _ in range(n_members):
        tensor = rng.laplace(loc, scale, size=shape).astype(np.float32)
        collection.add(tensor, accuracy=0.9, in_vivo_privacy=0.5)
    return collection


@pytest.fixture()
def collection(rng):
    return make_collection(rng)


class TestFit:
    def test_laplace_fit_shape(self, collection):
        fit = FittedNoiseDistribution.fit(collection)
        assert fit.shape == (2, 3, 3)
        assert fit.family == "laplace"
        assert fit.n_members == 6

    def test_gaussian_fit_shape(self, collection):
        fit = FittedNoiseDistribution.fit(collection, family="gaussian")
        assert fit.family == "gaussian"
        assert fit.scale.shape == (2, 3, 3)

    def test_fit_recovers_location(self, rng):
        collection = make_collection(rng, n_members=200, loc=2.0, scale=0.1)
        fit = FittedNoiseDistribution.fit(collection)
        assert abs(float(fit.location.mean()) - 2.0) < 0.1

    def test_fit_recovers_scale(self, rng):
        collection = make_collection(rng, n_members=400, loc=0.0, scale=0.5)
        fit = FittedNoiseDistribution.fit(collection)
        assert abs(float(fit.scale.mean()) - 0.5) < 0.1

    def test_gaussian_fit_matches_moments(self, rng):
        shape = (4, 4)
        collection = NoiseCollection(shape)
        stacked = rng.normal(1.0, 2.0, size=(300, *shape)).astype(np.float32)
        for member in stacked:
            collection.add(member, 0.9, 0.5)
        fit = FittedNoiseDistribution.fit(collection, family="gaussian")
        np.testing.assert_allclose(fit.location, stacked.mean(axis=0), atol=1e-4)
        np.testing.assert_allclose(fit.scale, stacked.std(axis=0), atol=1e-4)

    def test_single_member_rejected(self, rng):
        collection = make_collection(rng, n_members=1)
        with pytest.raises(TrainingError):
            FittedNoiseDistribution.fit(collection)

    def test_unknown_family_rejected(self, collection):
        with pytest.raises(ConfigurationError):
            FittedNoiseDistribution.fit(collection, family="cauchy")

    def test_constructor_validates_shapes(self):
        with pytest.raises(ConfigurationError):
            FittedNoiseDistribution(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_constructor_rejects_negative_scale(self):
        with pytest.raises(ConfigurationError):
            FittedNoiseDistribution(np.zeros((2, 2)), -np.ones((2, 2)))


class TestSampling:
    def test_sample_shape(self, collection):
        fit = FittedNoiseDistribution.fit(collection)
        draw = fit.sample(np.random.default_rng(0))
        assert draw.shape == (1, 2, 3, 3)
        assert draw.dtype == np.float32

    def test_sample_batch_shape(self, collection):
        fit = FittedNoiseDistribution.fit(collection)
        draws = fit.sample_batch(np.random.default_rng(0), 16)
        assert draws.shape == (16, 2, 3, 3)

    def test_samples_are_fresh(self, collection):
        """Fresh draws should not coincide with any stored member."""
        fit = FittedNoiseDistribution.fit(collection)
        draws = fit.sample_batch(np.random.default_rng(0), 8)
        members = [s.tensor for s in collection.samples]
        for i in range(8):
            assert not any(np.array_equal(draws[i], m) for m in members)

    def test_zero_scale_degenerates_to_location(self):
        location = np.full((2, 2), 3.0, dtype=np.float32)
        fit = FittedNoiseDistribution(location, np.zeros((2, 2)))
        draws = fit.sample_batch(np.random.default_rng(0), 4)
        np.testing.assert_allclose(draws, 3.0, atol=1e-5)

    def test_nonpositive_count_rejected(self, collection):
        fit = FittedNoiseDistribution.fit(collection)
        with pytest.raises(ConfigurationError):
            fit.sample_batch(np.random.default_rng(0), 0)

    def test_sampled_spread_tracks_fit_scale(self, rng):
        collection = make_collection(rng, n_members=100, loc=0.0, scale=1.0)
        fit = FittedNoiseDistribution.fit(collection)
        draws = fit.sample_batch(np.random.default_rng(1), 2000)
        implied_std = float(np.sqrt(fit.element_variance().mean()))
        assert abs(draws.std() - implied_std) / implied_std < 0.15


class TestStatistics:
    def test_element_variance_laplace(self):
        fit = FittedNoiseDistribution(np.zeros((2,)), np.full((2,), 2.0))
        np.testing.assert_allclose(fit.element_variance(), 8.0)

    def test_element_variance_gaussian(self):
        fit = FittedNoiseDistribution(
            np.zeros((2,)), np.full((2,), 2.0), family="gaussian"
        )
        np.testing.assert_allclose(fit.element_variance(), 4.0)

    def test_summary_fields(self, collection):
        summary = FittedNoiseDistribution.fit(collection).summary()
        assert summary.family == "laplace"
        assert summary.n_members == 6
        assert summary.mean_scale > 0
        assert summary.mean_abs_location > 0


class TestPersistence:
    def test_roundtrip(self, collection, tmp_path):
        fit = FittedNoiseDistribution.fit(collection, family="gaussian")
        path = fit.save(tmp_path / "fit.npz")
        loaded = FittedNoiseDistribution.load(path)
        np.testing.assert_allclose(loaded.location, fit.location)
        np.testing.assert_allclose(loaded.scale, fit.scale)
        assert loaded.family == "gaussian"
        assert loaded.n_members == fit.n_members

    def test_load_missing_path(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FittedNoiseDistribution.load(tmp_path / "absent.npz")

    def test_save_appends_npz_suffix(self, collection, tmp_path):
        fit = FittedNoiseDistribution.fit(collection)
        path = fit.save(tmp_path / "fit")
        assert path.name.endswith(".npz")


class TestProperties:
    @given(
        loc=st.floats(-3.0, 3.0),
        scale=st.floats(0.05, 2.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_fit_location_bounded_by_member_range(self, loc, scale, seed):
        rng = np.random.default_rng(seed)
        collection = make_collection(rng, n_members=5, shape=(3, 3), loc=loc, scale=scale)
        fit = FittedNoiseDistribution.fit(collection)
        stacked = np.stack([s.tensor for s in collection.samples])
        assert np.all(fit.location >= stacked.min(axis=0) - 1e-6)
        assert np.all(fit.location <= stacked.max(axis=0) + 1e-6)
        assert np.all(fit.scale >= 0)

    @given(seed=st.integers(0, 2**16), family=st.sampled_from(["laplace", "gaussian"]))
    @settings(max_examples=20, deadline=None)
    def test_sampling_is_deterministic_per_seed(self, seed, family):
        rng = np.random.default_rng(7)
        collection = make_collection(rng, n_members=4, shape=(2, 2))
        fit = FittedNoiseDistribution.fit(collection, family=family)
        a = fit.sample_batch(np.random.default_rng(seed), 3)
        b = fit.sample_batch(np.random.default_rng(seed), 3)
        np.testing.assert_array_equal(a, b)
