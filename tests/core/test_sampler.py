"""Tests for the noise collection (paper §2.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NoiseCollection, NoiseSample, collect_noise_distribution
from repro.errors import ConfigurationError, TrainingError


@pytest.fixture()
def collection(rng):
    collection = NoiseCollection((2, 3, 3))
    for i in range(4):
        collection.add(
            rng.laplace(0, 1 + i, size=(2, 3, 3)).astype(np.float32),
            accuracy=0.9 - 0.01 * i,
            in_vivo_privacy=0.5 + 0.05 * i,
        )
    return collection


class TestBuilding:
    def test_length(self, collection):
        assert len(collection) == 4

    def test_add_strips_batch_dim(self, rng):
        c = NoiseCollection((2, 2, 2))
        c.add(np.zeros((1, 2, 2, 2)), 0.9, 0.5)
        assert c.samples[0].tensor.shape == (2, 2, 2)

    def test_wrong_shape_rejected(self, rng):
        c = NoiseCollection((2, 2, 2))
        with pytest.raises(ConfigurationError):
            c.add(np.zeros((3, 2, 2)), 0.9, 0.5)

    def test_add_copies(self, rng):
        c = NoiseCollection((2, 2))
        source = np.ones((2, 2), dtype=np.float32)
        c.add(source, 0.9, 0.5)
        source[...] = 7.0
        np.testing.assert_allclose(c.samples[0].tensor, 1.0)


class TestSampling:
    def test_sample_returns_member_with_batch_dim(self, collection):
        draw = collection.sample(np.random.default_rng(0))
        assert draw.shape == (1, 2, 3, 3)
        members = [s.tensor for s in collection.samples]
        assert any(np.array_equal(draw[0], m) for m in members)

    def test_sample_batch_shape(self, collection):
        draws = collection.sample_batch(np.random.default_rng(0), 10)
        assert draws.shape == (10, 2, 3, 3)

    def test_sample_batch_uses_multiple_members(self, collection):
        draws = collection.sample_batch(np.random.default_rng(0), 50)
        unique = {draws[i].tobytes() for i in range(50)}
        assert len(unique) > 1

    def test_sampling_deterministic_given_rng(self, collection):
        a = collection.sample_batch(np.random.default_rng(7), 5)
        b = collection.sample_batch(np.random.default_rng(7), 5)
        np.testing.assert_array_equal(a, b)

    def test_empty_collection_rejects_sampling(self):
        empty = NoiseCollection((2, 2))
        with pytest.raises(TrainingError):
            empty.sample(np.random.default_rng(0))
        with pytest.raises(TrainingError):
            empty.sample_batch(np.random.default_rng(0), 3)

    def test_elementwise_sampling_shape(self, collection):
        draw = collection.sample_elementwise(np.random.default_rng(0))
        assert draw.shape == (1, 2, 3, 3)

    def test_elementwise_needs_two_members(self):
        c = NoiseCollection((2, 2))
        c.add(np.zeros((2, 2)), 0.9, 0.5)
        with pytest.raises(TrainingError):
            c.sample_elementwise(np.random.default_rng(0))

    def test_elementwise_values_come_from_members(self, collection):
        draw = collection.sample_elementwise(np.random.default_rng(0))[0]
        stacked = np.stack([s.tensor for s in collection.samples])
        for index in np.ndindex(*draw.shape):
            member_values = stacked[(slice(None),) + index]
            assert draw[index] in member_values


class TestStatistics:
    def test_mean_accuracy(self, collection):
        assert collection.mean_accuracy() == pytest.approx(0.885)

    def test_mean_privacy(self, collection):
        assert collection.mean_in_vivo_privacy() == pytest.approx(0.575)

    def test_empty_statistics_rejected(self):
        with pytest.raises(TrainingError):
            NoiseCollection((2,)).mean_accuracy()


class TestPersistence:
    def test_roundtrip(self, collection, tmp_path):
        path = collection.save(tmp_path / "noise.npz")
        loaded = NoiseCollection.load(path)
        assert len(loaded) == len(collection)
        np.testing.assert_allclose(
            loaded.samples[0].tensor, collection.samples[0].tensor
        )
        assert loaded.samples[2].accuracy == pytest.approx(0.88)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            NoiseCollection.load(tmp_path / "missing.npz")

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(TrainingError):
            NoiseCollection((2,)).save(tmp_path / "x.npz")


class TestCollectHelper:
    def test_builds_n_members(self, rng):
        def train_one(index: int) -> NoiseSample:
            return NoiseSample(
                tensor=np.full((1, 2, 2), float(index), dtype=np.float32),
                accuracy=0.9,
                in_vivo_privacy=0.4,
            )

        collection = collect_noise_distribution(train_one, n_members=3)
        assert len(collection) == 3
        np.testing.assert_allclose(collection.samples[2].tensor, 2.0)

    def test_requires_positive_members(self):
        with pytest.raises(ConfigurationError):
            collect_noise_distribution(lambda i: None, n_members=0)


class TestSampleSplits:
    """The serving runtime's draw-parity contract."""

    @pytest.fixture()
    def collection(self, rng):
        collection = NoiseCollection((2, 3))
        for _ in range(5):
            collection.add(rng.normal(size=(2, 3)).astype(np.float32), 0.8, 0.1)
        return collection

    def test_matches_consecutive_sample_batch_calls(self, collection):
        """One vectorised draw must equal per-request draws — this is what
        makes batched serving bit-identical to the sequential path."""
        splits = [1, 3, 2, 1, 4]
        vectorised = collection.sample_splits(np.random.default_rng(99), splits)
        rng = np.random.default_rng(99)
        sequential = np.concatenate(
            [collection.sample_batch(rng, rows) for rows in splits]
        )
        np.testing.assert_array_equal(vectorised, sequential)

    def test_total_rows(self, collection):
        out = collection.sample_splits(np.random.default_rng(0), [2, 1, 3])
        assert out.shape == (6, 2, 3)

    def test_empty_collection_rejected(self):
        with pytest.raises(TrainingError):
            NoiseCollection((2,)).sample_splits(np.random.default_rng(0), [1])


class TestNoiseStream:
    """The serving dispatcher's explicit single-owner generator handoff."""

    @pytest.fixture()
    def collection(self, rng):
        collection = NoiseCollection((2, 3))
        for _ in range(5):
            collection.add(rng.normal(size=(2, 3)).astype(np.float32), 0.8, 0.1)
        return collection

    def test_stream_draws_match_bare_generator(self, collection):
        """Wrapping the generator must not change a single draw — the
        stream is bookkeeping, not a different bit source."""
        from repro.core import NoiseStream

        bare = collection.sample_splits(np.random.default_rng(42), [2, 1, 3])
        streamed = collection.sample_splits(
            NoiseStream(np.random.default_rng(42)), [2, 1, 3]
        )
        np.testing.assert_array_equal(bare, streamed)

    def test_draw_accounting(self, collection):
        from repro.core import NoiseStream

        stream = NoiseStream(np.random.default_rng(0))
        collection.sample_splits(stream, [2, 1])
        collection.sample_batch(stream, 4)
        collection.sample(stream)
        assert stream.draws == 2 + 1 + 4 + 1

    def test_second_thread_draw_rejected(self, collection):
        """Concurrent micro-batches must not interleave the bit stream:
        only the owning (dispatcher) thread may draw."""
        import threading

        from repro.core import NoiseStream

        stream = NoiseStream(np.random.default_rng(0))
        collection.sample_batch(stream, 1)  # this thread now owns it
        failures = []

        def foreign_draw():
            try:
                collection.sample_batch(stream, 1)
            except ConfigurationError as exc:
                failures.append(exc)

        thread = threading.Thread(target=foreign_draw)
        thread.start()
        thread.join()
        assert len(failures) == 1
        assert "single generator owner" in str(failures[0])

    def test_release_hands_ownership_over(self, collection):
        import threading

        from repro.core import NoiseStream

        stream = NoiseStream(np.random.default_rng(0))
        collection.sample_batch(stream, 1)
        stream.release()
        outcome = []

        def new_owner():
            outcome.append(collection.sample_batch(stream, 1))

        thread = threading.Thread(target=new_owner)
        thread.start()
        thread.join()
        assert len(outcome) == 1  # the new thread drew without error

    def test_seed_constructor(self):
        from repro.core import NoiseStream

        a = NoiseStream(7).acquire()
        b = np.random.default_rng(7)
        assert a.integers(0, 100) == b.integers(0, 100)
