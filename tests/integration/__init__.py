"""Test package."""
