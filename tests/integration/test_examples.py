"""The example scripts must at least compile; the fast ones must run."""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize(
    "script,args",
    [
        ("quickstart.py", ["tiny"]),
        ("cutting_point_selection.py", ["lenet", "tiny"]),
        ("batched_serving.py", ["tiny"]),
        ("multi_model_serving.py", ["tiny"]),
        ("sharded_serving.py", ["tiny"]),
        ("quantized_serving.py", ["tiny"]),
    ],
)
def test_example_runs(tmp_path, script, args):
    path = Path(__file__).parents[2] / "examples" / script
    result = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env={
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": str(Path(__file__).parents[2] / "src"),
            "REPRO_CACHE_DIR": str(tmp_path),
            "REPRO_SCALE": "tiny",
            "HOME": str(tmp_path),
        },
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
