"""Integration tests for the deployment extensions.

Fitted-distribution sampling and wire quantisation, exercised through the
real pipeline on a trained tiny LeNet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import FittedNoiseDistribution
from repro.edge import calibrate, dequantize, quantize, wire_bytes
from repro.eval import build_pipeline, get_benchmark


@pytest.fixture(scope="module")
def system(lenet_bundle):
    config = Config(scale=TINY)
    benchmark = get_benchmark("lenet")
    pipeline = build_pipeline(lenet_bundle, benchmark, config)
    collection = pipeline.collect(4, iterations=250)
    return config, pipeline, collection


class TestFittedDistributionThroughPipeline:
    def test_fit_shape_matches_cut(self, system):
        _, pipeline, collection = system
        fitted = FittedNoiseDistribution.fit(collection)
        assert fitted.shape == pipeline.split.activation_shape

    def test_noisy_accuracy_accepts_fitted(self, system):
        _, pipeline, collection = system
        fitted = FittedNoiseDistribution.fit(collection)
        accuracy = pipeline.noisy_accuracy(fitted)
        assert 0.0 <= accuracy <= 1.0

    def test_measure_leakage_accepts_fitted(self, system):
        _, pipeline, collection = system
        fitted = FittedNoiseDistribution.fit(collection)
        original = pipeline.measure_leakage(None)
        shredded = pipeline.measure_leakage(fitted)
        # Fresh per-inference draws realise a noisy channel: leakage must
        # drop relative to the clean activation.
        assert shredded.mi_bits < original.mi_bits

    def test_fitted_location_tracks_members(self, system):
        _, _, collection = system
        fitted = FittedNoiseDistribution.fit(collection)
        stacked = np.stack([s.tensor for s in collection.samples])
        assert np.all(fitted.location >= stacked.min(axis=0) - 1e-6)
        assert np.all(fitted.location <= stacked.max(axis=0) + 1e-6)


class TestQuantizedWireThroughPipeline:
    def test_int8_wire_accuracy_close_to_float(self, system):
        config, pipeline, collection = system
        rng = np.random.default_rng(config.child_seed("quant-int8"))
        activations = pipeline.trainer.eval_activations
        labels = pipeline.trainer.eval_labels
        noisy = activations + collection.sample_batch(rng, len(activations))
        params = calibrate(noisy, bits=8, percentile=99.9)
        decoded = dequantize(quantize(noisy, params), params)
        float_acc = pipeline.split.accuracy_from_activations(noisy, labels)
        wire_acc = pipeline.split.accuracy_from_activations(decoded, labels)
        assert abs(wire_acc - float_acc) < 0.03

    def test_int8_wire_is_4x_smaller(self, system):
        _, pipeline, collection = system
        shape = pipeline.split.activation_shape
        params = calibrate(np.zeros((1, *shape)) + 1.0, bits=8)
        assert wire_bytes(shape, params) * 4 == int(np.prod(shape)) * 4

    def test_round_trip_error_below_noise_floor(self, system):
        config, pipeline, collection = system
        rng = np.random.default_rng(config.child_seed("quant-floor"))
        activations = pipeline.trainer.eval_activations
        noisy = activations + collection.sample_batch(rng, len(activations))
        params = calibrate(noisy, bits=8, percentile=99.9)
        decoded = dequantize(quantize(noisy, params), params)
        quant_rms = float(np.sqrt(np.mean((decoded - noisy) ** 2)))
        noise_rms = float(
            np.sqrt(np.mean(np.stack([s.tensor for s in collection.samples]) ** 2))
        )
        # Quantisation distortion is far below the injected noise itself.
        assert quant_rms < 0.1 * noise_rms
