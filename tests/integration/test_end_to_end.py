"""Whole-system integration tests: backbone -> noise -> deployment -> MI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.core import NoiseCollection
from repro.edge import Channel, InferenceSession
from repro.eval import build_pipeline, get_benchmark
from repro.privacy import estimate_leakage


@pytest.fixture(scope="module")
def system(lenet_bundle):
    """One trained Shredder system shared by the module."""
    config = Config(scale=TINY)
    benchmark = get_benchmark("lenet")
    pipeline = build_pipeline(lenet_bundle, benchmark, config)
    collection = pipeline.collect(4, iterations=300)
    return config, pipeline, collection


class TestFullStory:
    def test_accuracy_survives_deployment(self, lenet_bundle, system):
        config, pipeline, collection = system
        session = InferenceSession(
            lenet_bundle.model,
            cut=pipeline.split.cut,
            mean=np.zeros(1, dtype=np.float32),
            std=np.ones(1, dtype=np.float32),
            noise=collection,
            channel=Channel(rng=np.random.default_rng(0)),
            rng=np.random.default_rng(0),
        )
        images = lenet_bundle.test_set.images
        labels = lenet_bundle.test_set.labels
        predictions = session.classify(images)
        accuracy = (predictions == labels).mean()
        assert accuracy > lenet_bundle.test_accuracy - 0.15

    def test_wire_leaks_less_information(self, lenet_bundle, system):
        config, pipeline, collection = system
        activations = pipeline.trainer.eval_activations
        rng = np.random.default_rng(0)
        noisy = activations + collection.sample_batch(rng, len(activations))
        images = lenet_bundle.test_set.images
        clean_mi = estimate_leakage(images, activations, n_components=6).mi_bits
        wire_mi = estimate_leakage(images, noisy, n_components=6).mi_bits
        assert wire_mi < clean_mi * 0.8

    def test_collection_roundtrips_through_disk(self, system, tmp_path):
        _, pipeline, collection = system
        path = collection.save(tmp_path / "noise.npz")
        loaded = NoiseCollection.load(path)
        assert len(loaded) == len(collection)
        acc_before = pipeline.noisy_accuracy(collection)
        acc_after = pipeline.noisy_accuracy(loaded)
        assert acc_after == pytest.approx(acc_before, abs=1e-6)

    def test_members_meet_quality_bar(self, system):
        _, pipeline, collection = system
        clean = pipeline.clean_accuracy()
        for sample in collection.samples:
            assert sample.accuracy > clean - 0.25
            assert sample.in_vivo_privacy > 0.05

    def test_report_tradeoff_shape(self, system):
        _, pipeline, collection = system
        report = pipeline.report(collection)
        assert report.mi_loss_percent > 20.0
        assert report.accuracy_loss_percent < 15.0
