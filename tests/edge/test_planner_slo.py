"""SLO-aware batching-window planning and planner invariants.

Golden-value and invariant tests for the cost model's batch axis feeding
the serving engine: :func:`repro.edge.plan_batch_window` must pick the
largest window meeting the target SLO under its own latency model, and
:class:`repro.edge.CuttingPointPlanner` recommendations must never violate
the cost model's invariants (frontier membership, budget, dominance).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import (
    BYTES_PER_ELEMENT,
    Channel,
    CuttingPointPlanner,
    batch_frame_overhead,
    batched_cut_cost,
    cut_cost,
    plan_batch_window,
    predict_window_latency,
)
from repro.errors import ConfigurationError, ModelError
from repro.models import build_model

RATE = 1000.0  # requests per second
SERVICE = 1e-4  # seconds per stacked sample


@pytest.fixture(scope="module")
def lenet():
    return build_model("lenet", np.random.default_rng(0), width=0.5).eval()


@pytest.fixture(scope="module")
def svhn():
    return build_model("svhn", np.random.default_rng(0), width=0.5).eval()


def _latency(model, cut, window, **overrides):
    kwargs = dict(
        arrival_rate_rps=RATE, service_seconds_per_sample=SERVICE
    )
    kwargs.update(overrides)
    return predict_window_latency(model, cut, window, **kwargs)


class TestPredictedLatency:
    def test_golden_components_at_window_one(self, lenet):
        cut = lenet.last_conv_cut()
        channel = Channel(bandwidth_mbps=100.0, latency_ms=10.0)
        total, fill, wire, compute = _latency(
            lenet, cut, 1, channel=channel
        )
        assert fill == 0.0
        assert compute == SERVICE
        payload = cut_cost(lenet, cut).megabytes * 1e6
        uplink = payload + batch_frame_overhead(1, ndim=4)
        downlink = 10 * BYTES_PER_ELEMENT + batch_frame_overhead(1, ndim=2)
        expected_wire = channel.transfer_seconds(
            int(uplink)
        ) + channel.transfer_seconds(int(downlink))
        assert wire == pytest.approx(expected_wire)
        assert total == pytest.approx(fill + wire + compute)

    def test_fill_wait_is_window_minus_one_arrivals(self, lenet):
        cut = lenet.last_conv_cut()
        for window in (1, 2, 8, 32):
            _, fill, _, _ = _latency(lenet, cut, window)
            assert fill == pytest.approx((window - 1) / RATE)

    @pytest.mark.parametrize("cut_index", [0, -1])
    def test_latency_monotone_in_window(self, svhn, cut_index):
        """The planner's maximality argument rests on this: worst-case
        latency never improves as the window grows."""
        cut = svhn.cut_names()[cut_index]
        totals = [_latency(svhn, cut, w)[0] for w in range(1, 33)]
        assert all(a <= b + 1e-15 for a, b in zip(totals, totals[1:]))

    def test_invalid_arguments(self, lenet):
        cut = lenet.last_conv_cut()
        with pytest.raises(ConfigurationError):
            _latency(lenet, cut, 0)
        with pytest.raises(ConfigurationError):
            _latency(lenet, cut, 1, arrival_rate_rps=0.0)
        with pytest.raises(ConfigurationError):
            _latency(lenet, cut, 1, service_seconds_per_sample=-1.0)


class TestPlanBatchWindow:
    def _plan(self, model, cut, slo, **overrides):
        kwargs = dict(
            target_slo_seconds=slo,
            arrival_rate_rps=RATE,
            service_seconds_per_sample=SERVICE,
        )
        kwargs.update(overrides)
        return plan_batch_window(model, cut, **kwargs)

    def test_plan_meets_slo_and_is_maximal(self, lenet):
        cut = lenet.last_conv_cut()
        slo = 0.020
        channel = Channel(bandwidth_mbps=100.0, latency_ms=1.0)
        plan = self._plan(lenet, cut, slo, channel=channel)
        assert plan.feasible
        assert plan.predicted_latency_seconds <= slo
        assert 1 < plan.window < 64  # the SLO binds strictly inside range
        beyond = _latency(lenet, cut, plan.window + 1, channel=channel)[0]
        assert beyond > slo

    def test_loose_slo_hits_max_window(self, lenet):
        plan = self._plan(lenet, lenet.last_conv_cut(), 10.0, max_window=16)
        assert plan.feasible
        assert plan.window == 16

    def test_impossible_slo_falls_back_to_one(self, lenet):
        plan = self._plan(lenet, lenet.last_conv_cut(), 1e-9)
        assert not plan.feasible
        assert plan.window == 1
        assert plan.predicted_latency_seconds > 1e-9

    def test_per_request_wire_bytes_amortised(self, lenet):
        """The plan's wire bytes must match the batched cost model at the
        chosen window — the header amortisation the planner trades
        against latency."""
        cut = lenet.last_conv_cut()
        plan = self._plan(lenet, cut, 0.050)
        expected = batched_cut_cost(lenet, cut, batch_size=plan.window)
        assert plan.per_request_wire_bytes == pytest.approx(
            expected.wire_bytes
        )
        smaller = batched_cut_cost(
            lenet, cut, batch_size=max(1, plan.window - 1)
        )
        if plan.window > 1:
            assert plan.per_request_wire_bytes < smaller.wire_bytes

    def test_quantised_wire_allows_larger_windows_on_slow_links(self, lenet):
        """On a bandwidth-bound link a smaller payload buys window room."""
        cut = lenet.last_conv_cut()
        slow = Channel(bandwidth_mbps=1.0, latency_ms=1.0)
        fp32 = self._plan(lenet, cut, 0.5, channel=slow)
        quant = self._plan(
            lenet, cut, 0.5, channel=slow, bytes_per_element=1.0
        )
        assert quant.window >= fp32.window
        assert quant.per_request_wire_bytes < fp32.per_request_wire_bytes

    def test_invalid_arguments(self, lenet):
        cut = lenet.last_conv_cut()
        with pytest.raises(ConfigurationError):
            self._plan(lenet, cut, 0.0)
        with pytest.raises(ConfigurationError):
            self._plan(lenet, cut, 0.1, max_window=0)
        with pytest.raises(ModelError):
            self._plan(lenet, "conv99", 0.1)


class TestPlannerInvariants:
    """The cutting-point recommendation must obey the cost model's own
    rules, on the plain and the batched axis alike."""

    def _planner(self, model, batch_size=1):
        rng = np.random.default_rng(1)
        privacy = {
            cut: float(rng.uniform(0.05, 0.5)) for cut in model.cut_names()
        }
        return CuttingPointPlanner(model, privacy, batch_size=batch_size)

    @pytest.mark.parametrize("batch_size", [1, 8, 32])
    def test_recommendation_is_on_the_frontier(self, svhn, batch_size):
        planner = self._planner(svhn, batch_size)
        frontier = planner.pareto_frontier()
        choice = planner.recommend()
        assert choice in frontier
        # Nothing dominates the choice.
        for other in planner.candidates:
            assert not (
                other.cost.product <= choice.cost.product
                and other.ex_vivo_privacy >= choice.ex_vivo_privacy
                and (
                    other.cost.product < choice.cost.product
                    or other.ex_vivo_privacy > choice.ex_vivo_privacy
                )
            )

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_budget_is_respected(self, svhn, batch_size):
        planner = self._planner(svhn, batch_size)
        products = sorted(c.cost.product for c in planner.candidates)
        budget = products[len(products) // 2]
        choice = planner.recommend(cost_budget=budget)
        assert choice.cost.product <= budget
        with pytest.raises(ModelError):
            planner.recommend(cost_budget=products[0] / 2)

    def test_frontier_is_sorted_and_non_dominated(self, svhn):
        frontier = self._planner(svhn, 8).pareto_frontier()
        products = [c.cost.product for c in frontier]
        assert products == sorted(products)
        # Along the frontier, more cost must buy more privacy.
        privacies = [c.ex_vivo_privacy for c in frontier]
        assert privacies == sorted(privacies)
