"""Test package."""
