"""Robustness tests for the wire protocol: corruption, truncation, fuzz.

The channel between edge and cloud is the system's attack/failure surface;
the decoder must reject every malformed frame with :class:`ChannelError`
rather than crash or silently mis-parse.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge import decode_activation, encode_activation
from repro.edge.protocol import ActivationMessage, decode_tensor, encode_tensor
from repro.errors import ChannelError


def frame(request_id=7, shape=(2, 3, 4), seed=0):
    rng = np.random.default_rng(seed)
    tensor = rng.normal(size=shape).astype(np.float32)
    return tensor, encode_tensor(request_id, tensor)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "shape", [(1,), (4, 4), (2, 3, 4), (1, 2, 3, 4, 5)]
    )
    def test_shapes(self, shape):
        tensor, blob = frame(shape=shape)
        request_id, decoded = decode_tensor(blob)
        assert request_id == 7
        np.testing.assert_array_equal(decoded, tensor)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int64])
    def test_dtypes(self, dtype):
        tensor = np.arange(12, dtype=dtype).reshape(3, 4)
        _, decoded = decode_tensor(encode_tensor(1, tensor))
        assert decoded.dtype == dtype
        np.testing.assert_array_equal(decoded, tensor)

    def test_decoded_tensor_is_writable_copy(self):
        tensor, blob = frame()
        _, decoded = decode_tensor(blob)
        decoded[0, 0, 0] = 99.0  # must not raise (frombuffer is read-only)


class TestCorruption:
    def test_payload_bitflip_detected(self):
        _, blob = frame()
        corrupted = bytearray(blob)
        corrupted[len(blob) // 2] ^= 0xFF
        with pytest.raises(ChannelError, match="checksum|magic|truncated|dtype"):
            decode_tensor(bytes(corrupted))

    def test_bad_magic_rejected(self):
        _, blob = frame()
        with pytest.raises(ChannelError, match="magic"):
            decode_tensor(b"XXXX" + blob[4:])

    def test_truncated_header(self):
        _, blob = frame()
        with pytest.raises(ChannelError, match="truncated"):
            decode_tensor(blob[:6])

    def test_truncated_payload(self):
        _, blob = frame()
        with pytest.raises(ChannelError):
            decode_tensor(blob[: len(blob) - 10])

    def test_empty_blob(self):
        with pytest.raises(ChannelError):
            decode_tensor(b"")

    def test_truncated_checksum(self):
        _, blob = frame()
        with pytest.raises(ChannelError, match="checksum"):
            decode_tensor(blob[:-2])

    def test_oversized_ndim_rejected(self):
        _, blob = frame()
        corrupted = bytearray(blob)
        corrupted[13] = 200  # ndim byte in the <4sQBB header
        with pytest.raises(ChannelError, match="dimensions"):
            decode_tensor(bytes(corrupted))

    def test_unknown_dtype_code(self):
        _, blob = frame()
        corrupted = bytearray(blob)
        corrupted[12] = 250  # dtype code byte in the <4sQBB header
        with pytest.raises(ChannelError):
            decode_tensor(bytes(corrupted))


class TestFuzz:
    @given(junk=st.binary(min_size=0, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_random_bytes_never_crash(self, junk):
        """Arbitrary garbage either decodes (vanishingly unlikely) or
        raises ChannelError — never any other exception."""
        try:
            decode_tensor(junk)
        except ChannelError:
            pass

    @given(
        seed=st.integers(0, 2**16),
        flip=st.integers(0, 10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_bitflip_never_crashes(self, seed, flip):
        _, blob = frame(seed=seed)
        corrupted = bytearray(blob)
        position = flip % len(corrupted)
        corrupted[position] ^= 1 << (flip % 8)
        try:
            request_id, decoded = decode_tensor(bytes(corrupted))
        except ChannelError:
            return
        # A surviving flip must have hit the request id (not the payload,
        # which the CRC covers, and not the structural fields).
        original_id, original = decode_tensor(blob)
        np.testing.assert_array_equal(decoded, original)
        assert request_id != original_id

    @given(request_id=st.integers(0, 2**63 - 1), seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_request_id_round_trip(self, request_id, seed):
        rng = np.random.default_rng(seed)
        message = ActivationMessage(
            request_id=request_id,
            tensor=rng.normal(size=(2, 2)).astype(np.float32),
        )
        decoded = decode_activation(encode_activation(message))
        assert decoded.request_id == request_id
