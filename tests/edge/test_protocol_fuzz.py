"""Robustness tests for the wire protocol: corruption, truncation, fuzz.

The channel between edge and cloud is the system's attack/failure surface;
the decoder must reject every malformed frame with :class:`ChannelError`
rather than crash or silently mis-parse.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge import decode_activation, encode_activation
from repro.edge.protocol import (
    ActivationMessage,
    BatchActivationMessage,
    BatchPredictionMessage,
    decode_activation_batch,
    decode_prediction_batch,
    decode_tensor,
    encode_activation_batch,
    encode_prediction_batch,
    encode_tensor,
)
from repro.edge.quantization import QuantizationParams
from repro.errors import ChannelError


def frame(request_id=7, shape=(2, 3, 4), seed=0):
    rng = np.random.default_rng(seed)
    tensor = rng.normal(size=shape).astype(np.float32)
    return tensor, encode_tensor(request_id, tensor)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "shape", [(1,), (4, 4), (2, 3, 4), (1, 2, 3, 4, 5)]
    )
    def test_shapes(self, shape):
        tensor, blob = frame(shape=shape)
        request_id, decoded = decode_tensor(blob)
        assert request_id == 7
        np.testing.assert_array_equal(decoded, tensor)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int64])
    def test_dtypes(self, dtype):
        tensor = np.arange(12, dtype=dtype).reshape(3, 4)
        _, decoded = decode_tensor(encode_tensor(1, tensor))
        assert decoded.dtype == dtype
        np.testing.assert_array_equal(decoded, tensor)

    def test_decoded_tensor_is_writable_copy(self):
        tensor, blob = frame()
        _, decoded = decode_tensor(blob)
        decoded[0, 0, 0] = 99.0  # must not raise (frombuffer is read-only)


class TestCorruption:
    def test_payload_bitflip_detected(self):
        _, blob = frame()
        corrupted = bytearray(blob)
        corrupted[len(blob) // 2] ^= 0xFF
        with pytest.raises(ChannelError, match="checksum|magic|truncated|dtype"):
            decode_tensor(bytes(corrupted))

    def test_bad_magic_rejected(self):
        _, blob = frame()
        with pytest.raises(ChannelError, match="magic"):
            decode_tensor(b"XXXX" + blob[4:])

    def test_truncated_header(self):
        _, blob = frame()
        with pytest.raises(ChannelError, match="truncated"):
            decode_tensor(blob[:6])

    def test_truncated_payload(self):
        _, blob = frame()
        with pytest.raises(ChannelError):
            decode_tensor(blob[: len(blob) - 10])

    def test_empty_blob(self):
        with pytest.raises(ChannelError):
            decode_tensor(b"")

    def test_truncated_checksum(self):
        _, blob = frame()
        with pytest.raises(ChannelError, match="checksum"):
            decode_tensor(blob[:-2])

    def test_oversized_ndim_rejected(self):
        _, blob = frame()
        corrupted = bytearray(blob)
        corrupted[13] = 200  # ndim byte in the <4sQBB header
        with pytest.raises(ChannelError, match="dimensions"):
            decode_tensor(bytes(corrupted))

    def test_unknown_dtype_code(self):
        _, blob = frame()
        corrupted = bytearray(blob)
        corrupted[12] = 250  # dtype code byte in the <4sQBB header
        with pytest.raises(ChannelError):
            decode_tensor(bytes(corrupted))


class TestFuzz:
    @given(junk=st.binary(min_size=0, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_random_bytes_never_crash(self, junk):
        """Arbitrary garbage either decodes (vanishingly unlikely) or
        raises ChannelError — never any other exception."""
        try:
            decode_tensor(junk)
        except ChannelError:
            pass

    @given(
        seed=st.integers(0, 2**16),
        flip=st.integers(0, 10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_bitflip_never_crashes(self, seed, flip):
        _, blob = frame(seed=seed)
        corrupted = bytearray(blob)
        position = flip % len(corrupted)
        corrupted[position] ^= 1 << (flip % 8)
        try:
            request_id, decoded = decode_tensor(bytes(corrupted))
        except ChannelError:
            return
        # A surviving flip must have hit the request id (not the payload,
        # which the CRC covers, and not the structural fields).
        original_id, original = decode_tensor(blob)
        np.testing.assert_array_equal(decoded, original)
        assert request_id != original_id

    @given(request_id=st.integers(0, 2**63 - 1), seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_request_id_round_trip(self, request_id, seed):
        rng = np.random.default_rng(seed)
        message = ActivationMessage(
            request_id=request_id,
            tensor=rng.normal(size=(2, 2)).astype(np.float32),
        )
        decoded = decode_activation(encode_activation(message))
        assert decoded.request_id == request_id


# ----------------------------------------------------------------------
# Batched (SHRB) frames — the serving runtime's unit of transfer
# ----------------------------------------------------------------------
def batch_frame(n_requests=3, rows_each=2, seed=0, quantized=False):
    """An encoded batched activation frame plus its source message."""
    rng = np.random.default_rng(seed)
    splits = tuple([rows_each] * n_requests)
    if quantized:
        params = QuantizationParams(scale=0.01, zero_point=128, bits=8)
        tensor = rng.integers(
            0, 255, size=(sum(splits), 2, 3, 3), dtype=np.uint8
        )
    else:
        params = None
        tensor = rng.normal(size=(sum(splits), 2, 3, 3)).astype(np.float32)
    message = BatchActivationMessage(
        request_ids=tuple(range(10, 10 + n_requests)),
        splits=splits,
        tensor=tensor,
        quantization=params,
    )
    return message, encode_activation_batch(message)


def _uncovered_ranges(n_requests, quantized):
    """Byte spans of an SHRB frame the payload CRC does *not* cover and
    whose values are not structurally validated: the request-id table and
    (when present) the quantisation parameters.  A bit flip anywhere else
    must raise; a flip here may decode — with the payload bit-identical
    and only the metadata changed."""
    fixed = 4 + 1 + 1 + 4  # magic, kind, flags, n_requests
    ids = (fixed, fixed + 8 * n_requests)
    ranges = [ids]
    if quantized:
        quant_start = ids[1] + 4 * n_requests  # after the splits table
        ranges.append((quant_start, quant_start + 11))  # <dHB>
    return ranges


class TestBatchedCorruption:
    def test_round_trip(self):
        message, blob = batch_frame()
        decoded = decode_activation_batch(blob)
        assert decoded.request_ids == message.request_ids
        assert decoded.splits == message.splits
        np.testing.assert_array_equal(decoded.tensor, message.tensor)

    def test_quantized_round_trip(self):
        message, blob = batch_frame(quantized=True)
        decoded = decode_activation_batch(blob)
        assert decoded.quantization == message.quantization
        np.testing.assert_array_equal(decoded.tensor, message.tensor)

    def test_payload_crc_mismatch_detected(self):
        _, blob = batch_frame()
        corrupted = bytearray(blob)
        corrupted[-20] ^= 0xFF  # deep inside the payload
        with pytest.raises(ChannelError, match="checksum"):
            decode_activation_batch(bytes(corrupted))

    def test_checksum_field_corruption_detected(self):
        _, blob = batch_frame()
        corrupted = bytearray(blob)
        corrupted[-1] ^= 0x01
        with pytest.raises(ChannelError, match="checksum"):
            decode_activation_batch(bytes(corrupted))

    def test_bad_magic_rejected(self):
        _, blob = batch_frame()
        with pytest.raises(ChannelError, match="magic"):
            decode_activation_batch(b"XXXX" + blob[4:])

    def test_single_frame_magic_rejected_by_batch_decoder(self):
        """An SHRD frame fed to the SHRB decoder is a typed error, not a
        mis-parse."""
        tensor = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ChannelError, match="magic"):
            decode_activation_batch(encode_tensor(1, tensor))

    def test_kind_cross_decode_rejected(self):
        """Activation frames must not decode as predictions or vice
        versa."""
        _, blob = batch_frame()
        with pytest.raises(ChannelError, match="kind"):
            decode_prediction_batch(blob)
        prediction = encode_prediction_batch(
            BatchPredictionMessage(
                request_ids=(1, 2),
                splits=(1, 1),
                logits=np.zeros((2, 10), dtype=np.float32),
            )
        )
        with pytest.raises(ChannelError, match="kind"):
            decode_activation_batch(prediction)

    def test_zero_requests_header_rejected(self):
        _, blob = batch_frame()
        corrupted = bytearray(blob)
        corrupted[6:10] = (0).to_bytes(4, "little")  # n_requests field
        with pytest.raises(ChannelError, match="zero requests"):
            decode_activation_batch(bytes(corrupted))

    def test_split_sum_mismatch_rejected(self):
        _, blob = batch_frame(n_requests=2, rows_each=2)
        corrupted = bytearray(blob)
        # First split count lives right after the fixed header + id table.
        offset = _uncovered_ranges(2, quantized=False)[0][1]
        corrupted[offset:offset + 4] = (3).to_bytes(4, "little")
        with pytest.raises(ChannelError, match="splits sum"):
            decode_activation_batch(bytes(corrupted))

    def test_unknown_flags_rejected(self):
        _, blob = batch_frame()
        corrupted = bytearray(blob)
        corrupted[5] = 0x80
        with pytest.raises(ChannelError, match="flags"):
            decode_activation_batch(bytes(corrupted))

    def test_every_truncation_is_a_typed_error(self):
        """No prefix of a valid frame may decode (or crash): every header,
        table, payload, and checksum truncation raises ChannelError."""
        _, blob = batch_frame()
        for length in range(len(blob)):
            with pytest.raises(ChannelError):
                decode_activation_batch(blob[:length])

    def test_empty_batch_encode_rejected(self):
        with pytest.raises(ChannelError, match="empty"):
            encode_activation_batch(
                BatchActivationMessage(
                    request_ids=(),
                    splits=(),
                    tensor=np.zeros((0, 2), dtype=np.float32),
                )
            )

    def test_split_row_mismatch_encode_rejected(self):
        with pytest.raises(ChannelError, match="splits sum"):
            encode_activation_batch(
                BatchActivationMessage(
                    request_ids=(1, 2),
                    splits=(1, 2),
                    tensor=np.zeros((2, 2), dtype=np.float32),
                )
            )


class TestBatchedFuzz:
    @given(junk=st.binary(min_size=0, max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_random_bytes_never_crash(self, junk):
        try:
            decode_activation_batch(junk)
        except ChannelError:
            pass

    @given(junk=st.binary(min_size=0, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_shrb_prefixed_garbage_never_crashes(self, junk):
        """Garbage that passes the magic check must still fail cleanly."""
        try:
            decode_activation_batch(b"SHRB" + junk)
        except ChannelError:
            pass

    @given(
        seed=st.integers(0, 2**16),
        flip=st.integers(0, 100_000),
        quantized=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_single_bitflip_never_decodes_garbage(self, seed, flip, quantized):
        """A flipped bit either raises ChannelError or — only when it hit
        the request-id table or the quantisation params, which no checksum
        covers — decodes with the payload bit-identical and only that
        metadata changed."""
        message, blob = batch_frame(seed=seed, quantized=quantized)
        corrupted = bytearray(blob)
        position = flip % len(corrupted)
        corrupted[position] ^= 1 << (flip % 8)
        try:
            decoded = decode_activation_batch(bytes(corrupted))
        except ChannelError:
            return
        allowed = _uncovered_ranges(len(message.request_ids), quantized)
        assert any(low <= position < high for low, high in allowed), (
            f"flip at byte {position} outside the CRC-uncovered metadata "
            "decoded silently"
        )
        np.testing.assert_array_equal(decoded.tensor, message.tensor)
        assert (
            decoded.request_ids != message.request_ids
            or decoded.quantization != message.quantization
        )

    @given(cut=st.integers(1, 400))
    @settings(max_examples=80, deadline=None)
    def test_random_truncation_never_crashes(self, cut):
        _, blob = batch_frame(n_requests=4, rows_each=3)
        with pytest.raises(ChannelError):
            decode_activation_batch(blob[: min(cut, len(blob) - 1)])


# ----------------------------------------------------------------------
# SHRB frames over a real socket (PR 7, process-sharded serving) —
# the fuzz surface plus the transport's incremental framing: partial
# reads, short writes, bitflips and truncation on the wire.  The
# invariant under every malformation: a typed error or a clean timeout,
# never a hang, never a mis-framed decode.
# ----------------------------------------------------------------------
from repro.serve.transport import FrameDecoder, encode_frame, transport_pair  # noqa: E402


def _send_in_fragments(transport, wire: bytes, rng, max_step=16):
    """Push raw bytes through the socket in random small pieces,
    emulating pathological kernel segmentation / short writes."""
    cursor = 0
    while cursor < len(wire):
        step = int(rng.integers(1, max_step))
        transport._sock.sendall(wire[cursor : cursor + step])
        cursor += step


class TestSocketFraming:
    def test_shrb_round_trip_over_socketpair_with_partial_reads(self):
        message, blob = batch_frame(n_requests=4, rows_each=3, seed=1)
        left, right = transport_pair()
        try:
            rng = np.random.default_rng(0)
            _send_in_fragments(left, encode_frame(blob), rng)
            received = right.recv(timeout=5.0)
            decoded = decode_activation_batch(received)
            assert decoded.request_ids == message.request_ids
            np.testing.assert_array_equal(decoded.tensor, message.tensor)
        finally:
            left.close()
            right.close()

    def test_back_to_back_frames_fragmented_across_boundaries(self):
        frames = [batch_frame(seed=s)[1] for s in range(4)]
        wire = b"".join(encode_frame(b) for b in frames)
        left, right = transport_pair()
        try:
            _send_in_fragments(left, wire, np.random.default_rng(1))
            for blob in frames:
                assert right.recv(timeout=5.0) == blob
        finally:
            left.close()
            right.close()

    def test_payload_bitflip_on_the_wire_is_caught_by_shrb_crc(self):
        """The transport frames bytes; integrity is the SHRB CRC's job.
        A flip inside the payload crosses the socket intact and then
        fails the typed checksum check at decode time."""
        _, blob = batch_frame()
        corrupted = bytearray(blob)
        corrupted[-20] ^= 0xFF
        left, right = transport_pair()
        try:
            left.send(bytes(corrupted))
            received = right.recv(timeout=5.0)
            with pytest.raises(ChannelError, match="checksum"):
                decode_activation_batch(received)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_then_eof_never_hangs(self):
        """A peer dying mid-frame must surface as a typed crash error
        promptly — the decoder must not wait for bytes that will never
        arrive."""
        from repro.errors import ShardCrashError

        _, blob = batch_frame()
        wire = encode_frame(blob)
        left, right = transport_pair()
        try:
            left._sock.sendall(wire[: len(wire) // 2])
            left.close()
            with pytest.raises(ShardCrashError, match="partial frame"):
                right.recv(timeout=5.0)
        finally:
            right.close()

    def test_corrupted_length_header_fails_fast_not_hangs(self):
        """A bitflip in the transport length prefix must raise (bad magic
        or absurd length) instead of making the reader wait forever."""
        _, blob = batch_frame()
        wire = bytearray(encode_frame(blob))
        left, right = transport_pair(max_frame_bytes=1 << 20)
        try:
            wire[6] ^= 0xFF  # high byte of the length field
            left._sock.sendall(bytes(wire))
            with pytest.raises(ChannelError):
                right.recv(timeout=5.0)
        finally:
            left.close()
            right.close()


class TestSocketFuzz:
    @given(
        seed=st.integers(0, 2**16),
        flip=st.integers(0, 100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_wire_bitflip_never_hangs_or_misframes(self, seed, flip):
        """Flip one bit anywhere in the framed wire bytes.  Every outcome
        must be typed: a transport ChannelError (header hit), an SHRB
        ChannelError (payload hit), or a metadata-only decode in the
        CRC-uncovered spans — never a hang, crash, or silent mis-frame."""
        message, blob = batch_frame(seed=seed)
        wire = bytearray(encode_frame(blob))
        position = flip % len(wire)
        wire[position] ^= 1 << (flip % 8)
        decoder = FrameDecoder(max_frame_bytes=1 << 24)
        try:
            frames = decoder.feed(bytes(wire))
        except ChannelError:
            return  # corrupted transport header: typed, immediate
        if not frames:
            # The flip raised the declared length: the decoder is still
            # (boundedly) waiting — legal, the socket EOF path turns this
            # into ShardCrashError.  It must want more than we sent.
            assert decoder.pending_bytes <= len(wire)
            return
        try:
            decoded = decode_activation_batch(frames[0])
        except ChannelError:
            return  # SHRB layer caught it (CRC, magic, tables)
        allowed = _uncovered_ranges(len(message.request_ids), quantized=False)
        payload_position = position - 8  # strip the transport header
        assert any(low <= payload_position < high for low, high in allowed)
        np.testing.assert_array_equal(decoded.tensor, message.tensor)

    @given(
        cut=st.integers(1, 500),
        step_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_truncation_plus_fragmentation_never_yields_a_frame(
        self, cut, step_seed
    ):
        """Any prefix of a framed SHRB message, delivered in arbitrary
        fragments, either yields nothing (incomplete) or the exact
        prefix-payload — never a phantom frame."""
        _, blob = batch_frame(n_requests=3, rows_each=2)
        wire = encode_frame(blob)
        prefix = wire[: min(cut, len(wire) - 1)]
        decoder = FrameDecoder()
        rng = np.random.default_rng(step_seed)
        frames = []
        cursor = 0
        while cursor < len(prefix):
            step = int(rng.integers(1, 32))
            frames.extend(decoder.feed(prefix[cursor : cursor + step]))
            cursor += step
        assert frames == []  # the frame never completed
        assert decoder.pending_bytes == len(prefix) - (
            8 if len(prefix) >= 8 else len(prefix)
        ) or len(prefix) < 8
