"""Tests for the wire protocol and the simulated channel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import (
    ActivationMessage,
    Channel,
    PredictionMessage,
    decode_activation,
    decode_prediction,
    encode_activation,
    encode_prediction,
)
from repro.edge.protocol import decode_tensor, encode_tensor
from repro.errors import ChannelError, ConfigurationError


class TestProtocol:
    def test_roundtrip_float32(self, rng):
        tensor = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        request_id, decoded = decode_tensor(encode_tensor(7, tensor))
        assert request_id == 7
        np.testing.assert_array_equal(decoded, tensor)

    def test_roundtrip_int64(self):
        tensor = np.arange(10, dtype=np.int64)
        _, decoded = decode_tensor(encode_tensor(0, tensor))
        np.testing.assert_array_equal(decoded, tensor)

    def test_activation_message_roundtrip(self, rng):
        message = ActivationMessage(3, rng.standard_normal((1, 2, 2)).astype(np.float32))
        decoded = decode_activation(encode_activation(message))
        assert decoded.request_id == 3
        np.testing.assert_array_equal(decoded.tensor, message.tensor)

    def test_prediction_message_roundtrip(self, rng):
        message = PredictionMessage(9, rng.standard_normal((4, 10)).astype(np.float32))
        decoded = decode_prediction(encode_prediction(message))
        assert decoded.request_id == 9
        np.testing.assert_array_equal(decoded.logits, message.logits)

    def test_bad_magic_rejected(self, rng):
        blob = encode_tensor(0, np.zeros(3, dtype=np.float32))
        with pytest.raises(ChannelError):
            decode_tensor(b"XXXX" + blob[4:])

    def test_corruption_detected(self, rng):
        blob = bytearray(encode_tensor(0, rng.standard_normal(8).astype(np.float32)))
        blob[-10] ^= 0xFF  # flip payload bits
        with pytest.raises(ChannelError):
            decode_tensor(bytes(blob))

    def test_truncation_detected(self, rng):
        blob = encode_tensor(0, rng.standard_normal(8).astype(np.float32))
        with pytest.raises(ChannelError):
            decode_tensor(blob[: len(blob) // 2])

    def test_unsupported_dtype(self):
        with pytest.raises(ChannelError):
            encode_tensor(0, np.zeros(3, dtype=np.complex64))

    def test_decoded_tensor_is_writable(self, rng):
        _, decoded = decode_tensor(encode_tensor(0, np.zeros(3, dtype=np.float32)))
        decoded[0] = 1.0  # frombuffer views are read-only; we must copy


class TestChannel:
    def test_transfer_time_formula(self):
        channel = Channel(bandwidth_mbps=8.0, latency_ms=5.0)
        # 1000 bytes = 8000 bits over 8 Mbps = 1 ms, plus 5 ms latency.
        assert channel.transfer_seconds(1000) == pytest.approx(0.006)

    def test_transmit_accumulates_stats(self):
        channel = Channel(bandwidth_mbps=100.0, latency_ms=1.0)
        channel.transmit(b"x" * 100)
        channel.transmit(b"y" * 200)
        assert channel.stats.messages == 2
        assert channel.stats.bytes_sent == 300
        assert channel.stats.simulated_seconds > 0

    def test_transparent_payload(self):
        channel = Channel()
        assert channel.transmit(b"hello") == b"hello"

    def test_drops_are_retried(self):
        channel = Channel(drop_rate=0.5, max_retries=50, rng=np.random.default_rng(0))
        for _ in range(20):
            assert channel.transmit(b"data") == b"data"
        assert channel.stats.drops > 0

    def test_gives_up_after_max_retries(self):
        channel = Channel(drop_rate=0.999, max_retries=2, rng=np.random.default_rng(0))
        with pytest.raises(ChannelError):
            for _ in range(100):
                channel.transmit(b"data")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bandwidth_mbps=0.0),
            dict(latency_ms=-1.0),
            dict(drop_rate=1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            Channel(**kwargs)
