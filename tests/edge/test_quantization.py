"""Tests for the wire quantisation codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge import (
    QuantizationParams,
    WeightQuantization,
    calibrate,
    compress_activation,
    dequantize,
    quantization_error,
    quantize,
    quantize_weights,
    wire_bytes,
)
from repro.errors import ChannelError, ConfigurationError


class TestParams:
    def test_levels(self):
        assert QuantizationParams(0.1, 0, 8).levels == 256

    def test_bytes_per_element(self):
        assert QuantizationParams(0.1, 0, 8).bytes_per_element == 1
        assert QuantizationParams(0.1, 0, 12).bytes_per_element == 2

    def test_bad_bits(self):
        with pytest.raises(ConfigurationError):
            QuantizationParams(0.1, 0, 1)
        with pytest.raises(ConfigurationError):
            QuantizationParams(0.1, 0, 17)

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            QuantizationParams(0.0, 0, 8)

    def test_bad_zero_point(self):
        with pytest.raises(ConfigurationError):
            QuantizationParams(0.1, 256, 8)


class TestCalibrate:
    def test_covers_full_range(self, rng):
        tensor = rng.uniform(-3.0, 5.0, size=(4, 8, 8))
        params = calibrate(tensor, bits=8)
        codes = quantize(tensor, params)
        decoded = dequantize(codes, params)
        step = params.scale
        assert np.abs(decoded - tensor).max() <= step / 2 + 1e-6

    def test_percentile_clips_outliers(self, rng):
        tensor = np.concatenate([rng.normal(size=10000), [1000.0]])
        clipped = calibrate(tensor, bits=8, percentile=99.0)
        full = calibrate(tensor, bits=8)
        assert clipped.scale < full.scale

    def test_constant_tensor(self):
        params = calibrate(np.full((4, 4), 2.0), bits=8)
        round_trip = dequantize(quantize(np.full((4, 4), 2.0), params), params)
        np.testing.assert_allclose(round_trip, 2.0, atol=1e-4)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate(np.array([]))

    def test_bad_percentile(self, rng):
        with pytest.raises(ConfigurationError):
            calibrate(rng.normal(size=8), percentile=0.0)


class TestRoundTrip:
    def test_error_bounded_by_half_step(self, rng):
        tensor = rng.normal(size=(2, 3, 5)).astype(np.float32)
        params = calibrate(tensor, bits=8)
        error = quantization_error(tensor, params)
        assert error <= params.scale  # RMS well under one step

    def test_more_bits_less_error(self, rng):
        tensor = rng.normal(size=(512,))
        coarse = quantization_error(tensor, calibrate(tensor, bits=4))
        fine = quantization_error(tensor, calibrate(tensor, bits=10))
        assert fine < coarse

    def test_codes_within_range(self, rng):
        tensor = rng.normal(size=(64,))
        params = calibrate(tensor, bits=6)
        codes = quantize(tensor, params)
        assert codes.min() >= 0
        assert codes.max() < params.levels

    def test_out_of_range_values_clip(self, rng):
        tensor = rng.normal(size=(64,))
        params = calibrate(tensor, bits=8)
        codes = quantize(tensor * 100.0, params)
        assert codes.max() == params.levels - 1

    def test_dequantize_rejects_bad_codes(self):
        params = QuantizationParams(0.1, 0, 4)
        with pytest.raises(ChannelError):
            dequantize(np.array([16]), params)


class TestWireSize:
    def test_wire_bytes_8bit(self):
        params = QuantizationParams(0.1, 0, 8)
        assert wire_bytes((16, 4, 4), params) == 256

    def test_compression_ratio_vs_float32(self):
        params = QuantizationParams(0.1, 0, 8)
        float_bytes = 16 * 4 * 4 * 4
        assert float_bytes / wire_bytes((16, 4, 4), params) == 4.0

    def test_compress_activation(self, rng):
        activation = rng.normal(size=(2, 4, 4, 4)).astype(np.float32)
        params = calibrate(activation, bits=8)
        packet = compress_activation(activation, params)
        assert packet.payload_bytes == 2 * 4 * 4 * 4
        restored = packet.dequantized()
        assert restored.shape == activation.shape
        assert np.abs(restored - activation).max() <= params.scale


class TestProperties:
    @given(
        seed=st.integers(0, 2**16),
        bits=st.integers(3, 12),
        span=st.floats(0.5, 50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_error_below_one_step(self, seed, bits, span):
        rng = np.random.default_rng(seed)
        tensor = rng.uniform(-span, span, size=(64,))
        params = calibrate(tensor, bits=bits)
        decoded = dequantize(quantize(tensor, params), params)
        assert np.abs(decoded - tensor).max() <= params.scale / 2 + 1e-9 * span

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_quantize_is_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        tensor = rng.normal(size=(32,))
        params = calibrate(tensor, bits=8)
        once = dequantize(quantize(tensor, params), params)
        twice = dequantize(quantize(once, params), params)
        np.testing.assert_allclose(once, twice, atol=1e-6)


class TestWeightQuantization:
    """Property tests pinning the per-channel symmetric weight quantiser
    consumed by the opt-in ``int8_weights`` IR rewrite."""

    @given(
        seed=st.integers(0, 2**16),
        bits=st.integers(2, 8),
        rows=st.integers(1, 12),
        cols=st.integers(1, 48),
        span=st.floats(1e-3, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_error_within_half_scale_per_channel(
        self, seed, bits, rows, cols, span
    ):
        rng = np.random.default_rng(seed)
        weight = rng.uniform(-span, span, size=(rows, cols)).astype(np.float32)
        wq = quantize_weights(weight, bits=bits)
        err = np.abs(wq.dequantized().astype(np.float64) - weight.astype(np.float64))
        # Half a quantisation step per channel, plus slack for the scales
        # themselves being stored in float32.
        bound = wq.scales.astype(np.float64)[:, None] / 2.0
        slack = np.abs(weight).max(initial=0.0) * 1e-5 + 1e-12
        assert (err <= bound + slack).all()

    @given(
        seed=st.integers(0, 2**16),
        bits=st.integers(2, 8),
        rows=st.integers(1, 12),
        cols=st.integers(1, 48),
    )
    @settings(max_examples=60, deadline=None)
    def test_codes_and_scales_invariants(self, seed, bits, rows, cols):
        rng = np.random.default_rng(seed)
        weight = rng.normal(size=(rows, cols)).astype(np.float32)
        wq = quantize_weights(weight, bits=bits)
        qmax = (1 << (bits - 1)) - 1
        assert wq.qmax == qmax
        assert wq.codes.dtype == np.int8
        assert wq.codes.shape == weight.shape
        assert wq.codes.flags["C_CONTIGUOUS"]
        assert wq.codes.min() >= -qmax and wq.codes.max() <= qmax
        assert wq.scales.dtype == np.float32
        assert wq.scales.shape == (rows,)
        assert (wq.scales > 0).all()
        assert wq.code_bytes == rows * cols
        # Each row's absmax element maps exactly to ±qmax.
        hit = np.abs(wq.codes).max(axis=1)
        nonzero = np.abs(weight).max(axis=1) > 0
        assert (hit[nonzero] == qmax).all()

    @given(
        seed=st.integers(0, 2**16),
        bits=st.integers(2, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_symmetric_zero_point_negation(self, seed, bits):
        # Zero point is 0 by construction: negating the weights negates the
        # codes and leaves the scales untouched.  (np.round ties go to even,
        # which is itself sign-symmetric, so this holds exactly.)
        rng = np.random.default_rng(seed)
        weight = rng.normal(size=(6, 17)).astype(np.float32)
        pos = quantize_weights(weight, bits=bits)
        neg = quantize_weights(-weight, bits=bits)
        np.testing.assert_array_equal(neg.codes, -pos.codes)
        np.testing.assert_array_equal(neg.scales, pos.scales)

    def test_zero_rows_get_unit_scale_and_zero_codes(self):
        weight = np.zeros((3, 8), dtype=np.float32)
        weight[1] = np.linspace(-1.0, 1.0, 8)
        wq = quantize_weights(weight, bits=8)
        assert (wq.codes[0] == 0).all() and (wq.codes[2] == 0).all()
        assert wq.scales[0] == 1.0 and wq.scales[2] == 1.0
        assert np.abs(wq.codes[1]).max() == 127

    def test_dequantized_dtype_and_shape(self, rng):
        weight = rng.normal(size=(5, 9)).astype(np.float32)
        wq = quantize_weights(weight, bits=8)
        dq = wq.dequantized()
        assert dq.dtype == np.float32
        assert dq.shape == weight.shape

    def test_rejects_bad_bits(self, rng):
        weight = rng.normal(size=(2, 4))
        with pytest.raises(ConfigurationError):
            quantize_weights(weight, bits=1)
        with pytest.raises(ConfigurationError):
            quantize_weights(weight, bits=9)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ConfigurationError):
            quantize_weights(rng.normal(size=(4,)))
        with pytest.raises(ConfigurationError):
            quantize_weights(rng.normal(size=(2, 3, 4)))

    def test_is_weight_quantization_instance(self, rng):
        wq = quantize_weights(rng.normal(size=(2, 4)))
        assert isinstance(wq, WeightQuantization)
        assert wq.bits == 8
