"""Tests for the wire quantisation codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge import (
    QuantizationParams,
    calibrate,
    compress_activation,
    dequantize,
    quantization_error,
    quantize,
    wire_bytes,
)
from repro.errors import ChannelError, ConfigurationError


class TestParams:
    def test_levels(self):
        assert QuantizationParams(0.1, 0, 8).levels == 256

    def test_bytes_per_element(self):
        assert QuantizationParams(0.1, 0, 8).bytes_per_element == 1
        assert QuantizationParams(0.1, 0, 12).bytes_per_element == 2

    def test_bad_bits(self):
        with pytest.raises(ConfigurationError):
            QuantizationParams(0.1, 0, 1)
        with pytest.raises(ConfigurationError):
            QuantizationParams(0.1, 0, 17)

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            QuantizationParams(0.0, 0, 8)

    def test_bad_zero_point(self):
        with pytest.raises(ConfigurationError):
            QuantizationParams(0.1, 256, 8)


class TestCalibrate:
    def test_covers_full_range(self, rng):
        tensor = rng.uniform(-3.0, 5.0, size=(4, 8, 8))
        params = calibrate(tensor, bits=8)
        codes = quantize(tensor, params)
        decoded = dequantize(codes, params)
        step = params.scale
        assert np.abs(decoded - tensor).max() <= step / 2 + 1e-6

    def test_percentile_clips_outliers(self, rng):
        tensor = np.concatenate([rng.normal(size=10000), [1000.0]])
        clipped = calibrate(tensor, bits=8, percentile=99.0)
        full = calibrate(tensor, bits=8)
        assert clipped.scale < full.scale

    def test_constant_tensor(self):
        params = calibrate(np.full((4, 4), 2.0), bits=8)
        round_trip = dequantize(quantize(np.full((4, 4), 2.0), params), params)
        np.testing.assert_allclose(round_trip, 2.0, atol=1e-4)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate(np.array([]))

    def test_bad_percentile(self, rng):
        with pytest.raises(ConfigurationError):
            calibrate(rng.normal(size=8), percentile=0.0)


class TestRoundTrip:
    def test_error_bounded_by_half_step(self, rng):
        tensor = rng.normal(size=(2, 3, 5)).astype(np.float32)
        params = calibrate(tensor, bits=8)
        error = quantization_error(tensor, params)
        assert error <= params.scale  # RMS well under one step

    def test_more_bits_less_error(self, rng):
        tensor = rng.normal(size=(512,))
        coarse = quantization_error(tensor, calibrate(tensor, bits=4))
        fine = quantization_error(tensor, calibrate(tensor, bits=10))
        assert fine < coarse

    def test_codes_within_range(self, rng):
        tensor = rng.normal(size=(64,))
        params = calibrate(tensor, bits=6)
        codes = quantize(tensor, params)
        assert codes.min() >= 0
        assert codes.max() < params.levels

    def test_out_of_range_values_clip(self, rng):
        tensor = rng.normal(size=(64,))
        params = calibrate(tensor, bits=8)
        codes = quantize(tensor * 100.0, params)
        assert codes.max() == params.levels - 1

    def test_dequantize_rejects_bad_codes(self):
        params = QuantizationParams(0.1, 0, 4)
        with pytest.raises(ChannelError):
            dequantize(np.array([16]), params)


class TestWireSize:
    def test_wire_bytes_8bit(self):
        params = QuantizationParams(0.1, 0, 8)
        assert wire_bytes((16, 4, 4), params) == 256

    def test_compression_ratio_vs_float32(self):
        params = QuantizationParams(0.1, 0, 8)
        float_bytes = 16 * 4 * 4 * 4
        assert float_bytes / wire_bytes((16, 4, 4), params) == 4.0

    def test_compress_activation(self, rng):
        activation = rng.normal(size=(2, 4, 4, 4)).astype(np.float32)
        params = calibrate(activation, bits=8)
        packet = compress_activation(activation, params)
        assert packet.payload_bytes == 2 * 4 * 4 * 4
        restored = packet.dequantized()
        assert restored.shape == activation.shape
        assert np.abs(restored - activation).max() <= params.scale


class TestProperties:
    @given(
        seed=st.integers(0, 2**16),
        bits=st.integers(3, 12),
        span=st.floats(0.5, 50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_error_below_one_step(self, seed, bits, span):
        rng = np.random.default_rng(seed)
        tensor = rng.uniform(-span, span, size=(64,))
        params = calibrate(tensor, bits=bits)
        decoded = dequantize(quantize(tensor, params), params)
        assert np.abs(decoded - tensor).max() <= params.scale / 2 + 1e-9 * span

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_quantize_is_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        tensor = rng.normal(size=(32,))
        params = calibrate(tensor, bits=8)
        once = dequantize(quantize(tensor, params), params)
        twice = dequantize(quantize(once, params), params)
        np.testing.assert_allclose(once, twice, atol=1e-6)
