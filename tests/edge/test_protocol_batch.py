"""Batched wire-frame tests: round trips, quantised payloads, corruption.

The batched frame is the serving runtime's unit of transfer; like the
single-request format it must reject every malformed frame with
:class:`ChannelError` rather than crash or silently mis-parse, and its
request table must survive the trip exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge import (
    BatchActivationMessage,
    BatchPredictionMessage,
    QuantizationParams,
    batch_frame_overhead,
    decode_activation_batch,
    decode_prediction_batch,
    encode_activation_batch,
    encode_prediction_batch,
)
from repro.errors import ChannelError


def make_frame(splits=(1, 2, 1), per_sample=(3, 2), dtype=np.float32, seed=0,
               quantization=None):
    rng = np.random.default_rng(seed)
    rows = int(sum(splits))
    if np.issubdtype(np.dtype(dtype), np.integer):
        info = np.iinfo(dtype)
        low = max(info.min, -1000)
        tensor = rng.integers(low, min(info.max, 1000), size=(rows, *per_sample)).astype(dtype)
    else:
        tensor = rng.normal(size=(rows, *per_sample)).astype(dtype)
    message = BatchActivationMessage(
        request_ids=tuple(range(10, 10 + len(splits))),
        splits=tuple(splits),
        tensor=tensor,
        quantization=quantization,
    )
    return message, encode_activation_batch(message)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "splits,per_sample",
        [((1,), (4,)), ((1, 1, 1), (2, 3)), ((2, 5, 1), (3, 2, 2)), ((3,), (1, 1, 1, 1))],
    )
    def test_shapes_and_splits(self, splits, per_sample):
        message, blob = make_frame(splits, per_sample)
        decoded = decode_activation_batch(blob)
        assert decoded.request_ids == message.request_ids
        assert decoded.splits == message.splits
        np.testing.assert_array_equal(decoded.tensor, message.tensor)
        assert decoded.quantization is None

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int64, np.uint8, np.uint16]
    )
    def test_dtypes(self, dtype):
        message, blob = make_frame(dtype=dtype)
        decoded = decode_activation_batch(blob)
        assert decoded.tensor.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(decoded.tensor, message.tensor)

    def test_quantised_params_travel(self):
        params = QuantizationParams(scale=0.125, zero_point=31, bits=8)
        message, blob = make_frame(dtype=np.uint8, quantization=params)
        decoded = decode_activation_batch(blob)
        assert decoded.quantization == params

    def test_prediction_frame_and_demux(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 10)).astype(np.float32)
        message = BatchPredictionMessage(
            request_ids=(7, 9, 11), splits=(1, 2, 1), logits=logits
        )
        decoded = decode_prediction_batch(encode_prediction_batch(message))
        parts = decoded.split_logits()
        assert [len(p) for p in parts] == [1, 2, 1]
        np.testing.assert_array_equal(np.concatenate(parts), logits)

    def test_frame_overhead_is_exact(self):
        for splits in [(1,), (1, 1, 1, 1), (2, 3)]:
            for quantization in [None, QuantizationParams(0.1, 0, 8)]:
                message, blob = make_frame(
                    splits, (3, 2), dtype=np.uint8 if quantization else np.float32,
                    quantization=quantization,
                )
                payload = message.tensor.nbytes
                assert len(blob) - payload == batch_frame_overhead(
                    len(splits), ndim=3, quantized=quantization is not None
                )

    @given(
        splits=st.lists(st.integers(1, 4), min_size=1, max_size=6),
        width=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, splits, width, seed):
        message, blob = make_frame(tuple(splits), (width,), seed=seed)
        decoded = decode_activation_batch(blob)
        assert decoded.request_ids == message.request_ids
        assert decoded.splits == message.splits
        np.testing.assert_array_equal(decoded.tensor, message.tensor)


class TestEncodeValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ChannelError):
            encode_activation_batch(
                BatchActivationMessage((), (), np.zeros((0, 2), np.float32))
            )

    def test_split_sum_mismatch_rejected(self):
        with pytest.raises(ChannelError, match="splits"):
            encode_activation_batch(
                BatchActivationMessage((1, 2), (1, 2), np.zeros((2, 2), np.float32))
            )

    def test_zero_row_request_rejected(self):
        with pytest.raises(ChannelError):
            encode_activation_batch(
                BatchActivationMessage((1, 2), (2, 0), np.zeros((2, 2), np.float32))
            )

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ChannelError, match="dtype"):
            encode_activation_batch(
                BatchActivationMessage((1,), (2,), np.zeros((2, 2), np.complex64))
            )


class TestCorruption:
    def test_payload_bitflip_detected(self):
        _, blob = make_frame()
        corrupted = bytearray(blob)
        corrupted[-10] ^= 0xFF  # inside payload/CRC territory
        with pytest.raises(ChannelError):
            decode_activation_batch(bytes(corrupted))

    def test_bad_magic_rejected(self):
        _, blob = make_frame()
        with pytest.raises(ChannelError, match="magic"):
            decode_activation_batch(b"XXXX" + blob[4:])

    def test_kind_mismatch_rejected(self):
        _, blob = make_frame()
        with pytest.raises(ChannelError, match="kind"):
            decode_prediction_batch(blob)

    def test_truncations_rejected_everywhere(self):
        _, blob = make_frame()
        for cut in [0, 3, 8, 12, 20, len(blob) - 3, len(blob) - 1]:
            with pytest.raises(ChannelError):
                decode_activation_batch(blob[:cut])

    def test_declared_rows_vs_shape_mismatch(self):
        message, blob = make_frame(splits=(2, 2), per_sample=(3,))
        corrupted = bytearray(blob)
        # splits live right after the fixed header + 2 request ids.
        offset = 10 + 2 * 8
        corrupted[offset] = 3  # now splits sum to 5, shape says 4 rows
        with pytest.raises(ChannelError):
            decode_activation_batch(bytes(corrupted))

    @given(junk=st.binary(min_size=0, max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_random_bytes_never_crash(self, junk):
        try:
            decode_activation_batch(junk)
        except ChannelError:
            pass

    @given(seed=st.integers(0, 2**16), flip=st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_single_bitflip_never_crashes(self, seed, flip):
        _, blob = make_frame(seed=seed)
        corrupted = bytearray(blob)
        position = flip % len(corrupted)
        corrupted[position] ^= 1 << (flip % 8)
        try:
            decoded = decode_activation_batch(bytes(corrupted))
        except ChannelError:
            return
        # A surviving flip must not have altered the payload (CRC-covered).
        original = decode_activation_batch(blob)
        np.testing.assert_array_equal(decoded.tensor, original.tensor)
