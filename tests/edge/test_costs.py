"""Tests for the analytic cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import cut_cost, cut_costs, layer_macs, profile_network
from repro.errors import ModelError
from repro.models import build_model
from repro.nn import Conv2d, Linear, MaxPool2d, ReLU


@pytest.fixture(scope="module")
def lenet():
    return build_model("lenet", np.random.default_rng(0), width=0.5).eval()


@pytest.fixture(scope="module")
def svhn():
    return build_model("svhn", np.random.default_rng(0), width=0.5).eval()


class TestLayerMacs:
    def test_conv_macs(self):
        conv = Conv2d(3, 8, 3, rng=np.random.default_rng(0))
        # out 8x6x6 from 8x8 input: 6*6*8*3*3*3
        macs = layer_macs(conv, (1, 3, 8, 8), (1, 8, 6, 6))
        assert macs == 6 * 6 * 8 * 3 * 3 * 3

    def test_linear_macs(self):
        fc = Linear(128, 10, rng=np.random.default_rng(0))
        assert layer_macs(fc, (1, 128), (1, 10)) == 1280

    def test_pool_and_relu_free(self):
        assert layer_macs(MaxPool2d(2), (1, 3, 8, 8), (1, 3, 4, 4)) == 0
        assert layer_macs(ReLU(), (1, 3, 8, 8), (1, 3, 8, 8)) == 0


class TestProfileNetwork:
    def test_one_entry_per_layer(self, lenet):
        profile = profile_network(lenet)
        assert [c.name for c in profile] == lenet.net.layer_names()

    def test_bytes_are_four_per_element(self, lenet):
        for cost in profile_network(lenet):
            assert cost.output_bytes == 4 * cost.output_elements

    def test_conv_layers_dominate(self, lenet):
        profile = {c.name: c for c in profile_network(lenet)}
        conv_macs = sum(c.macs for n, c in profile.items() if n.startswith("conv"))
        total = sum(c.macs for c in profile.values())
        assert conv_macs / total > 0.5

    def test_profile_leaves_model_mode(self, lenet):
        lenet.train()
        profile_network(lenet)
        assert lenet.training
        lenet.eval()


class TestCutCosts:
    def test_computation_monotone_in_depth(self, svhn):
        # Paper §3.4: computation is cumulative, hence monotone.
        costs = cut_costs(svhn)
        kilomacs = [c.kilomacs for c in costs]
        assert kilomacs == sorted(kilomacs)

    def test_communication_not_monotone_for_svhn(self, svhn):
        # Paper §3.4: communication is "not typically monotonic".
        megabytes = [c.megabytes for c in cut_costs(svhn)]
        assert megabytes != sorted(megabytes)
        assert megabytes != sorted(megabytes, reverse=True)

    def test_svhn_conv6_cheapest_communication(self, svhn):
        costs = {c.cut: c for c in cut_costs(svhn)}
        assert costs["conv6"].megabytes == min(c.megabytes for c in costs.values())

    def test_product_is_product(self, lenet):
        for cost in cut_costs(lenet):
            assert cost.product == pytest.approx(cost.kilomacs * cost.megabytes)

    def test_conv_indices_match_names(self, svhn):
        for cost in cut_costs(svhn):
            assert cost.cut == f"conv{cost.conv_index}"

    def test_single_cut_lookup(self, lenet):
        assert cut_cost(lenet, "conv1").cut == "conv1"

    def test_unknown_cut(self, lenet):
        with pytest.raises(ModelError):
            cut_cost(lenet, "conv9")
