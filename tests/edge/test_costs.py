"""Tests for the analytic cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import cut_cost, cut_costs, layer_macs, profile_network
from repro.errors import ModelError
from repro.models import build_model
from repro.nn import Conv2d, Linear, MaxPool2d, ReLU


@pytest.fixture(scope="module")
def lenet():
    return build_model("lenet", np.random.default_rng(0), width=0.5).eval()


@pytest.fixture(scope="module")
def svhn():
    return build_model("svhn", np.random.default_rng(0), width=0.5).eval()


class TestLayerMacs:
    def test_conv_macs(self):
        conv = Conv2d(3, 8, 3, rng=np.random.default_rng(0))
        # out 8x6x6 from 8x8 input: 6*6*8*3*3*3
        macs = layer_macs(conv, (1, 3, 8, 8), (1, 8, 6, 6))
        assert macs == 6 * 6 * 8 * 3 * 3 * 3

    def test_linear_macs(self):
        fc = Linear(128, 10, rng=np.random.default_rng(0))
        assert layer_macs(fc, (1, 128), (1, 10)) == 1280

    def test_pool_and_relu_free(self):
        assert layer_macs(MaxPool2d(2), (1, 3, 8, 8), (1, 3, 4, 4)) == 0
        assert layer_macs(ReLU(), (1, 3, 8, 8), (1, 3, 8, 8)) == 0


class TestProfileNetwork:
    def test_one_entry_per_layer(self, lenet):
        profile = profile_network(lenet)
        assert [c.name for c in profile] == lenet.net.layer_names()

    def test_bytes_are_four_per_element(self, lenet):
        for cost in profile_network(lenet):
            assert cost.output_bytes == 4 * cost.output_elements

    def test_conv_layers_dominate(self, lenet):
        profile = {c.name: c for c in profile_network(lenet)}
        conv_macs = sum(c.macs for n, c in profile.items() if n.startswith("conv"))
        total = sum(c.macs for c in profile.values())
        assert conv_macs / total > 0.5

    def test_profile_leaves_model_mode(self, lenet):
        lenet.train()
        profile_network(lenet)
        assert lenet.training
        lenet.eval()


class TestCutCosts:
    def test_computation_monotone_in_depth(self, svhn):
        # Paper §3.4: computation is cumulative, hence monotone.
        costs = cut_costs(svhn)
        kilomacs = [c.kilomacs for c in costs]
        assert kilomacs == sorted(kilomacs)

    def test_communication_not_monotone_for_svhn(self, svhn):
        # Paper §3.4: communication is "not typically monotonic".
        megabytes = [c.megabytes for c in cut_costs(svhn)]
        assert megabytes != sorted(megabytes)
        assert megabytes != sorted(megabytes, reverse=True)

    def test_svhn_conv6_cheapest_communication(self, svhn):
        costs = {c.cut: c for c in cut_costs(svhn)}
        assert costs["conv6"].megabytes == min(c.megabytes for c in costs.values())

    def test_product_is_product(self, lenet):
        for cost in cut_costs(lenet):
            assert cost.product == pytest.approx(cost.kilomacs * cost.megabytes)

    def test_conv_indices_match_names(self, svhn):
        for cost in cut_costs(svhn):
            assert cost.cut == f"conv{cost.conv_index}"

    def test_single_cut_lookup(self, lenet):
        assert cut_cost(lenet, "conv1").cut == "conv1"

    def test_unknown_cut(self, lenet):
        with pytest.raises(ModelError):
            cut_cost(lenet, "conv9")


class TestBatchedCosts:
    def test_batch_one_adds_only_frame_overhead(self, lenet):
        from repro.edge import batch_frame_overhead, batched_cut_costs

        base = {c.cut: c for c in cut_costs(lenet)}
        for cost in batched_cut_costs(lenet, batch_size=1):
            payload = base[cost.cut].megabytes * 1e6
            assert cost.wire_bytes == pytest.approx(
                payload + batch_frame_overhead(1, ndim=4)
            )
            assert cost.kilomacs == base[cost.cut].kilomacs

    def test_amortisation_decreases_with_batch_size(self, lenet):
        from repro.edge import batched_cut_costs

        by_batch = {
            b: {c.cut: c for c in batched_cut_costs(lenet, batch_size=b)}
            for b in (1, 8, 64)
        }
        for cut in by_batch[1]:
            assert (
                by_batch[64][cut].wire_bytes
                < by_batch[8][cut].wire_bytes
                < by_batch[1][cut].wire_bytes
            )
            # kMACs are flat in the batch size.
            assert by_batch[64][cut].kilomacs == by_batch[1][cut].kilomacs

    def test_quantised_wire_shrinks_payload(self, lenet):
        from repro.edge import QuantizationParams, batched_cut_cost

        cut = lenet.last_conv_cut()
        params = QuantizationParams(scale=0.1, zero_point=0, bits=8)
        fp32 = batched_cut_cost(lenet, cut, batch_size=8)
        q8 = batched_cut_cost(
            lenet, cut, batch_size=8, bytes_per_element=params.bytes_per_element
        )
        assert q8.wire_bytes < 0.5 * fp32.wire_bytes

    def test_invalid_arguments(self, lenet):
        from repro.edge import batched_cut_cost, batched_cut_costs

        with pytest.raises(ModelError):
            batched_cut_costs(lenet, batch_size=0)
        with pytest.raises(ModelError):
            batched_cut_costs(lenet, bytes_per_element=0)
        with pytest.raises(ModelError):
            batched_cut_cost(lenet, "conv99", batch_size=2)

    def test_frame_overhead_golden_values(self):
        """The amortised quantity is the frame overhead itself; pin its
        exact byte layout: 10-byte fixed header, 12 bytes per request
        (u64 id + u32 rows), 11-byte quant block, 2-byte tensor head,
        4 bytes per shape dim, 4-byte CRC."""
        from repro.edge import batch_frame_overhead

        assert batch_frame_overhead(1, ndim=4) == 10 + 12 + 2 + 16 + 4
        assert batch_frame_overhead(8, ndim=4) == 10 + 96 + 2 + 16 + 4
        assert batch_frame_overhead(8, ndim=2) == 10 + 96 + 2 + 8 + 4
        assert (
            batch_frame_overhead(8, ndim=4, quantized=True)
            == batch_frame_overhead(8, ndim=4) + 11
        )

    def test_amortisation_exact_formula(self, lenet):
        """Golden check: per-request wire bytes == payload + overhead/B
        for every cut and batch size — nothing else moves."""
        from repro.edge import batch_frame_overhead, batched_cut_costs

        base = {c.cut: c for c in cut_costs(lenet)}
        for batch in (1, 2, 4, 8, 16, 64):
            for cost in batched_cut_costs(lenet, batch_size=batch):
                payload = base[cost.cut].megabytes * 1e6
                overhead = batch_frame_overhead(batch, ndim=4)
                assert cost.wire_bytes == pytest.approx(
                    payload + overhead / batch
                )
                assert cost.product == pytest.approx(
                    cost.kilomacs * cost.wire_bytes / 1e6
                )

    def test_amortisation_strictly_monotone_in_batch_size(self, lenet):
        """The header amortisation must decrease at *every* step of the
        batch axis, not just at spot-checked sizes."""
        from repro.edge import batched_cut_costs

        sweep = [
            {c.cut: c.wire_bytes for c in batched_cut_costs(lenet, batch_size=b)}
            for b in range(1, 33)
        ]
        for cut in sweep[0]:
            series = [step[cut] for step in sweep]
            assert all(a > b for a, b in zip(series, series[1:]))


class TestPlannerBatchAxis:
    def test_batched_planner_uses_amortised_costs(self, lenet):
        from repro.edge import CuttingPointPlanner, batched_cut_cost

        privacy = {cut: 0.1 for cut in lenet.cut_names()}
        planner = CuttingPointPlanner(lenet, privacy, batch_size=16)
        for candidate in planner.candidates:
            expected = batched_cut_cost(lenet, candidate.cut, batch_size=16)
            assert candidate.cost.product == pytest.approx(expected.product)

    def test_default_planner_unchanged(self, lenet):
        from repro.edge import CuttingPointPlanner

        privacy = {cut: 0.1 for cut in lenet.cut_names()}
        planner = CuttingPointPlanner(lenet, privacy)
        base = {c.cut: c for c in cut_costs(lenet)}
        for candidate in planner.candidates:
            assert candidate.cost.product == base[candidate.cut].product
