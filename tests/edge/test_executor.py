"""Batch-invariance tests for the serving forward executor.

The serving runtime's parity guarantee rests on one property: the
executor's result for a row is a pure function of that row, independent of
how many other rows share the batch.  These tests enforce it bitwise for
all four backbones and every layer type they use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import BatchInvariantExecutor, batch_invariant_linear
from repro.models import build_model
from repro.nn import Linear, Sequential, Tanh, Tensor, no_grad


def _random_batch(model, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, *model.input_shape)).astype(np.float32)


@pytest.mark.parametrize("name", ["lenet", "svhn", "cifar", "alexnet"])
class TestBatchInvariance:
    def test_singles_match_stacked(self, name):
        model = build_model(name, np.random.default_rng(0), width=0.5).eval()
        executor = BatchInvariantExecutor(model.net)
        batch = _random_batch(model, 6)
        stacked = executor(batch)
        singles = np.concatenate([executor(batch[i : i + 1]) for i in range(6)])
        np.testing.assert_array_equal(stacked, singles)

    def test_uneven_chunks_match_stacked(self, name):
        model = build_model(name, np.random.default_rng(0), width=0.5).eval()
        executor = BatchInvariantExecutor(model.net)
        batch = _random_batch(model, 7, seed=3)
        stacked = executor(batch)
        chunked = np.concatenate(
            [executor(batch[s]) for s in (slice(0, 3), slice(3, 4), slice(4, 7))]
        )
        np.testing.assert_array_equal(stacked, chunked)

    def test_close_to_training_path_forward(self, name):
        model = build_model(name, np.random.default_rng(0), width=0.5).eval()
        executor = BatchInvariantExecutor(model.net)
        batch = _random_batch(model, 4, seed=5)
        with no_grad():
            plain = model.net(Tensor(batch)).numpy()
        np.testing.assert_allclose(executor(batch), plain, atol=1e-5, rtol=1e-5)


class TestExecutorSafety:
    def test_results_survive_later_calls(self, lenet_bundle):
        """Outputs must not alias reused scratch buffers."""
        executor = BatchInvariantExecutor(lenet_bundle.model.net.slice(0, 4))
        rng = np.random.default_rng(0)
        a = rng.normal(size=(2, 1, 28, 28)).astype(np.float32)
        b = rng.normal(size=(2, 1, 28, 28)).astype(np.float32)
        first = executor(a)
        snapshot = first.copy()
        executor(b)
        np.testing.assert_array_equal(first, snapshot)

    def test_unknown_layer_falls_back_to_module(self):
        rng = np.random.default_rng(0)
        net = Sequential(
            ("fc", Linear(5, 4, rng=rng)),
            ("tanh", Tanh()),  # no fast kernel registered
        ).eval()
        executor = BatchInvariantExecutor(net)
        x = rng.normal(size=(3, 5)).astype(np.float32)
        with no_grad():
            expected = net(Tensor(x)).numpy()
        np.testing.assert_allclose(executor(x), expected, atol=1e-6)

    def test_row_blocked_linear_matches_gemm(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(9, 30)).astype(np.float32)
        w = rng.normal(size=(12, 30)).astype(np.float32)
        bias = rng.normal(size=12).astype(np.float32)
        out = batch_invariant_linear(x, w, bias)
        np.testing.assert_allclose(out, x @ w.T + bias, atol=1e-5)
        # And the defining property: rows are geometry-independent.
        per_row = np.concatenate(
            [batch_invariant_linear(x[i : i + 1], w, bias) for i in range(9)]
        )
        np.testing.assert_array_equal(out, per_row)
