"""Tests for the op-program IR: lowering, rewrites, buffer plans, costs.

The executor backends' behaviour under the IR is covered by the
differential suites in ``test_native_kernels.py`` / ``test_executor.py``;
this file pins the IR itself — the single lowering pass, the rewrite
pipeline's legality conditions, the buffer-lifetime plan, the environment
configuration, and the planner/cost-model integration (IR-derived MACs
must equal the historical closed-form values, and plans on the stock nets
must not move).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import ir, layer_macs, plan_batch_window, profile_network
from repro.edge.quantization import QuantizationParams
from repro.errors import ConfigurationError
from repro.models import build_model
from repro.nn import Conv2d, Linear, MaxPool2d, ReLU, Sequential
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import BatchNorm2d


@pytest.fixture(scope="module")
def lenet():
    return build_model("lenet", np.random.default_rng(0), width=1.0).eval()


def _rows(net: Sequential) -> list[tuple]:
    return [(i, m) for i, m in enumerate(net.layers())]


def _lenet_like(rng) -> Sequential:
    net = Sequential(
        Conv2d(1, 6, 5, padding=2, rng=rng), ReLU(), MaxPool2d(2, 2),
        Conv2d(6, 16, 5, rng=rng), ReLU(), MaxPool2d(2, 2),
        Flatten(), Linear(16 * 5 * 5, 10, rng=rng),
    )
    return net.eval()


PARAMS8 = QuantizationParams(scale=0.05, zero_point=7, bits=8)
PARAMS16 = QuantizationParams(scale=0.001, zero_point=1000, bits=16)


class TestCanonicalLowering:
    def test_shapes_and_kinds(self):
        net = _lenet_like(np.random.default_rng(0))
        program = ir.lower(_rows(net), (1, 28, 28), rewrites=())
        assert [op.kind for op in program.ops] == [
            "conv2d", "relu", "maxpool2d",
            "conv2d", "relu", "maxpool2d",
            "flatten", "linear",
        ]
        assert program.in_spec == ir.TensorSpec((1, 28, 28))
        assert program.out_spec == ir.TensorSpec((10,))
        conv0 = program.ops[0]
        assert conv0.out_spec.shape == (6, 28, 28)
        assert conv0.weight.shape == (6, 25)
        assert program.ops[3].out_spec.shape == (16, 10, 10)
        assert program.rewrites == ()

    def test_eval_dropout_lowers_to_nothing(self):
        net = Sequential(
            Linear(8, 4, rng=np.random.default_rng(0)), Dropout(0.5)
        ).eval()
        program = ir.lower(_rows(net), (8,), rewrites=())
        assert [op.kind for op in program.ops] == ["linear"]

    def test_segmentation_splits_on_unsupported(self):
        net = Sequential(
            Conv2d(1, 4, 3, rng=np.random.default_rng(0)),
            BatchNorm2d(4),
            ReLU(),
        ).eval()
        rows = [(i, m, None) for i, m in enumerate(net.layers())]
        kinds = [kind for kind, _ in ir.segment_modules(rows)]
        assert kinds == ["ir", "python", "ir"]

    def test_geometry_mismatch_raises(self):
        net = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(0))).eval()
        with pytest.raises(ConfigurationError):
            ir.lower(_rows(net), (1, 8, 8), rewrites=())


class TestRewrites:
    def test_fuse_relu(self):
        net = _lenet_like(np.random.default_rng(0))
        program = ir.lower(_rows(net), (1, 28, 28), rewrites=(ir.FUSE_RELU,))
        assert ir.FUSE_RELU in program.rewrites
        kinds = [op.kind for op in program.ops]
        assert "relu" not in kinds
        assert all(op.relu for op in program.ops if op.kind == "conv2d")
        # The fused op keeps both source layer indices.
        assert program.ops[0].source == (0, 1)

    def test_fuse_conv_pool_requires_direct_eligibility(self):
        net = _lenet_like(np.random.default_rng(0))
        program = ir.lower(
            _rows(net), (1, 28, 28),
            rewrites=(ir.FUSE_RELU, ir.FUSE_CONV_POOL),
        )
        assert ir.FUSE_CONV_POOL in program.rewrites
        assert [op.kind for op in program.ops] == [
            "conv2d", "conv2d", "flatten", "linear"
        ]
        conv0 = program.ops[0]
        assert conv0.pool and conv0.relu
        assert conv0.out_spec.shape == (6, 14, 14)  # pooled
        assert conv0.oh == 28 and conv0.ow == 28    # conv-plane geometry

    def test_narrow_conv_keeps_standalone_pool(self):
        # ow < DIRECT_CONV_MIN_OW: the direct kernel (and hence the fused
        # pool) must not engage.
        net = Sequential(
            Conv2d(1, 4, 3, rng=np.random.default_rng(0)), MaxPool2d(2, 2)
        ).eval()
        program = ir.lower(
            _rows(net), (1, 8, 8), rewrites=(ir.FUSE_CONV_POOL,)
        )
        assert [op.kind for op in program.ops] == ["conv2d", "maxpool2d"]
        assert program.rewrites == ()

    def test_stride_2_pool_not_fused_unless_2x2(self):
        net = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=np.random.default_rng(0)),
            MaxPool2d(3, 2),
        ).eval()
        program = ir.lower(
            _rows(net), (1, 16, 16), rewrites=(ir.FUSE_CONV_POOL,)
        )
        assert [op.kind for op in program.ops] == ["conv2d", "maxpool2d"]

    def test_int8_ingest_marks_first_conv(self):
        net = _lenet_like(np.random.default_rng(0))
        program = ir.lower(
            _rows(net), (1, 28, 28),
            quantization=PARAMS8, rewrites=(ir.INT8_INGEST,),
        )
        assert ir.INT8_INGEST in program.rewrites
        assert program.consumes_codes
        assert program.in_spec.dtype == "u8"
        assert program.ops[0].dequant == PARAMS8
        assert program.ops[0].in_spec.dtype == "u8"
        # Everything downstream stays float.
        assert all(op.in_spec.dtype == "f32" for op in program.ops[1:])
        assert program.out_spec.dtype == "f32"

    def test_int8_ingest_16bit_uses_u16(self):
        net = Sequential(Linear(12, 3, rng=np.random.default_rng(0))).eval()
        program = ir.lower(
            _rows(net), (12,), quantization=PARAMS16,
            rewrites=(ir.INT8_INGEST,),
        )
        assert program.in_spec.dtype == "u16"

    def test_int8_ingest_flows_through_leading_flatten(self):
        net = Sequential(
            Flatten(), Linear(12, 3, rng=np.random.default_rng(0))
        ).eval()
        program = ir.lower(
            _rows(net), (3, 2, 2), quantization=PARAMS8,
            rewrites=(ir.INT8_INGEST,),
        )
        assert program.consumes_codes
        assert program.ops[0].kind == "flatten"
        assert program.ops[0].in_spec.dtype == "u8"
        assert program.ops[0].out_spec.dtype == "u8"
        assert program.ops[1].dequant == PARAMS8

    def test_int8_ingest_skipped_when_first_op_not_gemm(self):
        net = Sequential(
            ReLU(), Conv2d(1, 4, 3, rng=np.random.default_rng(0))
        ).eval()
        program = ir.lower(
            _rows(net), (1, 8, 8), quantization=PARAMS8,
            rewrites=(ir.INT8_INGEST,),
        )
        assert not program.consumes_codes
        assert program.rewrites == ()
        assert program.ops[0].dequant is None

    def test_fold_epilogue_add(self):
        net = _lenet_like(np.random.default_rng(0))
        program = ir.lower(
            _rows(net), (1, 28, 28), epilogue_add=True,
            rewrites=(ir.FOLD_EPILOGUE_ADD,),
        )
        assert program.extra == ir.EXTRA_FOLDED
        assert program.ops[-1].add_rows  # the linear head absorbs it
        assert sum(op.add_rows for op in program.ops) == 1

    def test_fold_epilogue_add_through_trailing_flatten(self):
        net = Sequential(
            Conv2d(1, 4, 3, rng=np.random.default_rng(0)), Flatten()
        ).eval()
        program = ir.lower(
            _rows(net), (1, 8, 8), epilogue_add=True,
            rewrites=(ir.FOLD_EPILOGUE_ADD,),
        )
        assert program.extra == ir.EXTRA_FOLDED
        assert program.ops[0].add_rows
        assert program.ops[-1].kind == "flatten"

    def test_epilogue_add_without_rewrite_stays_separate(self):
        net = _lenet_like(np.random.default_rng(0))
        program = ir.lower(_rows(net), (1, 28, 28), epilogue_add=True, rewrites=())
        assert program.extra == ir.EXTRA_SEPARATE
        assert not any(op.add_rows for op in program.ops)

    def test_fused_cost_charged_at_conv_plane(self):
        # Fusing the pool must not change the op's MAC price (the planner
        # pins Figure 6 products on it).
        net = _lenet_like(np.random.default_rng(0))
        fused = ir.lower(
            _rows(net), (1, 28, 28),
            rewrites=(ir.FUSE_RELU, ir.FUSE_CONV_POOL),
        )
        plain = ir.lower(_rows(net), (1, 28, 28), rewrites=())
        assert fused.ops[0].macs == plain.ops[0].macs
        assert sum(op.macs for op in fused.ops) == sum(
            op.macs for op in plain.ops
        )


class TestBufferPlan:
    def test_ping_pong_slots(self):
        net = _lenet_like(np.random.default_rng(0))
        program = ir.lower(_rows(net), (1, 28, 28), rewrites=())
        plan = ir.plan_buffers(program)
        # Flatten is free: 7 compute ops -> alternating slots, last is the
        # program output.
        assert plan.slots == (0, 1, 0, 1, 0, 1, -1)
        intermediates = [
            op.out_spec.elements
            for op in program.ops[:-1]
            if op.kind != "flatten"
        ]
        assert plan.arena_elements == max(intermediates)

    def test_direct_conv_scratch_includes_slack(self):
        net = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=np.random.default_rng(0))
        ).eval()
        program = ir.lower(_rows(net), (1, 16, 16), rewrites=())
        op = program.ops[0]
        assert ir.direct_conv_eligible(op)
        plan = ir.plan_buffers(program)
        assert plan.scratch_elements == 1 * 18 * 18 + 64

    def test_gemm_conv_scratch_is_im2col_panel(self):
        net = Sequential(
            Conv2d(1, 4, 3, stride=2, rng=np.random.default_rng(0))
        ).eval()
        program = ir.lower(_rows(net), (1, 16, 16), rewrites=())
        op = program.ops[0]
        assert not ir.direct_conv_eligible(op)
        plan = ir.plan_buffers(program)
        assert plan.scratch_elements == 1 * 3 * 3 * op.oh * op.ow


class TestEnvironment:
    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv(ir.DISABLE_REWRITES_ENV_VAR, "1")
        assert ir.default_rewrites() == ()

    def test_allowlist(self, monkeypatch):
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR, raising=False)
        monkeypatch.setenv(
            ir.SELECT_REWRITES_ENV_VAR, "fold_epilogue_add, fuse_relu"
        )
        # Pipeline order is fixed regardless of listing order.
        assert ir.default_rewrites() == (ir.FUSE_RELU, ir.FOLD_EPILOGUE_ADD)

    def test_kill_switch_beats_allowlist(self, monkeypatch):
        monkeypatch.setenv(ir.DISABLE_REWRITES_ENV_VAR, "1")
        monkeypatch.setenv(ir.SELECT_REWRITES_ENV_VAR, "fuse_relu")
        assert ir.default_rewrites() == ()

    def test_unknown_rewrite_raises(self, monkeypatch):
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR, raising=False)
        monkeypatch.setenv(ir.SELECT_REWRITES_ENV_VAR, "fuse_everything")
        with pytest.raises(ConfigurationError):
            ir.default_rewrites()

    def test_default_is_all(self, monkeypatch):
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR, raising=False)
        monkeypatch.delenv(ir.SELECT_REWRITES_ENV_VAR, raising=False)
        assert ir.default_rewrites() == ir.ALL_REWRITES


class TestCostModelIntegration:
    """The planner satellite: per-op costs come from the lowered IR and
    must reproduce the historical closed-form values exactly."""

    @pytest.mark.parametrize("name", ["lenet", "svhn"])
    def test_ir_macs_equal_closed_form(self, name):
        model = build_model(name, np.random.default_rng(0), width=0.5).eval()
        for cost in profile_network(model):
            module = model.net[cost.name]
            if isinstance(module, Conv2d):
                expected = (
                    cost.output_elements
                    * module.in_channels
                    * module.kernel_size[0]
                    * module.kernel_size[1]
                )
            elif isinstance(module, Linear):
                expected = module.in_features * module.out_features
            else:
                expected = 0
            assert cost.macs == expected

    def test_layer_macs_reads_the_ir(self):
        conv = Conv2d(3, 8, 3, rng=np.random.default_rng(0))
        op = ir.lower_module(conv, (3, 8, 8))
        assert layer_macs(conv, (1, 3, 8, 8), (1, 8, 6, 6)) == op.macs

    def test_program_costs_cover_every_op(self):
        net = _lenet_like(np.random.default_rng(0))
        program = ir.lower(_rows(net), (1, 28, 28), rewrites=())
        costs = ir.program_costs(program)
        assert len(costs) == len(program.ops)
        assert sum(c.macs for c in costs) == sum(op.macs for op in program.ops)
        assert all(c.output_bytes == 4 * c.output_elements for c in costs)

    def test_unsupported_layer_prices_zero(self):
        assert layer_macs(BatchNorm2d(4), (1, 4, 8, 8), (1, 4, 8, 8)) == 0


class TestPlannerGolden:
    """Golden plans on the stock nets: moving these numbers means the
    IR-backed cost model changed planner behaviour."""

    @pytest.mark.parametrize(
        "name,cut,window",
        [
            ("lenet", "conv0", 6),
            ("lenet", "conv1", 6),
            ("lenet", "conv2", 6),
            ("svhn", "conv0", 3),
            ("svhn", "conv1", 5),
            ("svhn", "conv2", 4),
        ],
    )
    def test_plan_stability(self, name, cut, window):
        model = build_model(name, np.random.default_rng(0), width=0.5).eval()
        plan = plan_batch_window(
            model,
            cut,
            target_slo_seconds=0.05,
            arrival_rate_rps=200.0,
            service_seconds_per_sample=2e-4,
        )
        assert plan.feasible
        assert plan.window == window


class TestLowerCache:
    """Regression tests for the lowered-program / buffer-plan memoisation.

    Serving re-lowers the same module list on every session and hot-swap;
    the cache must return the identical program object on a repeat request
    (so code planes and buffer plans are shared, not rebuilt) and must key
    on everything that changes the lowering.
    """

    def test_repeat_lowering_returns_same_object(self, rng):
        net = _lenet_like(rng)
        ir.lower_cache_clear()
        first = ir.lower(_rows(net), (1, 28, 28))
        info = ir.lower_cache_info()
        assert info["misses"] == 1 and info["hits"] == 0
        second = ir.lower(_rows(net), (1, 28, 28))
        assert second is first
        info = ir.lower_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_key_covers_rewrites_quantization_and_epilogue(self, rng, monkeypatch):
        # The distinct-entry assertions need the default pipeline on.
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR, raising=False)
        monkeypatch.delenv(ir.SELECT_REWRITES_ENV_VAR, raising=False)
        net = _lenet_like(rng)
        ir.lower_cache_clear()
        base = ir.lower(_rows(net), (1, 28, 28))
        no_rewrites = ir.lower(_rows(net), (1, 28, 28), rewrites=())
        quantised = ir.lower(_rows(net), (1, 28, 28), quantization=PARAMS8)
        epilogue = ir.lower(_rows(net), (1, 28, 28), epilogue_add=True)
        programs = {id(base), id(no_rewrites), id(quantised), id(epilogue)}
        assert len(programs) == 4
        assert ir.lower_cache_info()["size"] == 4
        # And each variant is itself cached.
        assert ir.lower(_rows(net), (1, 28, 28), quantization=PARAMS8) is quantised

    def test_distinct_modules_do_not_share_entries(self, rng):
        ir.lower_cache_clear()
        a = ir.lower(_rows(_lenet_like(rng)), (1, 28, 28))
        b = ir.lower(_rows(_lenet_like(rng)), (1, 28, 28))
        assert a is not b
        assert ir.lower_cache_info()["misses"] == 2

    def test_module_collection_evicts_entries(self, rng):
        import gc

        ir.lower_cache_clear()
        net = _lenet_like(rng)
        ir.lower(_rows(net), (1, 28, 28))
        assert ir.lower_cache_info()["size"] == 1
        del net
        gc.collect()
        assert ir.lower_cache_info()["size"] == 0

    def test_plan_buffers_memoised_per_program(self, rng, monkeypatch):
        # Rewritten vs rewrite-free must be distinct cache entries here.
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR, raising=False)
        monkeypatch.delenv(ir.SELECT_REWRITES_ENV_VAR, raising=False)
        net = _lenet_like(rng)
        ir.lower_cache_clear()
        program = ir.lower(_rows(net), (1, 28, 28))
        plan_a = ir.plan_buffers(program)
        plan_b = ir.plan_buffers(program)
        assert plan_b is plan_a
        # A fresh (uncached) equivalent program gets its own plan.
        other = ir.lower(_rows(net), (1, 28, 28), rewrites=())
        assert ir.plan_buffers(other) is not plan_a

    def test_clear_resets_counters_and_entries(self, rng):
        net = _lenet_like(rng)
        ir.lower(_rows(net), (1, 28, 28))
        ir.lower_cache_clear()
        info = ir.lower_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0}
