"""Tests for the device energy/latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import (
    EMBEDDED_GPU,
    MICROCONTROLLER,
    MOBILE_CPU,
    PROFILES,
    DeviceProfile,
    battery_inferences,
    cheapest_cut,
    cut_costs,
    energy_table,
    estimate_cut,
)
from repro.errors import ConfigurationError
from repro.models import build_model


@pytest.fixture(scope="module")
def lenet():
    return build_model("lenet", np.random.default_rng(0), width=0.5)


class TestProfiles:
    def test_builtin_profiles_registered(self):
        assert set(PROFILES) == {"microcontroller", "mobile_cpu", "embedded_gpu"}

    def test_device_classes_ordered_by_compute_efficiency(self):
        assert (
            MICROCONTROLLER.energy_per_mac_pj
            > MOBILE_CPU.energy_per_mac_pj
            > EMBEDDED_GPU.energy_per_mac_pj
        )

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceProfile("bad", 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            DeviceProfile("bad", 1.0, 1.0, 1.0, 1.0, radio_overhead_ms=-1.0)


class TestEstimates:
    def test_table_covers_every_cut(self, lenet):
        table = energy_table(lenet, MOBILE_CPU)
        assert [e.cut for e in table] == [c.cut for c in cut_costs(lenet)]

    def test_energy_components_positive(self, lenet):
        for estimate in energy_table(lenet, MICROCONTROLLER):
            assert estimate.compute_energy_mj > 0
            assert estimate.radio_energy_mj > 0
            assert estimate.total_energy_mj == pytest.approx(
                estimate.compute_energy_mj + estimate.radio_energy_mj
            )

    def test_compute_energy_monotone_in_depth(self, lenet):
        """Deeper cuts run more layers on the edge."""
        energies = [e.compute_energy_mj for e in energy_table(lenet, MOBILE_CPU)]
        assert energies == sorted(energies)

    def test_latency_includes_radio_overhead(self, lenet):
        estimate = energy_table(lenet, MICROCONTROLLER)[0]
        assert estimate.radio_latency_ms > MICROCONTROLLER.radio_overhead_ms

    def test_faster_device_lower_compute_latency(self, lenet):
        cost = cut_costs(lenet)[-1]
        slow = estimate_cut(cost, MICROCONTROLLER)
        fast = estimate_cut(cost, EMBEDDED_GPU)
        assert fast.compute_latency_ms < slow.compute_latency_ms

    def test_estimate_units_closed_form(self):
        """1 MMAC at 1 pJ/MAC = 1e6 pJ = 1e-3 mJ, checked end to end."""
        from repro.edge.costs import CutCost

        cost = CutCost(
            cut="c", conv_index=0, kilomacs=1e3, megabytes=1e-6, product=1e-3
        )
        profile = DeviceProfile("unit", 1.0, 1.0, 1000.0, 8.0, radio_overhead_ms=0.0)
        estimate = estimate_cut(cost, profile)
        assert estimate.compute_energy_mj == pytest.approx(1e-3)
        assert estimate.radio_energy_mj == pytest.approx(1e-6)
        assert estimate.compute_latency_ms == pytest.approx(1.0)
        assert estimate.radio_latency_ms == pytest.approx(1e-3)


class TestSelection:
    def test_cheapest_cut_energy(self, lenet):
        best = cheapest_cut(lenet, MICROCONTROLLER, metric="energy")
        table = energy_table(lenet, MICROCONTROLLER)
        assert best.total_energy_mj == min(e.total_energy_mj for e in table)

    def test_cheapest_cut_latency(self, lenet):
        best = cheapest_cut(lenet, MICROCONTROLLER, metric="latency")
        table = energy_table(lenet, MICROCONTROLLER)
        assert best.total_latency_ms == min(e.total_latency_ms for e in table)

    def test_unknown_metric(self, lenet):
        with pytest.raises(ConfigurationError):
            cheapest_cut(lenet, MOBILE_CPU, metric="karma")

    def test_radio_bound_device_prefers_smaller_payload(self, lenet):
        """On a radio-dominated device, the cut with the smallest output
        should beat the shallowest cut."""
        radio_bound = DeviceProfile(
            name="radio_bound",
            energy_per_mac_pj=0.01,
            radio_energy_per_byte_nj=10000.0,
            compute_rate_mmacs=1e5,
            uplink_mbps=0.1,
        )
        best = cheapest_cut(lenet, radio_bound, metric="energy")
        costs = {c.cut: c for c in cut_costs(lenet)}
        smallest = min(costs.values(), key=lambda c: c.megabytes)
        assert best.cut == smallest.cut


class TestBattery:
    def test_battery_inferences(self, lenet):
        estimate = energy_table(lenet, MICROCONTROLLER)[0]
        count = battery_inferences(estimate, battery_joules=3600.0)
        assert count > 0
        # Doubling the battery doubles the count (integer truncation aside).
        assert battery_inferences(estimate, 7200.0) >= 2 * count - 1

    def test_invalid_battery(self, lenet):
        estimate = energy_table(lenet, MOBILE_CPU)[0]
        with pytest.raises(ConfigurationError):
            battery_inferences(estimate, 0.0)
