"""Tests for the edge/cloud runtime and the cutting-point planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NoiseCollection, SplitInferenceModel
from repro.edge import Channel, CuttingPointPlanner, EdgeDevice, InferenceSession
from repro.errors import ConfigurationError, ModelError
from repro.models import build_model


@pytest.fixture()
def noise_collection(lenet_bundle, rng):
    split = SplitInferenceModel(lenet_bundle.model)
    collection = NoiseCollection(split.activation_shape)
    for _ in range(3):
        collection.add(
            rng.laplace(0, 0.05, size=split.activation_shape).astype(np.float32),
            accuracy=0.8,
            in_vivo_privacy=0.1,
        )
    return collection


@pytest.fixture()
def session(lenet_bundle, noise_collection):
    return InferenceSession(
        lenet_bundle.model,
        cut=lenet_bundle.model.last_conv_cut(),
        mean=np.zeros(1, dtype=np.float32),  # bundle data is already normalised
        std=np.ones(1, dtype=np.float32),
        noise=noise_collection,
        channel=Channel(bandwidth_mbps=50.0, latency_ms=5.0),
        rng=np.random.default_rng(0),
    )


class TestEdgeDevice:
    def test_normalisation_applied(self, lenet_bundle, rng):
        local, _ = lenet_bundle.model.split("conv0")
        device = EdgeDevice(local, mean=np.array([0.5]), std=np.array([2.0]))
        images = rng.random((2, 1, 28, 28)).astype(np.float32)
        normalized = device.normalize(images)
        np.testing.assert_allclose(normalized, (images - 0.5) / 2.0, rtol=1e-6)

    def test_invalid_std_rejected(self, lenet_bundle):
        local, _ = lenet_bundle.model.split("conv0")
        with pytest.raises(ConfigurationError):
            EdgeDevice(local, mean=np.zeros(1), std=np.zeros(1))

    def test_request_ids_increment(self, lenet_bundle, rng):
        local, _ = lenet_bundle.model.split("conv0")
        device = EdgeDevice(local, np.zeros(1), np.ones(1))
        images = rng.random((1, 1, 28, 28)).astype(np.float32)
        assert device.process(images).request_id == 0
        assert device.process(images).request_id == 1

    def test_noise_injected_when_present(self, lenet_bundle, noise_collection, rng):
        local, _ = lenet_bundle.model.split(lenet_bundle.model.last_conv_cut())
        images = rng.random((2, 1, 28, 28)).astype(np.float32)
        quiet = EdgeDevice(local, np.zeros(1), np.ones(1))
        noisy = EdgeDevice(
            local, np.zeros(1), np.ones(1), noise_collection, np.random.default_rng(0)
        )
        assert not np.allclose(
            quiet.process(images).tensor, noisy.process(images).tensor
        )


class TestInferenceSession:
    def test_end_to_end_accuracy_reasonable(self, lenet_bundle, session):
        images = lenet_bundle.test_set.images[:64]
        labels = lenet_bundle.test_set.labels[:64]
        predictions = session.classify(images)
        accuracy = (predictions == labels).mean()
        # Tiny noise collection: accuracy should be close to the clean one.
        assert accuracy > lenet_bundle.test_accuracy - 0.15

    def test_report_accounting(self, lenet_bundle, session):
        images = lenet_bundle.test_set.images[:8]
        session.infer(images)
        session.infer(images)
        report = session.report()
        assert report.requests == 2
        assert report.uplink_bytes > 0
        assert report.downlink_bytes > 0
        assert report.simulated_seconds > 0
        assert report.edge_kilomacs_per_sample > 0

    def test_uplink_smaller_at_deeper_cut(self, lenet_bundle, noise_collection):
        # LeNet conv2 output (C5) is far smaller than conv0's.
        images = lenet_bundle.test_set.images[:4]
        sizes = {}
        for cut in ["conv0", "conv2"]:
            session = InferenceSession(
                lenet_bundle.model, cut, np.zeros(1), np.ones(1),
                channel=Channel(),
            )
            session.infer(images)
            sizes[cut] = session.report().uplink_bytes
        assert sizes["conv2"] < sizes["conv0"]

    def test_noisy_channel_still_delivers(self, lenet_bundle):
        session = InferenceSession(
            lenet_bundle.model,
            "conv2",
            np.zeros(1),
            np.ones(1),
            channel=Channel(drop_rate=0.3, max_retries=20, rng=np.random.default_rng(1)),
        )
        logits = session.infer(lenet_bundle.test_set.images[:4])
        assert logits.shape == (4, 10)


class TestCuttingPointPlanner:
    @pytest.fixture()
    def svhn(self):
        return build_model("svhn", np.random.default_rng(0), width=0.5).eval()

    def test_recommends_dominant_cut(self, svhn):
        # Deeper = more private here; conv6 is also the cheapest, so it
        # dominates everything — the paper's SVHN conclusion.
        privacy = {f"conv{i}": 0.01 * (i + 1) for i in range(7)}
        planner = CuttingPointPlanner(svhn, privacy)
        assert planner.recommend().cut == "conv6"

    def test_pareto_frontier_filters_dominated(self, svhn):
        privacy = {f"conv{i}": 0.01 * (i + 1) for i in range(7)}
        planner = CuttingPointPlanner(svhn, privacy)
        frontier = planner.pareto_frontier()
        assert {c.cut for c in frontier} <= set(privacy)
        # conv6 must be on the frontier (cheapest & most private).
        assert "conv6" in {c.cut for c in frontier}

    def test_budget_constrains_choice(self, svhn):
        from repro.edge import cut_costs

        costs = {c.cut: c for c in cut_costs(svhn)}
        # Give the most private label to an expensive shallow cut.
        privacy = {"conv0": 0.9, "conv6": 0.5}
        planner = CuttingPointPlanner(svhn, privacy)
        unconstrained = planner.recommend()
        assert unconstrained.cut == "conv0"
        tight = planner.recommend(cost_budget=costs["conv6"].product * 1.01)
        assert tight.cut == "conv6"

    def test_budget_infeasible(self, svhn):
        planner = CuttingPointPlanner(svhn, {"conv0": 0.5})
        with pytest.raises(ModelError):
            planner.recommend(cost_budget=1e-12)

    def test_unknown_cut_rejected(self, svhn):
        with pytest.raises(ModelError):
            CuttingPointPlanner(svhn, {"conv42": 0.5})

    def test_empty_privacy_rejected(self, svhn):
        with pytest.raises(ModelError):
            CuttingPointPlanner(svhn, {})

    def test_ranked_order(self, svhn):
        privacy = {"conv0": 0.1, "conv3": 0.5, "conv6": 0.5}
        ranked = CuttingPointPlanner(svhn, privacy).ranked()
        assert ranked[0].ex_vivo_privacy == 0.5
        assert ranked[-1].cut == "conv0"
        # Equal privacy: cheaper first.
        assert ranked[0].cost.product <= ranked[1].cost.product
