"""Differential fuzz suite for the compiled serving kernels.

The native executor backend (:mod:`repro.edge._fastexec`) must agree with
the pure-numpy executor to float32 precision on *any* layer geometry, and
must be bitwise batch-invariant and deterministic on its own.  These
tests sweep randomized shapes/strides/paddings/batch geometries through
both backends and compare:

* conv / linear / maxpool networks, element-close across backends
  (float64-referenced tolerance);
* bitwise equality of stacked vs per-request execution under the native
  backend (the serving parity foundation);
* bitwise run-to-run determinism, including across freshly-built
  executors;
* the pure-numpy fallback is always available and selected when the
  native kernels are disabled;
* **per-rewrite axis** (``TestRewriteDifferential``): every IR rewrite
  toggled on/off — including quantised-code inputs and the noise-add
  epilogue — must be f32-close across backends and across togglings, and
  bitwise batch-invariant / run-to-run deterministic within one backend
  at a fixed toggling.

Shared-infrastructure checks for :mod:`repro.native` (source-hash caching,
``REPRO_KERNEL_DIR``) ride along at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import native
from repro.edge import _fastexec, ir
from repro.edge.executor import BatchInvariantExecutor
from repro.edge.quantization import calibrate, quantize
from repro.errors import ConfigurationError
from repro.nn import Linear, Sequential
from repro.nn.im2col import conv_output_size
from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.pooling import MaxPool2d

requires_kernel = pytest.mark.skipif(
    not _fastexec.available(), reason="no C compiler for the native kernels"
)

#: Tolerance for native-vs-numpy agreement: both are float32 pipelines
#: with different (fixed) accumulation orders, so they straddle the
#: float64 result by a few ulps each.
ATOL, RTOL = 2e-4, 2e-4


def _fuzz_conv_geometry(rng):
    """One random conv (+optional pool) geometry that stays positive."""
    c_in = int(rng.integers(1, 5))
    kh, kw = int(rng.integers(1, 5)), int(rng.integers(1, 5))
    sh, sw = int(rng.integers(1, 3)), int(rng.integers(1, 3))
    ph, pw = int(rng.integers(0, 3)), int(rng.integers(0, 3))
    h = int(rng.integers(max(1, kh - 2 * ph), 20) + kh)
    w = int(rng.integers(max(1, kw - 2 * pw), 40) + kw)
    c_out = int(rng.integers(1, 10))
    return c_in, h, w, c_out, (kh, kw), (sh, sw), (ph, pw)


def _executor_pair(net):
    return (
        BatchInvariantExecutor(net, kernel_backend="native"),
        BatchInvariantExecutor(net, kernel_backend="numpy"),
    )


@requires_kernel
class TestConvFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_conv_relu_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        c_in, h, w, c_out, kernel, stride, padding = _fuzz_conv_geometry(rng)
        net = Sequential(
            ("conv", Conv2d(c_in, c_out, kernel, stride, padding, rng=rng)),
            ("relu", ReLU()),
        ).eval()
        n = int(rng.integers(1, 7))
        x = rng.normal(size=(n, c_in, h, w)).astype(np.float32)
        native_ex, numpy_ex = _executor_pair(net)
        np.testing.assert_allclose(
            native_ex(x), numpy_ex(x), atol=ATOL, rtol=RTOL
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_conv_batch_invariance_bitwise(self, seed):
        """Any split of a batch reproduces the stacked result exactly."""
        rng = np.random.default_rng(100 + seed)
        c_in, h, w, c_out, kernel, stride, padding = _fuzz_conv_geometry(rng)
        net = Sequential(
            ("conv", Conv2d(c_in, c_out, kernel, stride, padding, rng=rng)),
        ).eval()
        executor = BatchInvariantExecutor(net, kernel_backend="native")
        n = int(rng.integers(2, 9))
        x = rng.normal(size=(n, c_in, h, w)).astype(np.float32)
        stacked = executor(x)
        # Random chunking of the same rows.
        cuts = sorted(
            set(rng.integers(1, n, size=min(3, n - 1)).tolist()) | {0, n}
        )
        chunked = np.concatenate(
            [executor(x[a:b]) for a, b in zip(cuts, cuts[1:])]
        )
        np.testing.assert_array_equal(stacked, chunked)

    def test_direct_and_gemm_paths_both_exercised(self):
        """The fuzzed ranges cover both conv lowerings (fixed geometries)."""
        rng = np.random.default_rng(0)
        # ow = 28 -> direct kernel; ow = 4 (stride 2) -> im2col GEMM.
        for geometry, expected in (
            (dict(h=28, w=28, stride=1, padding=2), _fastexec.OP_CONV2D_DIRECT),
            (dict(h=11, w=11, stride=2, padding=0), _fastexec.OP_CONV2D),
        ):
            net = Sequential(
                ("conv", Conv2d(2, 3, 5, geometry["stride"],
                                geometry["padding"], rng=rng)),
            ).eval()
            executor = BatchInvariantExecutor(net, kernel_backend="native")
            x = rng.normal(
                size=(2, 2, geometry["h"], geometry["w"])
            ).astype(np.float32)
            numpy_out = BatchInvariantExecutor(net, kernel_backend="numpy")(x)
            np.testing.assert_allclose(executor(x), numpy_out, atol=ATOL, rtol=RTOL)
            program = next(iter(executor._programs.values()))
            assert program._records[0, 0] == expected

    def test_single_position_conv_uses_dot_kernel(self):
        """OH*OW == 1 convs reroute to the lane-blocked dot kernel."""
        rng = np.random.default_rng(3)
        net = Sequential(
            ("conv", Conv2d(8, 60, 5, 1, 0, rng=rng)),
            ("relu", ReLU()),
        ).eval()
        x = rng.normal(size=(5, 8, 5, 5)).astype(np.float32)
        native_ex, numpy_ex = _executor_pair(net)
        assert native_ex(x).shape == (5, 60, 1, 1)
        np.testing.assert_allclose(native_ex(x), numpy_ex(x), atol=ATOL, rtol=RTOL)


@requires_kernel
class TestPoolLinearFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_maxpool_matches_numpy(self, seed):
        rng = np.random.default_rng(200 + seed)
        c = int(rng.integers(1, 6))
        kh, kw = int(rng.integers(1, 4)), int(rng.integers(1, 4))
        sh, sw = int(rng.integers(1, 4)), int(rng.integers(1, 4))
        ph, pw = int(rng.integers(0, (kh // 2) + 1)), int(rng.integers(0, (kw // 2) + 1))
        h = int(rng.integers(kh, 20))
        w = int(rng.integers(kw, 20))
        net = Sequential(
            ("pool", MaxPool2d((kh, kw), (sh, sw), (ph, pw))),
        ).eval()
        n = int(rng.integers(1, 6))
        x = rng.normal(size=(n, c, h, w)).astype(np.float32)
        native_ex, numpy_ex = _executor_pair(net)
        # Max of identical floats: bitwise equality across backends.
        np.testing.assert_array_equal(native_ex(x), numpy_ex(x))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_linear_stack_matches_numpy(self, seed):
        rng = np.random.default_rng(300 + seed)
        sizes = [int(rng.integers(1, 70)) for _ in range(3)]
        net = Sequential(
            ("fc0", Linear(sizes[0], sizes[1], rng=rng)),
            ("relu", ReLU()),
            ("fc1", Linear(sizes[1], sizes[2], rng=rng)),
        ).eval()
        n = int(rng.integers(1, 9))
        x = rng.normal(size=(n, sizes[0])).astype(np.float32)
        native_ex, numpy_ex = _executor_pair(net)
        np.testing.assert_allclose(native_ex(x), numpy_ex(x), atol=ATOL, rtol=RTOL)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_backbone_like_stack(self, seed):
        """conv-relu-pool-conv-relu-flatten-linear, random geometry."""
        rng = np.random.default_rng(400 + seed)
        c_in = int(rng.integers(1, 4))
        c_mid = int(rng.integers(2, 8))
        h = w = int(rng.integers(12, 30))
        net_layers = [
            ("conv0", Conv2d(c_in, c_mid, 3, 1, 1, rng=rng)),
            ("relu0", ReLU()),
            ("pool0", MaxPool2d(2)),
            ("conv1", Conv2d(c_mid, c_mid + 2, 3, 1, 0, rng=rng)),
            ("relu1", ReLU()),
            ("flat", Flatten()),
        ]
        oh = conv_output_size(h, 3, 1, 1) // 2
        oh = conv_output_size(oh, 3, 1, 0)
        features = (c_mid + 2) * oh * oh
        net_layers.append(("head", Linear(features, 10, rng=rng)))
        net = Sequential(*net_layers).eval()
        n = int(rng.integers(1, 6))
        x = rng.normal(size=(n, c_in, h, w)).astype(np.float32)
        native_ex, numpy_ex = _executor_pair(net)
        np.testing.assert_allclose(native_ex(x), numpy_ex(x), atol=ATOL, rtol=RTOL)
        singles = np.concatenate([native_ex(x[i : i + 1]) for i in range(n)])
        np.testing.assert_array_equal(native_ex(x), singles)


@requires_kernel
class TestDeterminism:
    def test_fresh_executors_agree_bitwise(self):
        rng = np.random.default_rng(7)
        net = Sequential(
            ("conv", Conv2d(2, 4, 3, 1, 1, rng=rng)),
            ("relu", ReLU()),
            ("pool", MaxPool2d(2)),
        ).eval()
        x = rng.normal(size=(4, 2, 12, 12)).astype(np.float32)
        first = BatchInvariantExecutor(net, kernel_backend="native")(x)
        second = BatchInvariantExecutor(net, kernel_backend="native")(x)
        np.testing.assert_array_equal(first, second)

    def test_results_survive_later_calls(self):
        rng = np.random.default_rng(8)
        net = Sequential(("conv", Conv2d(1, 3, 3, 1, 1, rng=rng))).eval()
        executor = BatchInvariantExecutor(net, kernel_backend="native")
        a = rng.normal(size=(2, 1, 10, 10)).astype(np.float32)
        b = rng.normal(size=(2, 1, 10, 10)).astype(np.float32)
        first = executor(a)
        snapshot = first.copy()
        executor(b)
        np.testing.assert_array_equal(first, snapshot)

    def test_warm_precompiles_programs(self):
        rng = np.random.default_rng(9)
        net = Sequential(("conv", Conv2d(1, 3, 3, 1, 1, rng=rng))).eval()
        executor = BatchInvariantExecutor(net, kernel_backend="native")
        assert not executor._programs
        out_shape = executor.warm((8, 1, 10, 10))
        assert out_shape == (8, 3, 10, 10)
        assert executor._programs  # program exists before the first batch

    def test_float64_input_falls_back_to_numpy_plan(self):
        rng = np.random.default_rng(10)
        net = Sequential(("fc", Linear(6, 4, rng=rng))).eval()
        executor = BatchInvariantExecutor(net, kernel_backend="native")
        x64 = rng.normal(size=(3, 6))
        numpy_ex = BatchInvariantExecutor(net, kernel_backend="numpy")
        np.testing.assert_array_equal(executor(x64), numpy_ex(x64))
        assert executor(x64).dtype == np.float64


def _rewrite_net(rng):
    """A split-backbone-shaped stack on which every rewrite can fire."""
    c_in = int(rng.integers(1, 4))
    c_mid = int(rng.integers(3, 8))
    h = w = int(rng.integers(14, 26))
    oh = (conv_output_size(h, 3, 1, 1)) // 2
    oh = conv_output_size(oh, 3, 1, 0)
    features = (c_mid + 2) * oh * oh
    return Sequential(
        ("conv0", Conv2d(c_in, c_mid, 3, 1, 1, rng=rng)),
        ("relu0", ReLU()),
        ("pool0", MaxPool2d(2)),
        ("conv1", Conv2d(c_mid, c_mid + 2, 3, 1, 0, rng=rng)),
        ("relu1", ReLU()),
        ("flat", Flatten()),
        ("head", Linear(features, 10, rng=rng)),
    ).eval(), (c_in, h, w)


def _rewrite_backends():
    backends = ["numpy"]
    if _fastexec.available():
        backends.append("native")
    return backends


class TestRewriteDifferential:
    """The per-rewrite fuzz axis: each rewrite toggled on/off.

    ``baseline`` is the rewrite-free lowering; each case runs it against
    the single-rewrite lowering on the same inputs.  Quantised codes (for
    ``int8_ingest``) and the noise-add epilogue (for
    ``fold_epilogue_add``) are exercised for *every* rewrite so toggling
    one never perturbs the others' operands.
    """

    CASES = [(name, seed) for name in ir.ALL_REWRITES for seed in range(3)]

    def _run(self, executor, x, codes, params, noise):
        return (
            executor(x),
            executor(codes, quantization=params),
            executor(codes, quantization=params, epilogue_add=noise),
        )

    @pytest.mark.parametrize("rewrite,seed", CASES)
    def test_rewrite_toggling_is_f32_close_and_invariant(self, rewrite, seed):
        rng = np.random.default_rng(1000 + 31 * seed)
        net, (c_in, h, w) = _rewrite_net(rng)
        n = int(rng.integers(2, 7))
        x = rng.normal(size=(n, c_in, h, w)).astype(np.float32)
        params = calibrate(x, bits=8)
        codes = quantize(x, params).astype(np.uint8)
        out_shape = BatchInvariantExecutor(net, "numpy", ir_rewrites=())(
            x[:1]
        ).shape[1:]
        noise = rng.normal(size=(n, *out_shape)).astype(np.float32)
        per_backend = {}
        for backend in _rewrite_backends():
            on = BatchInvariantExecutor(net, backend, ir_rewrites=(rewrite,))
            off = BatchInvariantExecutor(net, backend, ir_rewrites=())
            results_on = self._run(on, x, codes, params, noise)
            results_off = self._run(off, x, codes, params, noise)
            # Toggling a rewrite only moves results within f32 round-off.
            for a, b in zip(results_on, results_off):
                np.testing.assert_allclose(a, b, atol=ATOL, rtol=RTOL)
            # Bitwise batch invariance at the fixed (on) toggling,
            # quantised + noise path included.
            fresh = BatchInvariantExecutor(net, backend, ir_rewrites=(rewrite,))
            singles = np.concatenate(
                [
                    fresh(
                        codes[i : i + 1],
                        quantization=params,
                        epilogue_add=noise[i : i + 1],
                    )
                    for i in range(n)
                ]
            )
            np.testing.assert_array_equal(results_on[2], singles)
            # Bitwise run-to-run determinism across fresh executors.
            again = BatchInvariantExecutor(net, backend, ir_rewrites=(rewrite,))
            for a, b in zip(results_on, self._run(again, x, codes, params, noise)):
                np.testing.assert_array_equal(a, b)
            per_backend[backend] = results_on
        if len(per_backend) == 2:
            for a, b in zip(per_backend["native"], per_backend["numpy"]):
                np.testing.assert_allclose(a, b, atol=ATOL, rtol=RTOL)

    def test_each_rewrite_actually_fires_on_the_fuzz_net(self):
        """Guards the axis against vacuity: the fuzz net must trigger
        every rewrite it claims to toggle."""
        rng = np.random.default_rng(77)
        net, (c_in, h, w) = _rewrite_net(rng)
        rows = [(i, m) for i, m in enumerate(net.layers())]
        params = calibrate(
            rng.normal(size=(4, c_in, h, w)).astype(np.float32), bits=8
        )
        program = ir.lower(
            rows,
            (c_in, h, w),
            quantization=params,
            epilogue_add=True,
            rewrites=ir.ALL_REWRITES,
        )
        assert set(program.rewrites) == set(ir.ALL_REWRITES)

    @requires_kernel
    def test_int8_ingest_skips_the_dequant_copy(self):
        rng = np.random.default_rng(78)
        net, (c_in, h, w) = _rewrite_net(rng)
        x = rng.normal(size=(4, c_in, h, w)).astype(np.float32)
        params = calibrate(x, bits=8)
        codes = quantize(x, params).astype(np.uint8)
        on = BatchInvariantExecutor(net, "native", ir_rewrites=ir.ALL_REWRITES)
        on(codes, quantization=params)
        assert on.ingest_dequants == 0
        off = BatchInvariantExecutor(net, "native", ir_rewrites=())
        off(codes, quantization=params)
        assert off.ingest_dequants == 1

    #: int8_weights axis: the one accuracy-affecting rewrite.  Gated by
    #: label agreement instead of f32-closeness (the quantised-weights
    #: carve-out in the standing IR contract); determinism/invariance
    #: requirements are unchanged.  ``composed`` also feeds quantised
    #: activation codes so the fully integer u8×i8 path is exercised.
    INT8W_CASES = [
        (seed, composed) for seed in range(3) for composed in (False, True)
    ]

    @pytest.mark.parametrize("seed,composed", INT8W_CASES)
    def test_int8_weights_label_agreement_and_invariance(
        self, seed, composed, monkeypatch
    ):
        # weight_bits=8 injects int8_weights only on top of a live
        # pipeline; pin the default one regardless of ambient env.
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR, raising=False)
        monkeypatch.delenv(ir.SELECT_REWRITES_ENV_VAR, raising=False)
        rng = np.random.default_rng(2000 + 31 * seed)
        net, (c_in, h, w) = _rewrite_net(rng)
        n = int(rng.integers(2, 7))
        x = rng.normal(size=(n, c_in, h, w)).astype(np.float32)
        params = calibrate(x, bits=8)
        codes = quantize(x, params).astype(np.uint8)

        def run(executor):
            if composed:
                return executor(codes, quantization=params)
            return executor(x)

        per_backend = {}
        for backend in _rewrite_backends():
            on = BatchInvariantExecutor(net, backend, weight_bits=8)
            off = BatchInvariantExecutor(net, backend)
            assert ir.INT8_WEIGHTS in on.rewrites
            assert ir.INT8_WEIGHTS not in off.rewrites
            out_on, out_off = run(on), run(off)
            # Label-agreement gate: weight quantisation may only flip a
            # prediction whose f32 top-2 margin was already a near-tie.
            flipped = out_on.argmax(axis=1) != out_off.argmax(axis=1)
            if flipped.any():
                top2 = np.sort(out_off[flipped], axis=1)[:, -2:]
                assert (top2[:, 1] - top2[:, 0] < 0.1).all()
            # Bitwise batch invariance at the fixed (on) toggling.
            fresh = BatchInvariantExecutor(net, backend, weight_bits=8)
            singles = np.concatenate(
                [
                    fresh(codes[i : i + 1], quantization=params)
                    if composed
                    else fresh(x[i : i + 1])
                    for i in range(n)
                ]
            )
            np.testing.assert_array_equal(out_on, singles)
            # Bitwise run-to-run determinism across fresh executors.
            again = BatchInvariantExecutor(net, backend, weight_bits=8)
            np.testing.assert_array_equal(out_on, run(again))
            per_backend[backend] = out_on
        if len(per_backend) == 2:
            np.testing.assert_allclose(
                per_backend["native"], per_backend["numpy"],
                atol=ATOL, rtol=RTOL,
            )

    def test_int8_weights_is_opt_in_only(self, monkeypatch):
        """Never in the default pipeline; ``weight_bits=8`` injects it;
        the kill-switch still pins the canonical f32 path."""
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR, raising=False)
        monkeypatch.delenv(ir.SELECT_REWRITES_ENV_VAR, raising=False)
        net = Sequential(
            ("fc", Linear(6, 4, rng=np.random.default_rng(0)))
        ).eval()
        assert ir.INT8_WEIGHTS not in ir.default_rewrites()
        assert ir.INT8_WEIGHTS not in BatchInvariantExecutor(net, "numpy").rewrites
        on = BatchInvariantExecutor(net, "numpy", weight_bits=8)
        assert ir.INT8_WEIGHTS in on.rewrites
        monkeypatch.setenv(ir.DISABLE_REWRITES_ENV_VAR, "1")
        pinned = BatchInvariantExecutor(net, "numpy", weight_bits=8)
        assert pinned.rewrites == ()

    @requires_kernel
    def test_int8_weights_native_never_widens_codes(self, monkeypatch):
        """The acceptance assertion: zero f32 dequantised weight copies on
        the native backend, on both the float and fully integer paths."""
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR, raising=False)
        monkeypatch.delenv(ir.SELECT_REWRITES_ENV_VAR, raising=False)
        rng = np.random.default_rng(79)
        net, (c_in, h, w) = _rewrite_net(rng)
        x = rng.normal(size=(3, c_in, h, w)).astype(np.float32)
        params = calibrate(x, bits=8)
        codes = quantize(x, params).astype(np.uint8)
        nat = BatchInvariantExecutor(net, "native", weight_bits=8)
        nat(x)
        nat(codes, quantization=params)
        assert nat.weight_dequants == 0
        # The numpy float path does widen (once per code plane) — the
        # counter is what distinguishes the backends.
        np_ex = BatchInvariantExecutor(net, "numpy", weight_bits=8)
        np_ex(x)
        assert np_ex.weight_dequants > 0

    def test_rewrites_env_snapshot_at_construction(self, monkeypatch):
        net = Sequential(
            ("fc", Linear(6, 4, rng=np.random.default_rng(0)))
        ).eval()
        monkeypatch.setenv(ir.DISABLE_REWRITES_ENV_VAR, "1")
        executor = BatchInvariantExecutor(net, "numpy")
        assert executor.rewrites == ()
        monkeypatch.delenv(ir.DISABLE_REWRITES_ENV_VAR)
        assert executor.rewrites == ()  # snapshot, not re-read
        assert BatchInvariantExecutor(net, "numpy").rewrites == ir.ALL_REWRITES

    def test_unknown_ctor_rewrite_rejected(self):
        net = Sequential(
            ("fc", Linear(6, 4, rng=np.random.default_rng(0)))
        ).eval()
        with pytest.raises(ConfigurationError):
            BatchInvariantExecutor(net, "numpy", ir_rewrites=("fuse_everything",))


class TestBackendSelection:
    def test_invalid_backend_rejected(self):
        net = Sequential(("fc", Linear(3, 2, rng=np.random.default_rng(0)))).eval()
        with pytest.raises(ConfigurationError):
            BatchInvariantExecutor(net, kernel_backend="cuda")

    def test_numpy_backend_forced(self):
        net = Sequential(("fc", Linear(3, 2, rng=np.random.default_rng(0)))).eval()
        executor = BatchInvariantExecutor(net, kernel_backend="numpy")
        assert executor.backend == "numpy"

    def test_disable_env_forces_numpy_auto(self, monkeypatch):
        monkeypatch.setenv(native.DISABLE_ENV_VAR, "1")
        net = Sequential(("fc", Linear(3, 2, rng=np.random.default_rng(0)))).eval()
        executor = BatchInvariantExecutor(net, kernel_backend="auto")
        assert executor.backend == "numpy"
        with pytest.raises(ConfigurationError):
            BatchInvariantExecutor(net, kernel_backend="native")

    @requires_kernel
    def test_auto_picks_native_when_available(self):
        net = Sequential(("fc", Linear(3, 2, rng=np.random.default_rng(0)))).eval()
        assert BatchInvariantExecutor(net).backend == "native"


class TestSharedBuildPipeline:
    def test_source_digest_keys_artifacts(self):
        assert native.source_digest("int main;") != native.source_digest("int main2;")

    def test_kernel_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(native.DIR_ENV_VAR, str(tmp_path / "kcache"))
        assert native.kernel_dir() == tmp_path / "kcache"

    @requires_kernel
    def test_build_caches_artifact_on_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv(native.DIR_ENV_VAR, str(tmp_path / "kcache"))
        source = "int add_one(int x) { return x + 1; }\n"
        lib = native.build_library("testkernel", source)
        assert lib is not None
        artifact = (
            tmp_path / "kcache"
            / f"testkernel-{native.source_digest(source)}.so"
        )
        assert artifact.exists()
        assert lib.add_one(41) == 42
        # Second load comes from the cache (same digest, no recompile).
        assert native.build_library("testkernel", source) is not None

    def test_fastknn_shares_the_pipeline(self):
        from repro.privacy import _fastknn

        assert _fastknn._DISABLE_ENV_VAR == native.DISABLE_ENV_VAR
        assert _fastknn._DIR_ENV_VAR == native.DIR_ENV_VAR
