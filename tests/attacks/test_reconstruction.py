"""Tests for the reconstruction attacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    LinearInverter,
    NearestNeighbourInverter,
    evaluate_reconstruction,
)
from repro.errors import ConfigurationError, EstimatorError


@pytest.fixture()
def linear_channel(rng):
    """Inputs leaked through a random linear map plus small noise."""
    inputs = rng.standard_normal((120, 1, 6, 6)).astype(np.float32)
    mixing = rng.standard_normal((36, 20)).astype(np.float32)
    activations = inputs.reshape(120, 36) @ mixing
    activations += 0.01 * rng.standard_normal(activations.shape).astype(np.float32)
    return inputs, activations


class TestNearestNeighbour:
    def test_recovers_exact_corpus_members(self, linear_channel):
        inputs, activations = linear_channel
        attack = NearestNeighbourInverter(inputs, activations)
        recon = attack.reconstruct(activations[:5])
        np.testing.assert_allclose(recon, inputs[:5])

    def test_validates_pairing(self, rng):
        with pytest.raises(ConfigurationError):
            NearestNeighbourInverter(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_empty_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            NearestNeighbourInverter(np.zeros((0, 2)), np.zeros((0, 2)))

    def test_width_mismatch_rejected(self, linear_channel):
        inputs, activations = linear_channel
        attack = NearestNeighbourInverter(inputs, activations)
        with pytest.raises(EstimatorError):
            attack.reconstruct(np.zeros((2, 7)))

    def test_noise_degrades_nn_attack(self, linear_channel, rng):
        inputs, activations = linear_channel
        attack = NearestNeighbourInverter(inputs[:100], activations[:100])
        probe_inputs = inputs[100:]
        clean_recon = attack.reconstruct(activations[100:])
        noisy_obs = activations[100:] + 20.0 * rng.standard_normal(
            activations[100:].shape
        ).astype(np.float32)
        noisy_recon = attack.reconstruct(noisy_obs)
        clean = evaluate_reconstruction(probe_inputs, clean_recon, inputs[:100])
        noisy = evaluate_reconstruction(probe_inputs, noisy_recon, inputs[:100])
        assert noisy.mse >= clean.mse


class TestLinearInverter:
    def test_near_perfect_on_clean_linear_channel(self, linear_channel):
        inputs, activations = linear_channel
        attack = LinearInverter(ridge=1e-4).fit(inputs[:100], activations[:100])
        recon = attack.reconstruct(activations[100:])
        report = evaluate_reconstruction(inputs[100:], recon, inputs[:100])
        assert report.advantage > 0.2  # decodes much better than the mean

    def test_reconstruct_before_fit_rejected(self):
        with pytest.raises(EstimatorError):
            LinearInverter().reconstruct(np.zeros((2, 4)))

    def test_pairing_validated(self):
        with pytest.raises(ConfigurationError):
            LinearInverter().fit(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_tiny_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearInverter().fit(np.zeros((1, 2)), np.zeros((1, 2)))

    def test_invalid_ridge(self):
        with pytest.raises(ConfigurationError):
            LinearInverter(ridge=0.0)

    def test_output_shape_matches_inputs(self, linear_channel):
        inputs, activations = linear_channel
        attack = LinearInverter().fit(inputs, activations)
        recon = attack.reconstruct(activations[:7])
        assert recon.shape == (7, 1, 6, 6)

    def test_heavy_noise_collapses_advantage(self, linear_channel, rng):
        inputs, activations = linear_channel
        noisy = activations + 100.0 * rng.standard_normal(activations.shape).astype(
            np.float32
        )
        attack = LinearInverter().fit(inputs[:100], noisy[:100])
        recon = attack.reconstruct(noisy[100:])
        report = evaluate_reconstruction(inputs[100:], recon, inputs[:100])
        assert abs(report.advantage) < 0.3


class TestAgainstRealSplitModel:
    def test_shredder_noise_blunts_linear_inversion(self, lenet_bundle, rng):
        # End-to-end: invert LeNet's conv0 activations with and without
        # strong per-sample noise; noise must reduce the decoder advantage.
        from repro.core import SplitInferenceModel

        split = SplitInferenceModel(lenet_bundle.model, cut="conv0")
        activations, _ = split.materialize_activations(lenet_bundle.test_set)
        images = lenet_bundle.test_set.images
        half = len(images) // 2
        sigma = 4.0 * float(np.abs(activations).std())
        noisy = activations + rng.laplace(0, sigma, size=activations.shape).astype(
            np.float32
        )

        clean_attack = LinearInverter().fit(images[:half], activations[:half])
        clean_report = evaluate_reconstruction(
            images[half:], clean_attack.reconstruct(activations[half:]), images[:half]
        )
        noisy_attack = LinearInverter().fit(images[:half], noisy[:half])
        noisy_report = evaluate_reconstruction(
            images[half:], noisy_attack.reconstruct(noisy[half:]), images[:half]
        )
        assert clean_report.advantage > 0.1
        assert noisy_report.advantage < clean_report.advantage


class TestVectorisedMatchingParity:
    def test_blocked_matches_reference_loop(self, rng):
        # Well-separated corpus: distance gaps are O(1), far above any
        # ulp-level difference between GEMM geometries, so the chosen
        # indices must agree exactly.
        corpus_inputs = rng.normal(size=(40, 1, 6, 6)).astype(np.float32)
        corpus_acts = rng.normal(size=(40, 17)).astype(np.float32)
        inverter = NearestNeighbourInverter(corpus_inputs, corpus_acts)
        observed = corpus_acts[:15] + rng.normal(0, 0.05, size=(15, 17)).astype(np.float32)
        np.testing.assert_array_equal(
            inverter.reconstruct(observed),
            inverter.reconstruct_reference(observed),
        )

    def test_blocking_boundaries_do_not_change_matches(self, rng, monkeypatch):
        from repro.attacks import _matching

        corpus_inputs = rng.normal(size=(10, 4)).astype(np.float32)
        corpus_acts = rng.normal(size=(10, 8)).astype(np.float32)
        observed = rng.normal(size=(23, 8)).astype(np.float32)
        inverter = NearestNeighbourInverter(corpus_inputs, corpus_acts)
        unblocked = inverter.match_indices(observed)
        # Force tiny blocks: matches must agree (distance gaps dominate
        # any blocking-dependent rounding).
        monkeypatch.setattr(_matching, "BLOCK_ELEMENTS", 16)
        blocked = inverter.match_indices(observed)
        np.testing.assert_array_equal(unblocked, blocked)
