"""Tests for the property-inference attack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ActivationClassifierAttack, run_inference_attack
from repro.errors import ConfigurationError


@pytest.fixture()
def separable_channel(rng):
    """Activations that linearly encode a 3-class label."""
    labels = rng.integers(0, 3, size=150)
    centers = rng.standard_normal((3, 12)) * 4.0
    activations = centers[labels] + 0.3 * rng.standard_normal((150, 12))
    return activations.astype(np.float32), labels


class TestAttackMechanics:
    def test_learns_separable_channel(self, separable_channel, rng):
        activations, labels = separable_channel
        attack = ActivationClassifierAttack(epochs=40, rng=rng)
        attack.fit(activations[:100], labels[:100])
        report = attack.evaluate(activations[100:], labels[100:])
        assert report.accuracy > 0.8
        assert report.advantage > 0.3

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivationClassifierAttack().predict(np.zeros((2, 4)))

    def test_pairing_validated(self, rng):
        with pytest.raises(ConfigurationError):
            ActivationClassifierAttack(rng=rng).fit(np.zeros((3, 4)), np.zeros(4))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ActivationClassifierAttack(epochs=0)

    def test_chance_is_majority_class(self, separable_channel, rng):
        activations, labels = separable_channel
        attack = ActivationClassifierAttack(epochs=2, rng=rng)
        attack.fit(activations, labels)
        report = attack.evaluate(activations, labels)
        counts = np.bincount(labels)
        assert report.chance == pytest.approx(counts.max() / counts.sum())

    def test_pure_noise_gives_no_advantage(self, rng):
        activations = rng.standard_normal((200, 10)).astype(np.float32)
        labels = rng.integers(0, 2, size=200)
        report = run_inference_attack(
            activations[:150], labels[:150], activations[150:], labels[150:],
            rng=rng, epochs=15,
        )
        assert report.advantage < 0.2

    def test_property_fn_applied(self, separable_channel, rng):
        activations, labels = separable_channel
        report = run_inference_attack(
            activations[:100], labels[:100], activations[100:], labels[100:],
            property_fn=lambda y: y % 2, rng=rng, epochs=20,
        )
        # Parity of a learnable label is itself learnable.
        assert report.accuracy > 0.6


class TestAgainstRealSplitModel:
    def test_noise_reduces_attacker_advantage(self, lenet_bundle, rng):
        from repro.core import SplitInferenceModel

        split = SplitInferenceModel(lenet_bundle.model)
        activations, labels = split.materialize_activations(lenet_bundle.test_set)
        half = len(labels) // 2
        sigma = 6.0 * float(np.abs(activations).std())
        noisy = activations + rng.laplace(0, sigma, size=activations.shape).astype(
            np.float32
        )
        clean = run_inference_attack(
            activations[:half], labels[:half], activations[half:], labels[half:],
            rng=np.random.default_rng(0), epochs=25,
        )
        attacked = run_inference_attack(
            noisy[:half], labels[:half], noisy[half:], labels[half:],
            rng=np.random.default_rng(0), epochs=25,
        )
        assert clean.advantage > 0.12
        assert attacked.advantage < clean.advantage
