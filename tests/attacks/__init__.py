"""Test package."""
