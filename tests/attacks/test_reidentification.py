"""Tests for the re-identification (matching) attack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    ReidentificationAttack,
    ReidentificationReport,
    run_reidentification,
)
from repro.errors import ConfigurationError, EstimatorError


@pytest.fixture()
def pool(rng):
    return rng.normal(size=(40, 4, 5, 5)).astype(np.float32)


class TestRanking:
    def test_clean_observations_rank_self_first(self, pool):
        attack = ReidentificationAttack(pool)
        ranking = attack.rank_candidates(pool)
        np.testing.assert_array_equal(ranking[:, 0], np.arange(len(pool)))

    def test_ranking_shape(self, pool, rng):
        attack = ReidentificationAttack(pool)
        observed = pool[:7] + 0.01 * rng.normal(size=(7, 4, 5, 5))
        assert attack.rank_candidates(observed).shape == (7, 40)

    def test_width_mismatch_rejected(self, pool, rng):
        attack = ReidentificationAttack(pool)
        with pytest.raises(EstimatorError):
            attack.rank_candidates(rng.normal(size=(3, 2, 5, 5)))

    def test_tiny_pool_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            ReidentificationAttack(rng.normal(size=(1, 8)))


class TestEvaluate:
    def test_perfect_on_clean(self, pool):
        report = run_reidentification(pool, pool)
        assert report.top1_rate == 1.0
        assert report.topk_rate == 1.0
        assert report.mean_rank == 1.0

    def test_small_noise_keeps_identification(self, pool, rng):
        observed = pool + 0.05 * rng.normal(size=pool.shape).astype(np.float32)
        report = run_reidentification(pool, observed)
        assert report.top1_rate > 0.9

    def test_huge_noise_collapses_to_chance(self, pool, rng):
        observed = pool + 50.0 * rng.normal(size=pool.shape).astype(np.float32)
        report = run_reidentification(pool, observed)
        # With noise dwarfing the signal, top-1 should approach 1/pool.
        assert report.top1_rate < 0.2
        assert report.advantage < 0.2

    def test_noise_monotonically_degrades_attack(self, pool, rng):
        rates = []
        for sigma in (0.0, 1.0, 30.0):
            observed = pool + sigma * rng.normal(size=pool.shape).astype(np.float32)
            rates.append(run_reidentification(pool, observed).top1_rate)
        assert rates[0] >= rates[1] >= rates[2]

    def test_explicit_indices(self, pool, rng):
        subset = np.array([3, 17, 29])
        observed = pool[subset] + 0.01 * rng.normal(size=(3, 4, 5, 5)).astype(
            np.float32
        )
        attack = ReidentificationAttack(pool)
        report = attack.evaluate(observed, subset, k=3)
        assert report.top1_rate == 1.0
        assert report.pool_size == 40

    def test_topk_at_least_top1(self, pool, rng):
        observed = pool + 2.0 * rng.normal(size=pool.shape).astype(np.float32)
        report = run_reidentification(pool, observed, k=5)
        assert report.topk_rate >= report.top1_rate

    def test_chance_levels(self):
        report = ReidentificationReport(0.5, 0.8, 5, 20, 3.0)
        assert report.chance_top1 == pytest.approx(0.05)
        assert report.chance_topk == pytest.approx(0.25)
        assert 0.0 < report.advantage < 0.5


class TestValidation:
    def test_unpaired_rejected(self, pool):
        attack = ReidentificationAttack(pool)
        with pytest.raises(EstimatorError):
            attack.evaluate(pool[:5], np.arange(4))

    def test_empty_rejected(self, pool):
        attack = ReidentificationAttack(pool)
        with pytest.raises(EstimatorError):
            attack.evaluate(pool[:0], np.arange(0))

    def test_bad_k(self, pool):
        attack = ReidentificationAttack(pool)
        with pytest.raises(ConfigurationError):
            attack.evaluate(pool, np.arange(40), k=0)
        with pytest.raises(ConfigurationError):
            attack.evaluate(pool, np.arange(40), k=41)

    def test_indices_out_of_pool(self, pool):
        attack = ReidentificationAttack(pool)
        with pytest.raises(EstimatorError):
            attack.evaluate(pool[:2], np.array([0, 40]))

    def test_wrapper_requires_bijection_without_indices(self, pool):
        with pytest.raises(EstimatorError):
            run_reidentification(pool, pool[:10])


class TestProperties:
    @given(seed=st.integers(0, 2**16), pool_size=st.integers(4, 32))
    @settings(max_examples=20, deadline=None)
    def test_mean_rank_bounds(self, seed, pool_size):
        rng = np.random.default_rng(seed)
        pool = rng.normal(size=(pool_size, 6))
        observed = pool + rng.normal(size=pool.shape)
        report = run_reidentification(pool, observed, k=min(5, pool_size))
        assert 1.0 <= report.mean_rank <= pool_size
        assert 0.0 <= report.top1_rate <= report.topk_rate <= 1.0

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_constant_shift_does_not_hide_identity(self, seed):
        """A fixed tensor added to every activation preserves all pairwise
        distances — the re-identification analogue of I(x; a+c) = I(x; a)."""
        rng = np.random.default_rng(seed)
        pool = rng.normal(size=(16, 8))
        # Shift small relative to the pool spread: the true candidate's
        # distance ||s||² stays below typical cross distances.
        shift = 0.3 * rng.normal(size=(1, 8))
        report = run_reidentification(pool, pool + shift)
        assert report.top1_rate >= 0.5
        assert report.top1_rate > report.chance_top1


def _assert_rankings_equivalent(attack, a, b, observed):
    """Rankings from two computation paths must order by the same
    distances: identical where gaps are real, tolerant of ulp-level
    swaps between near-equal candidates (different GEMM geometries may
    round differently in the last place)."""
    if np.array_equal(a, b):
        return
    flat = observed.reshape(len(observed), -1).astype(np.float64)
    for row, (ranked_a, ranked_b) in enumerate(zip(a, b)):
        distances = ((attack._pool - flat[row][None, :]) ** 2).sum(axis=1)
        np.testing.assert_allclose(
            distances[ranked_a], distances[ranked_b], rtol=1e-9, atol=1e-9
        )


class TestVectorisedRankingParity:
    def test_blocked_matches_reference_loop(self, pool, rng):
        attack = ReidentificationAttack(pool)
        observed = pool + rng.normal(0, 0.05, size=pool.shape)
        _assert_rankings_equivalent(
            attack,
            attack.rank_candidates(observed),
            attack.rank_candidates_reference(observed),
            observed,
        )

    def test_blocking_boundaries_do_not_change_ranking(self, pool, rng, monkeypatch):
        from repro.attacks import _matching

        attack = ReidentificationAttack(pool)
        observed = pool + rng.normal(0, 0.1, size=pool.shape)
        unblocked = attack.rank_candidates(observed)
        monkeypatch.setattr(_matching, "BLOCK_ELEMENTS", 8)
        blocked = attack.rank_candidates(observed)
        _assert_rankings_equivalent(attack, unblocked, blocked, observed)

    def test_report_identical_between_paths(self, pool, rng):
        attack = ReidentificationAttack(pool)
        observed = pool + rng.normal(0, 0.2, size=pool.shape)
        fast = attack.evaluate(observed, np.arange(len(pool)), k=3)
        ranking = attack.rank_candidates_reference(observed)
        positions = np.argmax(ranking == np.arange(len(pool))[:, None], axis=1)
        assert fast.top1_rate == pytest.approx(float(np.mean(positions == 0)))
        assert fast.mean_rank == pytest.approx(float(np.mean(positions + 1)))
