"""Tests for attack metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    InferenceAttackReport,
    ReconstructionReport,
    mean_squared_error,
    peak_signal_to_noise_ratio,
)
from repro.errors import EstimatorError


class TestMSE:
    def test_zero_for_identical(self, rng):
        x = rng.standard_normal((4, 3))
        assert mean_squared_error(x, x.copy()) == 0.0

    def test_known_value(self):
        assert mean_squared_error(np.zeros(4), np.full(4, 2.0)) == pytest.approx(4.0)

    def test_shape_mismatch(self):
        with pytest.raises(EstimatorError):
            mean_squared_error(np.zeros(3), np.zeros(4))


class TestPSNR:
    def test_infinite_for_perfect(self):
        x = np.ones((2, 2))
        assert peak_signal_to_noise_ratio(x, x) == float("inf")

    def test_known_value(self):
        # MSE 0.01 at range 1 -> 20 dB.
        truth = np.zeros(100)
        estimate = np.full(100, 0.1)
        assert peak_signal_to_noise_ratio(truth, estimate) == pytest.approx(20.0)

    def test_better_reconstruction_higher_psnr(self, rng):
        truth = rng.random((8, 8))
        close = truth + 0.01 * rng.standard_normal((8, 8))
        far = truth + 0.3 * rng.standard_normal((8, 8))
        assert peak_signal_to_noise_ratio(truth, close) > peak_signal_to_noise_ratio(
            truth, far
        )


class TestReports:
    def test_reconstruction_advantage(self):
        report = ReconstructionReport(mse=0.25, psnr_db=6.0, baseline_mse=1.0)
        assert report.advantage == pytest.approx(0.75)

    def test_no_advantage_when_matching_baseline(self):
        report = ReconstructionReport(mse=1.0, psnr_db=0.0, baseline_mse=1.0)
        assert report.advantage == pytest.approx(0.0)

    def test_zero_baseline_guard(self):
        report = ReconstructionReport(mse=1.0, psnr_db=0.0, baseline_mse=0.0)
        assert report.advantage == 0.0

    def test_inference_advantage(self):
        report = InferenceAttackReport(accuracy=0.7, chance=0.1)
        assert report.advantage == pytest.approx(0.6)
