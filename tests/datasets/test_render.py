"""Tests for the rendering primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import render
from repro.datasets.glyphs import all_digit_glyphs, digit_glyph
from repro.errors import DatasetError


class TestGlyphs:
    def test_all_digits_present(self):
        glyphs = all_digit_glyphs()
        assert glyphs.shape == (10, 7, 5)

    def test_glyphs_are_binary(self):
        glyphs = all_digit_glyphs()
        assert set(np.unique(glyphs)) <= {0.0, 1.0}

    def test_glyphs_distinct(self):
        glyphs = all_digit_glyphs()
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(glyphs[i], glyphs[j]), (i, j)

    def test_unknown_digit_raises(self):
        with pytest.raises(DatasetError):
            digit_glyph(10)


class TestMasks:
    def test_disk_mask_centre_inside(self):
        mask = render.disk_mask(16, (8, 8), 4)
        assert mask[8, 8]
        assert not mask[0, 0]

    def test_disk_area_approximates_circle(self):
        mask = render.disk_mask(64, (32, 32), 10)
        assert mask.sum() == pytest.approx(np.pi * 100, rel=0.1)

    def test_ring_has_hole(self):
        mask = render.ring_mask(32, (16, 16), 10, 3)
        assert not mask[16, 16]
        assert mask[16, 16 + 9]

    def test_rect_mask_dimensions(self):
        mask = render.rect_mask(16, 2, 3, 4, 5)
        assert mask.sum() == 4 * 5

    def test_rect_mask_clips_at_border(self):
        mask = render.rect_mask(8, 6, 6, 5, 5)
        assert mask.sum() == 4  # 2x2 survives

    def test_triangle_points_up(self):
        mask = render.triangle_mask(32, (16, 16), 8)
        # Apex row should be narrower than base row.
        apex_width = mask[9].sum()
        base_width = mask[23].sum()
        assert base_width > apex_width

    def test_cross_mask_arms(self):
        mask = render.cross_mask(32, (16, 16), 10, 2)
        assert mask[16, 6] and mask[6, 16]
        assert not mask[6, 6]

    def test_stripes_alternate(self):
        mask = render.stripes_mask(16, 4, 0, vertical=True)
        assert mask[:, 0].all()
        assert not mask[:, 2].any()

    def test_stripes_invalid_period(self):
        with pytest.raises(DatasetError):
            render.stripes_mask(16, 1, 0, vertical=False)

    def test_checker_alternates(self):
        mask = render.checker_mask(8, 2, 0)
        assert mask[0, 0] != mask[0, 2]
        assert mask[0, 0] != mask[2, 0]

    def test_checker_invalid_cell(self):
        with pytest.raises(DatasetError):
            render.checker_mask(8, 0, 0)

    def test_radial_gradient_peak_at_centre(self):
        grad = render.radial_gradient(16, (8, 8), 8)
        assert grad[8, 8] == pytest.approx(1.0)
        assert grad[0, 0] < grad[8, 8]

    def test_linear_gradient_range(self):
        grad = render.linear_gradient(16, 0.3)
        assert grad.min() == pytest.approx(0.0, abs=1e-6)
        assert grad.max() == pytest.approx(1.0, abs=1e-6)


class TestCompositing:
    def test_colorize_shape(self):
        out = render.colorize(np.ones((4, 4)), np.array([1.0, 0.5, 0.0]))
        assert out.shape == (3, 4, 4)
        np.testing.assert_allclose(out[1], 0.5)

    def test_composite_full_alpha_replaces(self):
        base = np.zeros((3, 2, 2), dtype=np.float32)
        over = np.ones((3, 2, 2), dtype=np.float32)
        out = render.composite_over(base, over, np.ones((2, 2), dtype=np.float32))
        np.testing.assert_allclose(out, 1.0)

    def test_composite_zero_alpha_keeps_base(self):
        base = np.full((3, 2, 2), 0.3, dtype=np.float32)
        over = np.ones((3, 2, 2), dtype=np.float32)
        out = render.composite_over(base, over, np.zeros((2, 2), dtype=np.float32))
        np.testing.assert_allclose(out, 0.3)


class TestGlyphPasting:
    def test_paste_glyph_within_bounds(self, rng):
        canvas = render.blank_canvas(1, 28)[0]
        out = render.paste_glyph(canvas, digit_glyph(3), 3.0, 15.0, (2.0, -1.0))
        assert out.shape == (28, 28)
        assert out.max() > 0.5

    def test_paste_glyph_extreme_scale_clipped(self, rng):
        canvas = render.blank_canvas(1, 16)[0]
        out = render.paste_glyph(canvas, digit_glyph(8), 5.0, 45.0, (0.0, 0.0))
        assert out.shape == (16, 16)

    def test_paste_does_not_mutate_input(self):
        canvas = render.blank_canvas(1, 28)[0]
        render.paste_glyph(canvas, digit_glyph(1), 2.5, 0.0, (0.0, 0.0))
        assert canvas.max() == 0.0


class TestNoiseAndBlur:
    def test_sensor_noise_clipped(self, rng):
        image = np.full((3, 8, 8), 0.99, dtype=np.float32)
        noisy = render.add_sensor_noise(image, rng, sigma=0.5)
        assert noisy.max() <= 1.0 and noisy.min() >= 0.0

    def test_blur_2d_and_3d(self, rng):
        assert render.blur(np.ones((8, 8), dtype=np.float32), 1.0).shape == (8, 8)
        assert render.blur(np.ones((3, 8, 8), dtype=np.float32), 1.0).shape == (3, 8, 8)

    def test_random_color_has_strong_channel(self, rng):
        for _ in range(10):
            color = render.random_color(rng)
            assert color.max() >= 0.7
