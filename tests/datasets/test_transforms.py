"""Tests for dataset transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SynthDigits,
    channel_statistics,
    normalize,
    normalized_pair,
    random_horizontal_flip,
)
from repro.errors import DatasetError


class TestChannelStatistics:
    def test_values(self, rng):
        images = rng.standard_normal((10, 3, 4, 4)).astype(np.float32) * 2 + 1
        mean, std = channel_statistics(images)
        np.testing.assert_allclose(mean, images.mean(axis=(0, 2, 3)), rtol=1e-5)
        np.testing.assert_allclose(std, images.std(axis=(0, 2, 3)), rtol=1e-5)

    def test_requires_nchw(self):
        with pytest.raises(DatasetError):
            channel_statistics(np.zeros((3, 4, 4)))

    def test_zero_variance_guard(self):
        images = np.ones((5, 2, 3, 3), dtype=np.float32)
        _, std = channel_statistics(images)
        assert (std > 0).all()


class TestNormalize:
    def test_standardises(self, rng):
        images = rng.standard_normal((20, 2, 4, 4)).astype(np.float32) * 3 + 5
        mean, std = channel_statistics(images)
        out = normalize(images, mean, std)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-4)

    def test_normalized_pair_uses_train_stats(self):
        ds = SynthDigits(train_samples=30, test_samples=10, seed=0)
        train, test, mean, std = normalized_pair(ds.train_set(), ds.test_set())
        np.testing.assert_allclose(train.images.mean(), 0.0, atol=1e-4)
        # Test set is normalised with train statistics, so only approximately 0.
        assert abs(test.images.mean()) < 0.5
        np.testing.assert_array_equal(train.labels, ds.train_set().labels)


class TestFlip:
    def test_flip_reverses_columns(self):
        images = np.zeros((1, 1, 2, 3), dtype=np.float32)
        images[0, 0, 0] = [1.0, 2.0, 3.0]
        rng = np.random.default_rng(0)
        # probability 1 -> always flipped
        out = random_horizontal_flip(images, rng, probability=1.0)
        np.testing.assert_allclose(out[0, 0, 0], [3.0, 2.0, 1.0])

    def test_probability_zero_identity(self, rng):
        images = rng.standard_normal((4, 1, 3, 3)).astype(np.float32)
        out = random_horizontal_flip(images, rng, probability=0.0)
        np.testing.assert_array_equal(out, images)

    def test_input_not_mutated(self, rng):
        images = rng.standard_normal((4, 1, 3, 3)).astype(np.float32)
        snapshot = images.copy()
        random_horizontal_flip(images, rng, probability=1.0)
        np.testing.assert_array_equal(images, snapshot)
