"""Test package."""
