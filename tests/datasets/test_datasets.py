"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY
from repro.datasets import (
    SynthDigits,
    SynthImageNet,
    SynthObjects,
    SynthSVHN,
    class_description,
    dataset_names,
    load_dataset,
)
from repro.errors import DatasetError

ALL_DATASETS = [SynthDigits, SynthObjects, SynthSVHN, SynthImageNet]


@pytest.mark.parametrize("dataset_cls", ALL_DATASETS)
class TestCommonProperties:
    def test_shapes_and_dtype(self, dataset_cls):
        ds = dataset_cls(train_samples=20, test_samples=10, seed=0)
        train = ds.train_set()
        assert train.images.shape == (20, *dataset_cls.image_shape)
        assert train.images.dtype == np.float32

    def test_pixel_range(self, dataset_cls):
        ds = dataset_cls(train_samples=20, test_samples=10, seed=0)
        images = ds.train_set().images
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_labels_cover_classes(self, dataset_cls):
        count = dataset_cls.num_classes * 3
        ds = dataset_cls(train_samples=count, test_samples=10, seed=0)
        labels = set(ds.train_set().labels.tolist())
        assert labels == set(range(dataset_cls.num_classes))

    def test_class_balance(self, dataset_cls):
        count = dataset_cls.num_classes * 4
        ds = dataset_cls(train_samples=count, test_samples=10, seed=0)
        labels = ds.train_set().labels
        counts = np.bincount(labels, minlength=dataset_cls.num_classes)
        assert (counts == 4).all()

    def test_deterministic_by_seed(self, dataset_cls):
        a = dataset_cls(train_samples=8, test_samples=4, seed=7).train_set()
        b = dataset_cls(train_samples=8, test_samples=4, seed=7).train_set()
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self, dataset_cls):
        a = dataset_cls(train_samples=8, test_samples=4, seed=1).train_set()
        b = dataset_cls(train_samples=8, test_samples=4, seed=2).train_set()
        assert not np.array_equal(a.images, b.images)

    def test_train_test_disjoint_streams(self, dataset_cls):
        ds = dataset_cls(train_samples=8, test_samples=8, seed=0)
        assert not np.array_equal(ds.train_set().images[:4], ds.test_set().images[:4])

    def test_materialisation_cached(self, dataset_cls):
        ds = dataset_cls(train_samples=4, test_samples=2, seed=0)
        assert ds.train_set() is ds.train_set()

    def test_intra_class_variation(self, dataset_cls):
        # Two renders of the same class must differ (nuisance variation is
        # what gives the input non-trivial entropy).
        ds = dataset_cls(train_samples=dataset_cls.num_classes * 2, test_samples=2, seed=0)
        train = ds.train_set()
        by_class: dict[int, list[np.ndarray]] = {}
        for image, label in zip(train.images, train.labels):
            by_class.setdefault(int(label), []).append(image)
        for label, images in by_class.items():
            assert not np.array_equal(images[0], images[1]), f"class {label}"

    def test_invalid_sample_counts(self, dataset_cls):
        with pytest.raises(DatasetError):
            dataset_cls(train_samples=0, test_samples=2, seed=0)


class TestClassSeparability:
    """A nearest-centroid probe should beat chance comfortably on every
    dataset — otherwise the backbones could never be pre-trained."""

    @pytest.mark.parametrize("dataset_cls", ALL_DATASETS)
    def test_nearest_centroid_beats_chance(self, dataset_cls):
        n_class = dataset_cls.num_classes
        ds = dataset_cls(train_samples=n_class * 12, test_samples=n_class * 4, seed=3)
        train, test = ds.train_set(), ds.test_set()
        x_train = train.images.reshape(len(train), -1)
        x_test = test.images.reshape(len(test), -1)
        centroids = np.stack(
            [x_train[train.labels == c].mean(axis=0) for c in range(n_class)]
        )
        distances = ((x_test[:, None] - centroids[None]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == test.labels).mean()
        # A linear-free probe on raw pixels only needs to beat chance; the
        # CNN learnability bar is covered by the model-zoo training tests.
        assert accuracy >= 1.5 / n_class, f"accuracy {accuracy:.2f} too close to chance"


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["cifar", "imagenet", "mnist", "svhn"]

    def test_load_dataset_uses_scale(self):
        ds = load_dataset("mnist", TINY, seed=0)
        assert ds.train_samples == TINY.train_samples

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("celeba", TINY)

    def test_case_insensitive(self):
        assert isinstance(load_dataset("MNIST", TINY), SynthDigits)


class TestImageNetComposition:
    def test_class_description_bijective(self):
        pairs = {class_description(c) for c in range(20)}
        assert len(pairs) == 20

    def test_shape_texture_families(self):
        shapes = {class_description(c)[0] for c in range(20)}
        textures = {class_description(c)[1] for c in range(20)}
        assert len(shapes) == 5 and len(textures) == 4
