"""Shared fixtures for the eval-harness tests.

The harness functions call ``get_pretrained`` internally, so these tests
share one zoo cache for the whole session — the LeNet backbone trains once
and every subsequent harness call loads it.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def _zoo_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("eval_zoo_cache")


@pytest.fixture(autouse=True)
def _shared_zoo_cache(_zoo_cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(_zoo_cache_dir))
    yield
