"""Test package."""
