"""Tests for the §2.4 training-scenario harness."""

from __future__ import annotations

import pytest

from repro.config import TINY, Config
from repro.errors import ConfigurationError
from repro.eval import SCENARIO_NAMES, run_scenarios
from repro.eval.experiments import get_benchmark


@pytest.fixture(scope="module")
def suite(lenet_bundle):
    config = Config(scale=TINY)
    return run_scenarios(
        "lenet",
        config,
        iterations=250,
        bundle=lenet_bundle,
        benchmark=get_benchmark("lenet"),
    )


class TestSuiteShape:
    def test_all_scenarios_present(self, suite):
        assert [o.scenario for o in suite.outcomes] == list(SCENARIO_NAMES)

    def test_by_name(self, suite):
        assert suite.by_name("hold").scenario == "hold"
        with pytest.raises(KeyError):
            suite.by_name("sideways")

    def test_format_contains_all_rows(self, suite):
        text = suite.format()
        for name in SCENARIO_NAMES:
            assert name in text


class TestTrajectories:
    def test_hold_starts_near_target(self, suite):
        hold = suite.by_name("hold")
        assert hold.initial_privacy == pytest.approx(suite.target_in_vivo, rel=0.35)

    def test_overshoot_starts_high_and_drifts_down(self, suite):
        overshoot = suite.by_name("overshoot")
        assert overshoot.initial_privacy > 2.0 * suite.target_in_vivo
        assert overshoot.privacy_drift < 0

    def test_overshoot_endpoint_still_private(self, suite):
        """Paper: 'even after decreasing it is still desirable'."""
        overshoot = suite.by_name("overshoot")
        assert overshoot.final_privacy > 0.5 * suite.target_in_vivo

    def test_rise_starts_low_and_climbs(self, suite):
        rise = suite.by_name("rise")
        assert rise.initial_privacy < 0.5 * suite.target_in_vivo
        assert rise.privacy_drift > 0

    def test_all_scenarios_keep_usable_accuracy(self, suite, lenet_bundle):
        for outcome in suite.outcomes:
            assert outcome.final_accuracy > lenet_bundle.test_accuracy - 0.25


class TestValidation:
    def test_bad_overshoot_factor(self, lenet_bundle):
        config = Config(scale=TINY)
        with pytest.raises(ConfigurationError):
            run_scenarios(
                "lenet",
                config,
                overshoot_factor=1.0,
                bundle=lenet_bundle,
                benchmark=get_benchmark("lenet"),
            )

    def test_bad_rise_factor(self, lenet_bundle):
        config = Config(scale=TINY)
        with pytest.raises(ConfigurationError):
            run_scenarios(
                "lenet",
                config,
                rise_factor=1.5,
                bundle=lenet_bundle,
                benchmark=get_benchmark("lenet"),
            )
