"""Tests for the results-to-markdown report generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.eval import CsvTable, load_results, render_report, write_report
from repro.eval.report_document import _format_cell, _markdown_table


@pytest.fixture()
def results_dir(tmp_path):
    (tmp_path / "table1_lenet.csv").write_text(
        "benchmark,mi_loss_percent\nlenet,72.11696\n"
    )
    (tmp_path / "figure6_svhn.csv").write_text(
        "cut,product\nconv0,16.3\nconv6,4.8\n"
    )
    (tmp_path / "misc_extra.csv").write_text("k,v\na,1\n")
    return tmp_path


class TestLoad:
    def test_loads_all_csvs(self, results_dir):
        tables = load_results(results_dir)
        assert {t.name for t in tables} == {
            "table1_lenet",
            "figure6_svhn",
            "misc_extra",
        }

    def test_header_and_rows(self, results_dir):
        table = next(
            t for t in load_results(results_dir) if t.name == "figure6_svhn"
        )
        assert table.header == ["cut", "product"]
        assert len(table.rows) == 2

    def test_empty_file_skipped(self, results_dir):
        (results_dir / "empty.csv").write_text("")
        names = {t.name for t in load_results(results_dir)}
        assert "empty" not in names

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_results(tmp_path / "absent")

    def test_no_csvs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_results(tmp_path)


class TestRender:
    def test_sections_present(self, results_dir):
        report = render_report(results_dir)
        assert "## Table 1 — Shredder summary" in report
        assert "## Figure 6 — cutting-point costs" in report
        assert "## Other results" in report

    def test_tables_rendered(self, results_dir):
        report = render_report(results_dir)
        assert "| cut | product |" in report
        assert "| conv6 | 4.8 |" in report

    def test_custom_title(self, results_dir):
        assert render_report(results_dir, title="My run").startswith("# My run")

    def test_long_series_truncated(self, tmp_path):
        rows = "\n".join(f"{i},{i * 0.1}" for i in range(50))
        (tmp_path / "figure4_lenet.csv").write_text(f"iteration,privacy\n{rows}\n")
        report = render_report(tmp_path)
        assert "more rows in" in report
        assert report.count("\n| ") < 25

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "out" / "report.md")
        assert out.exists()
        assert out.read_text().startswith("# Measured results")


class TestFormatting:
    def test_float_cells_shortened(self):
        assert _format_cell("72.11696822295806") == "72.12"
        assert _format_cell("0.0001234567") == "0.0001235"

    def test_integers_stay_integers(self):
        assert _format_cell("12.0") == "12"
        assert _format_cell("240") == "240"

    def test_strings_pass_through(self):
        assert _format_cell("conv6") == "conv6"

    def test_nan_handled(self):
        assert _format_cell("nan") == "nan"

    def test_markdown_table_shape(self):
        table = CsvTable("t", ["a", "b"], [["1", "2"], ["3", "4"]])
        text = _markdown_table(table)
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4
