"""Tests for the attack-suite experiment (extension E10)."""

from __future__ import annotations

import pytest

from repro.config import TINY, Config
from repro.eval import run_attack_suite


@pytest.fixture(scope="module")
def suite(_zoo_cache_dir):
    import os

    os.environ["REPRO_CACHE_DIR"] = str(_zoo_cache_dir)
    return run_attack_suite(
        "lenet", Config(scale=TINY), iterations=200, n_members=3, attack_epochs=15
    )


class TestAttackSuite:
    def test_three_conditions(self, suite):
        assert {o.condition for o in suite.outcomes} == {
            "clean",
            "shredder",
            "matched_laplace",
        }

    def test_clean_channel_attackable(self, suite):
        clean = suite.by_condition("clean")
        assert clean.linear_advantage > 0.05
        assert clean.label_attack_advantage > 0.1

    def test_shredder_blunts_reconstruction(self, suite):
        assert (
            suite.by_condition("shredder").linear_advantage
            < suite.by_condition("clean").linear_advantage
        )

    def test_asymmetric_tradeoff_vs_matched_noise(self, suite):
        # Learning the noise preserves more task accuracy than fresh noise
        # of the same magnitude (Figure 1's asymmetry, operationalised).
        assert (
            suite.by_condition("shredder").task_accuracy
            > suite.by_condition("matched_laplace").task_accuracy
        )

    def test_unknown_condition_raises(self, suite):
        with pytest.raises(KeyError):
            suite.by_condition("quantum")

    def test_format_runs(self, suite):
        text = suite.format()
        assert "Attack suite" in text and "shredder" in text
