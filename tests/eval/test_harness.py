"""Integration tests for the Table 1 / Figure 3-6 harness (tiny scale).

These assert the *shape* of every paper artefact on the LeNet benchmark:
who wins, what rises, what the planner picks — not absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.eval import (
    run_cutpoints,
    run_layerwise,
    run_table1,
    run_tradeoff,
    run_training_curves,
)


@pytest.fixture(scope="module")
def config():
    return Config(scale=TINY)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, _zoo_cache_dir):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(_zoo_cache_dir)
        return run_table1(Config(scale=TINY), benchmarks=["lenet"], iterations=300)

    def test_row_present(self, result):
        assert [row.benchmark for row in result.rows] == ["lenet"]

    def test_mi_loss_substantial(self, result):
        # Paper headline: large MI loss at small accuracy loss.
        assert result.rows[0].report.mi_loss_percent > 30.0

    def test_accuracy_loss_modest(self, result):
        assert result.rows[0].report.accuracy_loss_percent < 12.0

    def test_gmean_matches_row(self, result):
        assert result.gmean_mi_loss() == pytest.approx(
            result.rows[0].report.mi_loss_percent, rel=1e-6
        )

    def test_format_contains_paper_rows(self, result):
        text = result.format()
        assert "Original Mutual Information" in text
        assert "Accuracy Loss" in text
        assert "GMean" in text

    def test_params_ratio_tiny(self, result):
        assert result.rows[0].report.params_ratio_percent < 5.0


class TestTradeoff:
    @pytest.fixture(scope="class")
    def curve(self, _zoo_cache_dir):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(_zoo_cache_dir)
        return run_tradeoff(
            "lenet",
            Config(scale=TINY),
            levels=(0.1, 0.5, 1.5),
            iterations=150,
            n_members=3,
        )

    def test_zero_leakage_positive(self, curve):
        assert curve.zero_leakage_bits > 0

    def test_information_loss_monotone_in_noise(self, curve):
        losses = [p.information_loss_bits for p in curve.points]
        assert losses[0] < losses[-1]

    def test_info_loss_bounded_by_zero_leakage(self, curve):
        for point in curve.points:
            assert point.information_loss_bits <= curve.zero_leakage_bits + 0.1

    def test_format_mentions_zero_leakage(self, curve):
        assert "Zero Leakage" in curve.format()


class TestTrainingCurves:
    @pytest.fixture(scope="class")
    def curves(self, _zoo_cache_dir):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(_zoo_cache_dir)
        return run_training_curves("lenet", Config(scale=TINY), iterations=300)

    def test_shredder_privacy_rises(self, curves):
        history = curves.shredder.history.in_vivo_privacies
        assert history[-1] > history[0] * 1.3

    def test_regular_privacy_falls(self, curves):
        history = curves.regular.history.in_vivo_privacies
        assert history[-1] < history[0]

    def test_regular_accuracy_recovers_at_least_as_fast(self, curves):
        # Paper: "The accuracy, however, increases at a higher pace for
        # regular training, compared to Shredder."
        assert (
            curves.regular.history.accuracies[-1]
            >= curves.shredder.history.accuracies[-1] - 0.03
        )

    def test_both_accuracies_improve(self, curves):
        for result in (curves.shredder, curves.regular):
            assert result.history.accuracies[-1] > result.history.accuracies[0]

    def test_format_runs(self, curves):
        assert "Figure 4a" in curves.format()


class TestLayerwise:
    @pytest.fixture(scope="class")
    def result(self, _zoo_cache_dir):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(_zoo_cache_dir)
        return run_layerwise(
            "lenet", Config(scale=TINY), levels=(0.1, 2.0), trained=False
        )

    def test_paper_cuts_probed(self, result):
        assert {p.cut for p in result.points} == {"conv0", "conv1", "conv2"}

    def test_deeper_layers_lower_baseline_mi(self, result):
        # Paper §3.3: MI decreases monotonically with depth.
        assert (
            result.baseline_mi["conv0"]
            > result.baseline_mi["conv1"]
            > result.baseline_mi["conv2"]
        )

    def test_more_noise_more_ex_vivo_privacy(self, result):
        for cut in ("conv0", "conv1", "conv2"):
            series = result.series(cut)
            assert series[-1].ex_vivo >= series[0].ex_vivo

    def test_realised_in_vivo_matches_request(self, result):
        for point in result.points:
            assert point.in_vivo == pytest.approx(
                0.1 if point.in_vivo < 0.5 else 2.0, rel=0.4
            )

    def test_info_loss_fraction_valid(self, result):
        for point in result.points:
            fraction = result.information_loss_fraction(point)
            assert -0.3 <= fraction <= 1.0

    def test_format_runs(self, result):
        assert "Figure 5" in result.format()


class TestCutpoints:
    @pytest.fixture(scope="class")
    def analysis(self, _zoo_cache_dir):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(_zoo_cache_dir)
        return run_cutpoints("lenet", Config(scale=TINY), trained=False)

    def test_recommends_conv2_for_lenet(self, analysis):
        # The paper chooses Conv2 for LeNet (§3.4, Figure 6b).
        assert analysis.recommended.cut == "conv2"

    def test_all_cuts_analysed(self, analysis):
        assert {c.cut for c in analysis.candidates} == {"conv0", "conv1", "conv2"}

    def test_ex_vivo_increases_with_depth(self, analysis):
        by_cut = {c.cut: c.ex_vivo_privacy for c in analysis.candidates}
        assert by_cut["conv2"] > by_cut["conv0"]

    def test_format_marks_choice(self, analysis):
        assert "Shredder's cutting point" in analysis.format()
