"""Tests for the benchmark configs and pipeline builder."""

from __future__ import annotations

import pytest

from repro.config import TINY, Config
from repro.errors import ConfigurationError
from repro.eval import (
    BENCHMARKS,
    benchmark_names,
    build_pipeline,
    derive_init_scale,
    get_benchmark,
    load_benchmark,
)


class TestRegistry:
    def test_all_four_networks(self):
        assert benchmark_names() == ["lenet", "cifar", "svhn", "alexnet"]
        assert set(BENCHMARKS) == set(benchmark_names())

    def test_lambda_shrinks_with_network_size(self):
        # Paper §2.4: bigger networks get smaller λ.
        assert BENCHMARKS["lenet"].lambda_coeff > BENCHMARKS["alexnet"].lambda_coeff

    def test_paper_numbers_recorded(self):
        paper = get_benchmark("lenet").paper
        assert paper.original_mi == pytest.approx(301.84)
        assert paper.mi_loss_percent == pytest.approx(93.74)

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            get_benchmark("resnet")

    def test_case_insensitive(self):
        assert get_benchmark("LeNet").model == "lenet"


class TestDeriveInitScale:
    def test_variance_hits_target(self):
        # Var[Laplace(0, b)] = 2 b² must equal target · E[a²].
        b = derive_init_scale(0.5, 8.0)
        assert 2 * b * b == pytest.approx(0.5 * 8.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            derive_init_scale(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            derive_init_scale(0.5, 0.0)


class TestBuildPipeline:
    @pytest.fixture(scope="class")
    def loaded(self):
        config = Config(scale=TINY)
        bundle, benchmark = load_benchmark("lenet", config)
        return config, bundle, benchmark

    @staticmethod
    def _mean_realised_in_vivo(pipeline, draws: int = 20) -> float:
        # LeNet's conv2 noise tensor has only ~60 elements, so a single
        # draw's sample variance is noisy; average over seeds.
        values = [
            pipeline.new_noise(seed_tag=i).variance() / pipeline.trainer.signal_power
            for i in range(draws)
        ]
        return float(sum(values) / len(values))

    def test_initial_in_vivo_matches_target(self, loaded):
        config, bundle, benchmark = loaded
        pipeline = build_pipeline(bundle, benchmark, config, target_in_vivo=0.7)
        assert self._mean_realised_in_vivo(pipeline) == pytest.approx(0.7, rel=0.2)

    def test_init_in_vivo_override(self, loaded):
        config, bundle, benchmark = loaded
        pipeline = build_pipeline(
            bundle, benchmark, config, target_in_vivo=0.8, init_in_vivo=0.2
        )
        assert self._mean_realised_in_vivo(pipeline) == pytest.approx(0.2, rel=0.2)

    def test_lambda_zero_gets_constant_schedule(self, loaded):
        from repro.core import ConstantLambda

        config, bundle, benchmark = loaded
        pipeline = build_pipeline(bundle, benchmark, config, lambda_coeff=0.0)
        assert isinstance(pipeline.trainer.schedule, ConstantLambda)

    def test_cut_override(self, loaded):
        config, bundle, benchmark = loaded
        pipeline = build_pipeline(bundle, benchmark, config, cut="conv0")
        assert pipeline.split.cut == "conv0"
