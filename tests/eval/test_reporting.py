"""Tests for the ASCII/CSV reporting helpers."""

from __future__ import annotations

import csv

from repro.eval import format_series, format_table, write_csv


class TestFormatTable:
    def test_contains_all_cells(self):
        out = format_table(["a", "b"], [[1, 2], [3, 4]])
        for token in ["a", "b", "1", "2", "3", "4"]:
            assert token in out

    def test_title_first_line(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        out = format_table(["name", "v"], [["a", 1], ["longer", 2]])
        lines = out.splitlines()
        pipes = [line.index("|") for line in lines if "|" in line]
        assert len(set(pipes)) == 1

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [1234567.0], [0.0]])
        assert "0.123" in out
        assert "1.23e+06" in out

    def test_format_series(self):
        out = format_series("s", [0, 1], [0.5, 0.7], "it", "acc")
        assert "s" in out and "it" in out and "0.7" in out


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parents(self, tmp_path):
        path = write_csv(tmp_path / "x" / "y" / "out.csv", ["a"], [[1]])
        assert path.exists()
