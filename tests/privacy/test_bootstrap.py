"""Tests for the subsampling MI confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimatorError
from repro.privacy import MIInterval, subsampled_mi_interval


@pytest.fixture()
def correlated_pair(rng):
    n = 220
    x = rng.normal(size=(n, 3)).astype(np.float32)
    y = (x + 0.5 * rng.normal(size=(n, 3))).astype(np.float32)
    return x, y


class TestInterval:
    def test_basic_fields(self, correlated_pair):
        x, y = correlated_pair
        interval = subsampled_mi_interval(
            x, y, n_replicates=6, n_components=3, rng=np.random.default_rng(0)
        )
        assert interval.low <= interval.high
        assert len(interval.replicates) == 6
        assert interval.subsample_size < len(x)
        assert interval.width >= 0.0

    def test_point_estimate_positive_for_correlated(self, correlated_pair):
        x, y = correlated_pair
        interval = subsampled_mi_interval(
            x, y, n_replicates=5, n_components=3, rng=np.random.default_rng(0)
        )
        assert interval.mi_bits > 0.5

    def test_interval_separates_strong_from_independent(self, rng):
        n = 220
        x = rng.normal(size=(n, 3))
        strong = subsampled_mi_interval(
            x,
            x + 0.2 * rng.normal(size=(n, 3)),
            n_replicates=6,
            n_components=3,
            rng=np.random.default_rng(0),
        )
        independent = subsampled_mi_interval(
            x,
            rng.normal(size=(n, 3)),
            n_replicates=6,
            n_components=3,
            rng=np.random.default_rng(0),
        )
        assert strong.low > independent.high

    def test_contains(self):
        interval = MIInterval(1.0, 0.5, 1.5, (0.6, 1.4), 100)
        assert interval.contains(1.0)
        assert not interval.contains(2.0)

    def test_confidence_narrows_interval(self, correlated_pair):
        x, y = correlated_pair
        wide = subsampled_mi_interval(
            x, y, n_replicates=8, confidence=0.95, n_components=3,
            rng=np.random.default_rng(3),
        )
        narrow = subsampled_mi_interval(
            x, y, n_replicates=8, confidence=0.5, n_components=3,
            rng=np.random.default_rng(3),
        )
        assert narrow.width <= wide.width + 1e-12

    def test_deterministic_given_rng(self, correlated_pair):
        x, y = correlated_pair
        a = subsampled_mi_interval(
            x, y, n_replicates=4, n_components=3, rng=np.random.default_rng(5)
        )
        b = subsampled_mi_interval(
            x, y, n_replicates=4, n_components=3, rng=np.random.default_rng(5)
        )
        assert a == b


class TestValidation:
    def test_bad_fraction(self, correlated_pair):
        x, y = correlated_pair
        with pytest.raises(EstimatorError):
            subsampled_mi_interval(x, y, subsample_fraction=1.5)

    def test_bad_confidence(self, correlated_pair):
        x, y = correlated_pair
        with pytest.raises(EstimatorError):
            subsampled_mi_interval(x, y, confidence=0.0)

    def test_too_few_replicates(self, correlated_pair):
        x, y = correlated_pair
        with pytest.raises(EstimatorError):
            subsampled_mi_interval(x, y, n_replicates=1)

    def test_unpaired_batches(self, rng):
        with pytest.raises(EstimatorError):
            subsampled_mi_interval(
                rng.normal(size=(50, 2)), rng.normal(size=(49, 2))
            )

    def test_tiny_sample_rejected(self, rng):
        x = rng.normal(size=(8, 2))
        with pytest.raises(EstimatorError):
            subsampled_mi_interval(x, x, subsample_fraction=0.9)
