"""Shuffle-leakage evaluator and the jitter-seed estimator fix (PR 8).

Two bug classes are regression-locked here alongside the new evaluator:

* ``_jittered`` used to hardcode ``np.random.default_rng(0)``, so every
  KSG call — including every bootstrap replicate — added the *same*
  tie-breaking noise.  The ``jitter_rng`` thread-through must (a) keep
  the historical default bitwise stable, (b) actually vary with the
  seed, and (c) give each bootstrap replicate its own independent draw.
* the evaluator itself must be a pure function of its inputs and seeds:
  identical calls, identical numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimatorError
from repro.privacy import (
    amplified_epsilon,
    estimate_leakage,
    evaluate_shuffle_leakage,
    ksg_mutual_information,
    ksg_mutual_information_reference,
    subsampled_mi_interval,
    sweep_mixing_tradeoff,
    tap_wire_batches,
)


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(7)
    activations = rng.normal(size=(48, 12)).astype(np.float64)
    sessions = [f"user-{i % 6}" for i in range(48)]
    return activations, sessions


class TestJitterSeedThreading:
    """Satellite bugfix: explicit jitter randomness in the KSG path."""

    def _pair(self, n=200, seed=3):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 2))
        y = 0.8 * x + rng.normal(0.0, 0.6, size=(n, 2))
        return x, y

    def test_default_is_bitwise_stable(self):
        """``jitter_rng=None`` must reproduce the historical fixed-seed
        behaviour bit for bit (downstream pinned numbers depend on it)."""
        x, y = self._pair()
        legacy = ksg_mutual_information(x, y)
        assert ksg_mutual_information(x, y, jitter_rng=None) == legacy
        assert ksg_mutual_information(x, y, jitter_rng=0) == legacy
        assert ksg_mutual_information_reference(
            x, y, jitter_rng=0
        ) == ksg_mutual_information_reference(x, y)

    def test_distinct_seeds_change_the_tie_breaking(self):
        """Ties broken differently => (slightly) different estimates; the
        old hardcoded rng made this impossible."""
        # Heavy ties: quantised coordinates make the jitter decisive.
        rng = np.random.default_rng(0)
        x = np.round(rng.normal(size=(150, 2)), 1)
        y = np.round(0.9 * x + rng.normal(0.0, 0.3, size=(150, 2)), 1)
        a = ksg_mutual_information(x, y, jitter=1e-6, jitter_rng=1)
        b = ksg_mutual_information(x, y, jitter=1e-6, jitter_rng=2)
        assert a != b
        # Same seed: identical.
        assert a == ksg_mutual_information(x, y, jitter=1e-6, jitter_rng=1)

    def test_generator_and_int_seeds_agree(self):
        x, y = self._pair()
        assert ksg_mutual_information(
            x, y, jitter=1e-6, jitter_rng=11
        ) == ksg_mutual_information(
            x, y, jitter=1e-6, jitter_rng=np.random.default_rng(11)
        )

    def test_estimate_leakage_forwards_jitter_rng(self):
        rng = np.random.default_rng(5)
        inputs = np.round(rng.normal(size=(120, 6)), 1)
        activations = np.round(
            0.7 * inputs + rng.normal(0.0, 0.4, size=(120, 6)), 1
        )
        default = estimate_leakage(inputs, activations, n_components=4)
        stable = estimate_leakage(
            inputs, activations, n_components=4, jitter_rng=None
        )
        assert default.mi_bits == stable.mi_bits

    def test_bootstrap_draws_one_seed_per_replicate(self, monkeypatch):
        """Each replicate must get its own jitter seed, deterministically
        derived from the caller's rng (a shared fixed seed correlates the
        replicates and understates the interval)."""
        import repro.privacy.bootstrap as bootstrap

        seen: list[object] = []
        real = bootstrap.estimate_leakage

        def spy(*args, **kwargs):
            seen.append(kwargs.get("jitter_rng"))
            return real(*args, **kwargs)

        monkeypatch.setattr(bootstrap, "estimate_leakage", spy)
        rng = np.random.default_rng(2)
        inputs = rng.normal(size=(60, 4))
        activations = 0.8 * inputs + rng.normal(0.0, 0.5, size=(60, 4))
        subsampled_mi_interval(
            inputs, activations, n_replicates=5, n_components=3,
            rng=np.random.default_rng(9),
        )
        # Point estimate (no jitter_rng kwarg) + 5 replicates.
        replicate_seeds = [s for s in seen if s is not None]
        assert len(replicate_seeds) == 5
        assert all(isinstance(s, int) for s in replicate_seeds)
        assert len(set(replicate_seeds)) == 5  # independent draws
        # Deterministic in the caller's rng.
        seen.clear()
        subsampled_mi_interval(
            inputs, activations, n_replicates=5, n_components=3,
            rng=np.random.default_rng(9),
        )
        assert [s for s in seen if s is not None] == replicate_seeds


class TestAmplifiedEpsilon:
    def test_closed_form_and_clamp(self):
        # Large anonymity sets amplify; tiny ones fall back to the local
        # guarantee (never weaker than epsilon0).
        assert amplified_epsilon(1.0, 10_000) < 0.2
        assert amplified_epsilon(1.0, 1) == 1.0
        assert amplified_epsilon(1.0, 2) == 1.0  # bound useless this small
        assert amplified_epsilon(0.0, 100) == 0.0
        for n in (2, 10, 100, 10_000):
            assert amplified_epsilon(2.0, n) <= 2.0

    def test_monotone_in_n(self):
        values = [amplified_epsilon(1.0, n) for n in (10, 100, 1000, 100_000)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            amplified_epsilon(-0.1, 10)
        with pytest.raises(ConfigurationError):
            amplified_epsilon(1.0, 0)
        with pytest.raises(ConfigurationError):
            amplified_epsilon(1.0, 10, delta=1.5)


class TestTap:
    def test_unshuffled_frames_tell_the_truth(self, stream):
        activations, sessions = stream
        frames = tap_wire_batches(activations, sessions, batch_window=8)
        assert sum(len(f.true_indices) for f in frames) == len(activations)
        for frame in frames:
            assert frame.claimed_sessions == frame.true_sessions

    def test_shuffled_frames_keep_the_rows_but_not_the_story(self, stream):
        activations, sessions = stream
        frames = tap_wire_batches(
            activations, sessions, batch_window=8, shuffle=True
        )
        lied = 0
        for frame in frames:
            # Same multiset of rows (the content is intact)...
            assert sorted(frame.true_indices) == sorted(
                range(min(frame.true_indices), max(frame.true_indices) + 1)
            ) or len(frame.true_indices) == len(set(frame.true_indices))
            # ...but the request table's ownership story can be false.
            if frame.claimed_sessions != frame.true_sessions:
                lied += 1
        assert lied > 0

    def test_isolation_caps_anonymity_at_one(self, stream):
        activations, sessions = stream
        frames = tap_wire_batches(
            activations, sessions, batch_window=8, shuffle=True,
            isolate_sessions=True,
        )
        assert all(frame.anonymity_set == 1 for frame in frames)

    def test_sharding_respects_route_session(self, stream):
        from repro.serve import route_session

        activations, sessions = stream
        frames = tap_wire_batches(activations, sessions, shards=2)
        for frame in frames:
            for session in frame.true_sessions:
                assert route_session(session, 2) == frame.shard

    def test_validation(self, stream):
        activations, sessions = stream
        with pytest.raises(EstimatorError):
            tap_wire_batches(activations, sessions[:-1])
        with pytest.raises(EstimatorError):
            tap_wire_batches(activations[:0], [])
        with pytest.raises(ConfigurationError):
            tap_wire_batches(activations, sessions, batch_window=0)


class TestEvaluator:
    def test_shuffle_kills_the_positional_attacker_only(self, stream):
        activations, sessions = stream
        off = evaluate_shuffle_leakage(activations, sessions, batch_window=8)
        on = evaluate_shuffle_leakage(
            activations, sessions, batch_window=8, shuffle=True
        )
        # Positional attacker: perfect without shuffling, at the chance
        # floor with it.
        assert off.positional_accuracy == 1.0
        assert on.positional_accuracy == pytest.approx(
            on.positional_chance, abs=0.15
        )
        assert on.session_mi_bits < off.session_mi_bits
        # Content attacker: shuffling alone moves nothing (clean rows).
        assert off.reid_top1 == on.reid_top1 == 1.0
        # Mixing is a composition property, identical either way.
        assert on.mixing_index == pytest.approx(off.mixing_index)

    def test_noise_weakens_the_content_attacker(self, stream):
        activations, sessions = stream
        rng = np.random.default_rng(1)
        noisy = activations + rng.laplace(0.0, 3.0, size=activations.shape)
        clean = evaluate_shuffle_leakage(
            activations, sessions, shuffle=True
        )
        noised = evaluate_shuffle_leakage(
            activations, sessions, observed=noisy, shuffle=True
        )
        assert noised.reid_top1 < clean.reid_top1

    def test_deterministic_under_a_seed(self, stream):
        activations, sessions = stream
        kwargs = dict(
            batch_window=4, shuffle=True, shuffle_seed=3, shards=2,
            epsilon0=1.0,
        )
        first = evaluate_shuffle_leakage(activations, sessions, **kwargs)
        second = evaluate_shuffle_leakage(activations, sessions, **kwargs)
        assert first == second
        moved = evaluate_shuffle_leakage(
            activations, sessions, **{**kwargs, "shuffle_seed": 4}
        )
        assert moved.batches == first.batches  # composition unchanged

    def test_worker_count_is_leakage_invariant(self, stream):
        activations, sessions = stream
        one = evaluate_shuffle_leakage(
            activations, sessions, shuffle=True, workers=1
        )
        eight = evaluate_shuffle_leakage(
            activations, sessions, shuffle=True, workers=8
        )
        assert one == eight

    def test_amplification_reported_at_min_anonymity(self, stream):
        activations, sessions = stream
        report = evaluate_shuffle_leakage(
            activations, sessions, batch_window=8, shuffle=True, epsilon0=1.0
        )
        assert report.min_anonymity_set is not None
        assert report.epsilon_amplified == amplified_epsilon(
            1.0, report.min_anonymity_set
        )
        unshuffled = evaluate_shuffle_leakage(
            activations, sessions, batch_window=8, epsilon0=1.0
        )
        assert unshuffled.epsilon_amplified is None

    def test_report_is_json_ready(self, stream):
        import json

        activations, sessions = stream
        report = evaluate_shuffle_leakage(activations, sessions, shuffle=True)
        json.dumps(report.as_dict())


class TestSweep:
    def test_surface_covers_the_cross_product_deterministically(self, stream):
        activations, sessions = stream
        kwargs = dict(
            batch_windows=(2, 8), shard_counts=(1, 2), worker_counts=(1,),
            isolation_policies=(False, True), shuffle_modes=(False, True),
            epsilon0=1.0,
        )
        surface = sweep_mixing_tradeoff(activations, sessions, **kwargs)
        assert len(surface) == 2 * 2 * 1 * 2 * 2
        assert surface == sweep_mixing_tradeoff(activations, sessions, **kwargs)
        # Shuffled mixed legs never leak more positionally than their
        # unshuffled twins.
        by_key = {
            (r["batch_window"], r["shards"], r["isolate_sessions"], r["shuffle"]): r
            for r in surface
        }
        for window in (2, 8):
            for shards in (1, 2):
                off = by_key[(window, shards, False, False)]
                on = by_key[(window, shards, False, True)]
                assert on["positional_accuracy"] <= off["positional_accuracy"]
                assert on["session_mi_bits"] <= off["session_mi_bits"]
