"""Tests for the entropy estimators against closed forms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import EstimatorError
from repro.privacy import gaussian_entropy, histogram_entropy, kl_entropy, unit_ball_log_volume


class TestGaussianEntropy:
    def test_unit_gaussian_1d(self):
        # H = 0.5 log2(2 pi e) ≈ 2.047 bits
        assert gaussian_entropy(np.array([[1.0]])) == pytest.approx(2.0471, abs=1e-3)

    def test_scaling_adds_log_sigma(self):
        h1 = gaussian_entropy(np.array([[1.0]]))
        h2 = gaussian_entropy(np.array([[4.0]]))
        assert h2 - h1 == pytest.approx(1.0, abs=1e-9)  # log2(sigma ratio)=1

    def test_independent_dims_add(self):
        h_joint = gaussian_entropy(np.diag([1.0, 4.0]))
        h_sum = gaussian_entropy(np.array([[1.0]])) + gaussian_entropy(np.array([[4.0]]))
        assert h_joint == pytest.approx(h_sum, abs=1e-9)

    def test_non_positive_definite_rejected(self):
        with pytest.raises(EstimatorError):
            gaussian_entropy(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(EstimatorError):
            gaussian_entropy(np.ones((2, 3)))


class TestUnitBallVolume:
    def test_known_dimensions(self):
        assert math.exp(unit_ball_log_volume(1)) == pytest.approx(2.0)
        assert math.exp(unit_ball_log_volume(2)) == pytest.approx(math.pi)
        assert math.exp(unit_ball_log_volume(3)) == pytest.approx(4.0 / 3.0 * math.pi)


class TestKLEntropy:
    @pytest.mark.parametrize("sigma", [0.5, 1.0, 3.0])
    def test_matches_gaussian_1d(self, sigma):
        rng = np.random.default_rng(42)
        samples = rng.normal(0, sigma, size=4000)
        expected = gaussian_entropy(np.array([[sigma**2]]))
        assert kl_entropy(samples, k=3) == pytest.approx(expected, abs=0.1)

    def test_matches_gaussian_multivariate(self):
        rng = np.random.default_rng(1)
        cov = np.array([[2.0, 0.3], [0.3, 0.5]])
        samples = rng.multivariate_normal([0, 0], cov, size=4000)
        assert kl_entropy(samples, k=3) == pytest.approx(gaussian_entropy(cov), abs=0.15)

    def test_uniform_entropy(self):
        # H(U[0, w]) = log2 w bits.
        rng = np.random.default_rng(2)
        samples = rng.uniform(0.0, 8.0, size=5000)
        assert kl_entropy(samples, k=3) == pytest.approx(3.0, abs=0.15)

    def test_wider_distribution_has_higher_entropy(self):
        rng = np.random.default_rng(3)
        narrow = kl_entropy(rng.normal(0, 0.5, size=1000))
        wide = kl_entropy(rng.normal(0, 5.0, size=1000))
        assert wide > narrow

    def test_duplicate_samples_handled(self):
        samples = np.concatenate([np.zeros(50), np.ones(50)])
        value = kl_entropy(samples, k=3)
        assert np.isfinite(value)

    def test_too_few_samples(self):
        with pytest.raises(EstimatorError):
            kl_entropy(np.zeros(3), k=3)

    def test_invalid_k(self):
        with pytest.raises(EstimatorError):
            kl_entropy(np.random.default_rng(0).normal(size=50), k=0)

    def test_1d_input_promoted(self):
        rng = np.random.default_rng(4)
        flat = rng.normal(size=500)
        assert kl_entropy(flat) == pytest.approx(kl_entropy(flat[:, None]))


class TestHistogramEntropy:
    def test_approximates_gaussian(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(0, 1, size=20000)
        assert histogram_entropy(samples, bins=32) == pytest.approx(2.047, abs=0.2)

    def test_invalid_bins(self):
        with pytest.raises(EstimatorError):
            histogram_entropy(np.random.default_rng(0).normal(size=100), bins=1)

    def test_agrees_with_knn_in_order_of_magnitude(self):
        rng = np.random.default_rng(6)
        samples = rng.normal(0, 2, size=10000)
        knn = kl_entropy(samples)
        hist = histogram_entropy(samples, bins=40)
        assert abs(knn - hist) < 0.5
