"""Tests for the analytic SNR↔MI bounds (§2.3's theoretical backbone)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimatorError
from repro.privacy import (
    awgn_capacity_bits,
    gaussian_channel_bracket,
    gaussian_entropy_bits,
    ksg_mutual_information,
    laplace_channel_bracket,
    laplace_entropy_bits,
    max_entropy_upper_bound_bits,
    saddle_point_lower_bound_bits,
    snr_privacy_curve,
)


class TestEntropies:
    def test_laplace_entropy_closed_form(self):
        assert laplace_entropy_bits(1.0) == pytest.approx(
            math.log2(2.0 * math.e)
        )

    def test_gaussian_entropy_closed_form(self):
        expected = 0.5 * math.log2(2.0 * math.pi * math.e)
        assert gaussian_entropy_bits(1.0) == pytest.approx(expected)

    def test_laplace_vs_gaussian_at_equal_variance(self):
        """Gaussian is max-entropy at fixed variance: h_G >= h_L."""
        scale = 0.7
        std = math.sqrt(2.0) * scale  # equal variance
        assert gaussian_entropy_bits(std) >= laplace_entropy_bits(scale)

    def test_invalid_scale(self):
        with pytest.raises(EstimatorError):
            laplace_entropy_bits(0.0)
        with pytest.raises(EstimatorError):
            gaussian_entropy_bits(-1.0)


class TestSaddlePoint:
    def test_matches_awgn_capacity(self):
        assert saddle_point_lower_bound_bits(3.0) == pytest.approx(
            awgn_capacity_bits(3.0)
        )

    def test_scales_with_dims(self):
        assert saddle_point_lower_bound_bits(1.0, dims=4) == pytest.approx(
            4 * saddle_point_lower_bound_bits(1.0)
        )

    def test_zero_snr_zero_leakage(self):
        assert saddle_point_lower_bound_bits(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(EstimatorError):
            saddle_point_lower_bound_bits(-1.0)
        with pytest.raises(EstimatorError):
            saddle_point_lower_bound_bits(1.0, dims=0)


class TestBrackets:
    def test_gaussian_bracket_is_tight(self):
        """For Gaussian noise both bounds coincide at the AWGN formula."""
        bracket = gaussian_channel_bracket(signal_power=4.0, noise_std=1.0)
        assert bracket.lower_bits == pytest.approx(awgn_capacity_bits(4.0))
        assert bracket.upper_bits == pytest.approx(bracket.lower_bits, abs=1e-9)

    def test_laplace_bracket_ordering(self):
        bracket = laplace_channel_bracket(signal_power=4.0, noise_scale=1.0)
        assert bracket.lower_bits <= bracket.upper_bits
        assert bracket.snr == pytest.approx(4.0 / 2.0)

    def test_bracket_monotone_in_noise(self):
        quiet = laplace_channel_bracket(4.0, noise_scale=0.5)
        loud = laplace_channel_bracket(4.0, noise_scale=2.0)
        assert loud.lower_bits < quiet.lower_bits
        assert loud.upper_bits < quiet.upper_bits

    def test_contains(self):
        bracket = laplace_channel_bracket(4.0, noise_scale=1.0)
        middle = 0.5 * (bracket.lower_bits + bracket.upper_bits)
        assert bracket.contains(middle)
        assert not bracket.contains(bracket.upper_bits + 1.0)
        assert bracket.contains(bracket.upper_bits + 0.5, slack=0.6)

    def test_validation(self):
        with pytest.raises(EstimatorError):
            laplace_channel_bracket(1.0, noise_scale=0.0)
        with pytest.raises(EstimatorError):
            gaussian_channel_bracket(1.0, noise_std=0.0)
        with pytest.raises(EstimatorError):
            max_entropy_upper_bound_bits(0.0, 1.0, 1.0)


class TestEmpiricalAgreement:
    """The measured KSG MI of synthetic channels must respect the bracket."""

    @pytest.mark.parametrize("noise_scale", [0.5, 1.0, 2.0])
    def test_laplace_channel_within_bracket(self, noise_scale):
        rng = np.random.default_rng(42)
        n = 1200
        signal = rng.normal(0.0, 2.0, size=(n, 1))
        noise = rng.laplace(0.0, noise_scale, size=(n, 1))
        measured = ksg_mutual_information(signal, signal + noise, k=4)
        bracket = laplace_channel_bracket(4.0, noise_scale)
        # kNN estimates carry bias at finite N; allow modest slack.
        assert bracket.contains(measured, slack=0.3)

    def test_gaussian_channel_matches_awgn(self):
        rng = np.random.default_rng(7)
        n = 1500
        signal = rng.normal(0.0, 1.0, size=(n, 1))
        noise = rng.normal(0.0, 1.0, size=(n, 1))
        measured = ksg_mutual_information(signal, signal + noise, k=4)
        assert measured == pytest.approx(awgn_capacity_bits(1.0), abs=0.15)


class TestCurve:
    def test_curve_monotone(self):
        in_vivo, ex_vivo = snr_privacy_curve(np.array([0.5, 1.0, 2.0, 4.0]))
        # Higher SNR -> lower in-vivo privacy and lower ex-vivo privacy.
        assert np.all(np.diff(in_vivo) < 0)
        assert np.all(np.diff(ex_vivo) < 0)

    def test_curve_coordinates(self):
        in_vivo, ex_vivo = snr_privacy_curve(np.array([1.0]))
        assert in_vivo[0] == pytest.approx(1.0)
        assert ex_vivo[0] == pytest.approx(1.0 / awgn_capacity_bits(1.0))

    def test_curve_validation(self):
        with pytest.raises(EstimatorError):
            snr_privacy_curve(np.array([0.0, 1.0]))

    @given(snr=st.floats(0.05, 50.0), dims=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_bracket_ordering_property(self, snr, dims):
        signal_power = 2.0
        scale = math.sqrt(signal_power / (2.0 * snr))
        bracket = laplace_channel_bracket(signal_power, scale, dims=dims)
        assert 0.0 <= bracket.lower_bits <= bracket.upper_bits
        assert bracket.snr == pytest.approx(snr, rel=1e-9)
