"""Tests for the binned MI estimator and its building blocks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimatorError
from repro.privacy import (
    binned_mutual_information,
    joint_code,
    plugin_entropy_bits,
    quantile_bin,
)


class TestQuantileBin:
    def test_output_range(self, rng):
        values = rng.normal(size=500)
        binned = quantile_bin(values, 8)
        assert binned.min() >= 0
        assert binned.max() <= 7

    def test_equal_probability_occupancy(self, rng):
        values = rng.normal(size=8000)
        binned = quantile_bin(values, 8)
        _, counts = np.unique(binned, return_counts=True)
        assert len(counts) == 8
        # Quantile bins should be close to uniformly occupied.
        assert counts.min() > 0.8 * len(values) / 8

    def test_monotone(self, rng):
        values = np.sort(rng.normal(size=100))
        binned = quantile_bin(values, 4)
        assert np.all(np.diff(binned) >= 0)

    def test_too_few_bins_rejected(self):
        with pytest.raises(EstimatorError):
            quantile_bin(np.arange(10.0), 1)

    def test_empty_rejected(self):
        with pytest.raises(EstimatorError):
            quantile_bin(np.array([]), 4)


class TestJointCode:
    def test_bijective_on_grid(self):
        grid = np.array([[i, j] for i in range(4) for j in range(4)])
        codes = joint_code(grid, 4)
        assert len(np.unique(codes)) == 16

    def test_one_dimensional_passthrough(self):
        codes = joint_code(np.array([0, 1, 2, 3]), 4)
        np.testing.assert_array_equal(codes, [0, 1, 2, 3])


class TestPluginEntropy:
    def test_uniform_entropy(self):
        codes = np.repeat(np.arange(8), 100)
        entropy = plugin_entropy_bits(codes, miller_madow=False)
        assert entropy == pytest.approx(3.0, abs=1e-9)

    def test_degenerate_entropy_zero(self):
        assert plugin_entropy_bits(np.zeros(50), miller_madow=False) == 0.0

    def test_miller_madow_increases_estimate(self, rng):
        codes = rng.integers(0, 16, size=100)
        plain = plugin_entropy_bits(codes, miller_madow=False)
        corrected = plugin_entropy_bits(codes, miller_madow=True)
        assert corrected > plain

    def test_empty_rejected(self):
        with pytest.raises(EstimatorError):
            plugin_entropy_bits(np.array([]))


class TestBinnedMI:
    def test_identical_variables_high_mi(self, rng):
        x = rng.normal(size=(600, 1))
        mi = binned_mutual_information(x, x, n_bins=8, max_dims=1)
        # I(X;X) = H(X) ≈ log2(8) = 3 bits after equal-probability binning.
        assert mi > 2.0

    def test_independent_variables_low_mi(self, rng):
        x = rng.normal(size=(800, 1))
        y = rng.normal(size=(800, 1))
        mi = binned_mutual_information(x, y, n_bins=6, max_dims=1)
        assert mi < 0.25

    def test_tracks_correlation_strength(self, rng):
        n = 1500
        x = rng.normal(size=(n, 1))
        noise = rng.normal(size=(n, 1))
        weak = binned_mutual_information(x, x + 3.0 * noise, n_bins=6, max_dims=1)
        strong = binned_mutual_information(x, x + 0.3 * noise, n_bins=6, max_dims=1)
        assert strong > weak

    def test_nonnegative(self, rng):
        x = rng.normal(size=(100, 3))
        y = rng.normal(size=(100, 3))
        assert binned_mutual_information(x, y) >= 0.0

    def test_multidim_uses_leading_columns(self, rng):
        n = 700
        x = rng.normal(size=(n, 4))
        y = np.concatenate([x[:, :2], rng.normal(size=(n, 2))], axis=1)
        mi = binned_mutual_information(x, y, n_bins=4, max_dims=2)
        assert mi > 0.4

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(EstimatorError):
            binned_mutual_information(rng.normal(size=(10, 2)), rng.normal(size=(9, 2)))

    def test_bad_max_dims_rejected(self, rng):
        with pytest.raises(EstimatorError):
            binned_mutual_information(
                rng.normal(size=(50, 2)), rng.normal(size=(50, 2)), max_dims=0
            )

    def test_agrees_with_ksg_ordering(self, rng):
        """Binned and KSG estimators must order noisy channels the same way."""
        from repro.privacy import ksg_mutual_information

        n = 900
        x = rng.normal(size=(n, 2))
        clean = x + 0.1 * rng.normal(size=(n, 2))
        noisy = x + 2.0 * rng.normal(size=(n, 2))
        binned_clean = binned_mutual_information(x, clean, n_bins=6, max_dims=2)
        binned_noisy = binned_mutual_information(x, noisy, n_bins=6, max_dims=2)
        ksg_clean = ksg_mutual_information(x, clean)
        ksg_noisy = ksg_mutual_information(x, noisy)
        assert binned_clean > binned_noisy
        assert ksg_clean > ksg_noisy


class TestProperties:
    @given(
        seed=st.integers(0, 2**16),
        n_bins=st.integers(2, 10),
        n=st.integers(64, 256),
    )
    @settings(max_examples=25, deadline=None)
    def test_binning_is_permutation_covariant(self, seed, n_bins, n):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=n)
        perm = rng.permutation(n)
        binned = quantile_bin(values, n_bins)
        np.testing.assert_array_equal(quantile_bin(values[perm], n_bins), binned[perm])

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_mi_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(200, 2))
        y = x + rng.normal(size=(200, 2))
        forward = binned_mutual_information(x, y, n_bins=4, max_dims=2)
        backward = binned_mutual_information(y, x, n_bins=4, max_dims=2)
        assert forward == pytest.approx(backward, abs=1e-9)
