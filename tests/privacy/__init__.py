"""Test package."""
