"""Tests for PCA reduction and the leakage measurement pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimatorError
from repro.privacy import (
    PCAReducer,
    estimate_leakage,
    flatten_batch,
    information_loss_bits,
    information_loss_percent,
)


class TestPCAReducer:
    def test_reduces_dimension(self, rng):
        data = rng.standard_normal((50, 20))
        out = PCAReducer(5).fit_transform(data)
        assert out.shape == (50, 5)

    def test_whitening_unit_variance(self, rng):
        data = rng.standard_normal((500, 10)) * np.arange(1, 11)
        out = PCAReducer(4, whiten=True).fit_transform(data)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=0.05)

    def test_components_capped_by_rank(self, rng):
        data = rng.standard_normal((5, 20))
        out = PCAReducer(10).fit_transform(data)
        assert out.shape[1] == 4  # n-1

    def test_first_component_captures_dominant_direction(self, rng):
        # Data varies along one axis 100x more than the others.
        base = rng.standard_normal((300, 1)) * 10.0
        noise = rng.standard_normal((300, 9)) * 0.1
        data = np.concatenate([base, noise], axis=1)
        reducer = PCAReducer(2, whiten=False).fit(data)
        leading = np.abs(reducer.components_[0])
        assert leading[0] > 0.99

    def test_transform_before_fit_rejected(self, rng):
        with pytest.raises(EstimatorError):
            PCAReducer(2).transform(rng.standard_normal((5, 4)))

    def test_invalid_component_count(self):
        with pytest.raises(EstimatorError):
            PCAReducer(0)

    def test_requires_2d(self, rng):
        with pytest.raises(EstimatorError):
            PCAReducer(2).fit(rng.standard_normal(10))

    def test_deterministic(self, rng):
        data = rng.standard_normal((40, 8))
        a = PCAReducer(3).fit_transform(data)
        b = PCAReducer(3).fit_transform(data)
        np.testing.assert_allclose(a, b)


class TestFlattenBatch:
    def test_flattens_nchw(self, rng):
        out = flatten_batch(rng.standard_normal((4, 3, 2, 2)))
        assert out.shape == (4, 12)

    def test_rejects_scalars(self):
        with pytest.raises(EstimatorError):
            flatten_batch(np.zeros(5))


class TestEstimateLeakage:
    def test_noise_monotonically_destroys_information(self, rng):
        x = rng.standard_normal((300, 40))
        mis = []
        for sigma in [0.1, 1.0, 10.0]:
            a = x + sigma * rng.standard_normal(x.shape)
            mis.append(estimate_leakage(x, a, n_components=6).mi_bits)
        assert mis[0] > mis[1] > mis[2]

    def test_identity_map_leaks_most(self, rng):
        x = rng.standard_normal((200, 30))
        identity = estimate_leakage(x, x.copy(), n_components=5).mi_bits
        independent = estimate_leakage(
            x, rng.standard_normal(x.shape), n_components=5
        ).mi_bits
        assert identity > independent + 1.0

    def test_result_fields(self, rng):
        x = rng.standard_normal((100, 20))
        est = estimate_leakage(x, x + rng.standard_normal(x.shape), n_components=4)
        assert est.n_samples == 100
        assert est.estimator == "ksg"
        assert est.ex_vivo_privacy == pytest.approx(1.0 / est.mi_bits, rel=1e-6)

    def test_subsampling(self, rng):
        x = rng.standard_normal((300, 10))
        est = estimate_leakage(
            x, x + 0.5 * rng.standard_normal(x.shape), n_components=4, max_samples=64, rng=rng
        )
        assert est.n_samples == 64

    def test_entropy_sum_estimator_option(self, rng):
        x = rng.standard_normal((200, 10))
        a = x + rng.standard_normal(x.shape)
        ksg = estimate_leakage(x, a, n_components=4, estimator="ksg").mi_bits
        esum = estimate_leakage(x, a, n_components=4, estimator="entropy_sum").mi_bits
        assert esum == pytest.approx(ksg, abs=0.7)

    def test_unknown_estimator(self, rng):
        x = rng.standard_normal((50, 5))
        with pytest.raises(EstimatorError):
            estimate_leakage(x, x, estimator="mine")

    def test_unpaired_batches_rejected(self, rng):
        with pytest.raises(EstimatorError):
            estimate_leakage(
                rng.standard_normal((10, 4)), rng.standard_normal((11, 4))
            )

    def test_accepts_image_shaped_batches(self, rng):
        x = rng.standard_normal((80, 1, 8, 8))
        a = rng.standard_normal((80, 4, 4, 4))
        est = estimate_leakage(x, a, n_components=4)
        assert np.isfinite(est.mi_bits)


class TestInformationLoss:
    def test_bits(self):
        assert information_loss_bits(300.0, 18.9) == pytest.approx(281.1)

    def test_percent_table1_lenet(self):
        # Table 1: LeNet 301.84 -> 18.9 is a 93.74% loss.
        assert information_loss_percent(301.84, 18.9) == pytest.approx(93.74, abs=0.01)

    def test_percent_requires_positive_original(self):
        with pytest.raises(EstimatorError):
            information_loss_percent(0.0, 0.0)


class TestRandomizedSVD:
    def _spectrum_data(self, rng, n=60, d=40, k=6):
        # Well-separated decaying spectrum so the sketch captures the
        # subspace to near machine precision.
        u, _ = np.linalg.qr(rng.standard_normal((n, n)))
        v, _ = np.linalg.qr(rng.standard_normal((d, d)))
        s = np.zeros((n, d))
        s[np.arange(min(n, d)), np.arange(min(n, d))] = 10.0 ** -np.arange(min(n, d))
        return u @ s @ v.T

    def test_seeded_parity_with_exact_svd(self, rng):
        from repro.privacy import randomized_svd

        data = self._spectrum_data(rng)
        _, s_exact, vt_exact = np.linalg.svd(data, full_matrices=False)
        _, s_rand, vt_rand = randomized_svd(
            data, 5, rng=np.random.default_rng(7)
        )
        np.testing.assert_allclose(s_rand, s_exact[:5], rtol=1e-8)
        # Components agree up to sign.
        overlap = np.abs(np.sum(vt_rand * vt_exact[:5], axis=1))
        np.testing.assert_allclose(overlap, 1.0, atol=1e-8)

    def test_reducer_randomized_matches_exact_projection(self, rng):
        data = self._spectrum_data(rng, n=80, d=50, k=4) + rng.standard_normal((80, 50)) * 1e-9
        exact = PCAReducer(4, svd="exact").fit(data)
        randomized = PCAReducer(
            4, svd="randomized", rng=np.random.default_rng(3)
        ).fit(data)
        np.testing.assert_allclose(
            randomized.explained_variance_, exact.explained_variance_, rtol=1e-6
        )
        # Projections agree up to per-component sign.
        signs = np.sign(
            np.sum(randomized.components_ * exact.components_, axis=1)
        )
        np.testing.assert_allclose(
            randomized.transform(data) * signs,
            exact.transform(data),
            atol=1e-6,
        )

    def test_randomized_is_seed_deterministic(self, rng):
        data = rng.standard_normal((40, 30))
        a = PCAReducer(3, svd="randomized", rng=np.random.default_rng(5)).fit_transform(data)
        b = PCAReducer(3, svd="randomized", rng=np.random.default_rng(5)).fit_transform(data)
        np.testing.assert_array_equal(a, b)

    def test_auto_stays_exact_on_small_inputs(self, rng):
        data = rng.standard_normal((50, 20))
        auto = PCAReducer(4, svd="auto").fit(data)
        exact = PCAReducer(4, svd="exact").fit(data)
        np.testing.assert_array_equal(auto.components_, exact.components_)

    def test_auto_goes_randomized_at_scale(self):
        from repro.privacy.reduction import PCAReducer as Reducer

        reducer = Reducer(8, svd="auto")
        assert reducer._use_randomized(n=1000, d=4000, k=8)
        assert not reducer._use_randomized(n=100, d=50, k=8)

    def test_invalid_arguments(self, rng):
        from repro.privacy import randomized_svd

        with pytest.raises(EstimatorError):
            PCAReducer(3, svd="qr")
        with pytest.raises(EstimatorError):
            randomized_svd(rng.standard_normal((10, 5)), 9)
        with pytest.raises(EstimatorError):
            randomized_svd(rng.standard_normal(10), 2)
