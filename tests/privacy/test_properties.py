"""Property-based tests (hypothesis) for the privacy estimators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    awgn_capacity_bits,
    correlated_gaussian_mi_bits,
    gaussian_entropy,
    kl_entropy,
    ksg_mutual_information,
    mi_to_ex_vivo_privacy,
)


class TestClosedFormProperties:
    @given(st.floats(min_value=0.0, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_capacity_nonnegative(self, snr):
        assert awgn_capacity_bits(snr) >= 0.0

    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_capacity_strictly_increasing(self, snr):
        assert awgn_capacity_bits(snr * 1.5) > awgn_capacity_bits(snr)

    @given(st.floats(min_value=-0.99, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_gaussian_mi_symmetric_in_rho(self, rho):
        assert correlated_gaussian_mi_bits(rho) == correlated_gaussian_mi_bits(-rho)

    @given(st.floats(min_value=0.0, max_value=0.98))
    @settings(max_examples=50, deadline=None)
    def test_gaussian_mi_increasing_in_abs_rho(self, rho):
        assert correlated_gaussian_mi_bits(rho + 0.01) > correlated_gaussian_mi_bits(rho)

    @given(st.floats(min_value=0.05, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_entropy_translation_invariant_scale_covariant(self, sigma):
        base = gaussian_entropy(np.array([[1.0]]))
        scaled = gaussian_entropy(np.array([[sigma**2]]))
        assert scaled == base + np.log2(sigma) or abs(
            scaled - (base + np.log2(sigma))
        ) < 1e-9

    @given(st.floats(min_value=1e-6, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_ex_vivo_privacy_decreasing_in_mi(self, mi):
        assert mi_to_ex_vivo_privacy(mi * 2) < mi_to_ex_vivo_privacy(mi)


class TestEstimatorProperties:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_kl_entropy_translation_invariance(self, shift):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(400, 2))
        base = kl_entropy(samples)
        shifted = kl_entropy(samples + shift)
        assert abs(base - shifted) < 0.15

    @given(st.floats(min_value=0.3, max_value=5.0))
    @settings(max_examples=10, deadline=None)
    def test_noise_never_increases_mi(self, sigma):
        # Data-processing-style property of the estimate: adding independent
        # noise must not (significantly) raise measured MI.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(500, 2))
        y = x + 0.1 * rng.normal(size=x.shape)
        clean = ksg_mutual_information(x, y, k=4)
        noisy = ksg_mutual_information(
            x, y + sigma * rng.normal(size=y.shape), k=4
        )
        assert noisy <= clean + 0.1

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_ksg_k_stability(self, k):
        rng = np.random.default_rng(2)
        cov = np.array([[1.0, 0.8], [0.8, 1.0]])
        xy = rng.multivariate_normal([0, 0], cov, size=1000)
        estimate = ksg_mutual_information(xy[:, :1], xy[:, 1:], k=k)
        truth = correlated_gaussian_mi_bits(0.8)
        assert abs(estimate - truth) < 0.25
