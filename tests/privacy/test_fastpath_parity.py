"""Parity of the vectorised estimator backends with the original loops.

The fast paths (compiled kernel, vectorised+chunked scipy queries) must be
numerically indistinguishable from the pre-change implementations, which
are retained verbatim as ``*_reference`` functions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy import (
    entropy_sum_mi,
    kl_entropy,
    kl_entropy_reference,
    ksg_mutual_information,
    ksg_mutual_information_reference,
    kth_neighbor_distances,
)
from repro.privacy import _fastknn
from repro.errors import EstimatorError

needs_kernel = pytest.mark.skipif(
    not _fastknn.available(), reason="no C compiler for the fastknn kernel"
)


def paired(n: int, d: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = 0.6 * x + rng.normal(size=(n, d))
    return x, y


BACKENDS = ["scipy"] + (["c"] if _fastknn.available() else [])


class TestKSGParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n,d,k", [(60, 1, 3), (200, 3, 3), (500, 8, 4), (900, 12, 1)])
    def test_matches_reference(self, backend, n, d, k):
        x, y = paired(n, d, seed=n + d)
        reference = ksg_mutual_information_reference(x, y, k=k)
        fast = ksg_mutual_information(x, y, k=k, backend=backend)
        assert fast == pytest.approx(reference, abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_asymmetric_dimensions(self, backend):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(300, 2))
        y = np.concatenate([0.8 * x, rng.normal(size=(300, 5))], axis=1)
        reference = ksg_mutual_information_reference(x, y, k=3)
        fast = ksg_mutual_information(x, y, k=3, backend=backend)
        assert fast == pytest.approx(reference, abs=1e-9)

    def test_chunked_scipy_path_matches_unchunked(self):
        x, y = paired(400, 4, seed=11)
        whole = ksg_mutual_information(x, y, backend="scipy", chunk_size=10_000)
        chunked = ksg_mutual_information(x, y, backend="scipy", chunk_size=37)
        assert chunked == pytest.approx(whole, abs=1e-12)

    @needs_kernel
    def test_auto_prefers_kernel_and_agrees(self):
        x, y = paired(500, 6, seed=3)
        auto = ksg_mutual_information(x, y)
        forced = ksg_mutual_information(x, y, backend="c")
        assert auto == forced

    def test_unknown_backend_rejected(self):
        x, y = paired(64, 2)
        with pytest.raises(EstimatorError):
            ksg_mutual_information(x, y, backend="gpu")

    def test_nonpositive_chunk_size_rejected(self):
        x, y = paired(64, 2)
        with pytest.raises(EstimatorError):
            ksg_mutual_information(x, y, backend="scipy", chunk_size=0)
        with pytest.raises(EstimatorError):
            kl_entropy(x, backend="scipy", chunk_size=-3)

    def test_duplicate_points_tolerated(self):
        # Jitter breaks ties; fast paths must agree on degenerate data too.
        x = np.repeat(np.arange(30.0)[:, None], 4, axis=0)
        y = x.copy()
        reference = ksg_mutual_information_reference(x, y, k=3)
        for backend in BACKENDS:
            assert ksg_mutual_information(x, y, k=3, backend=backend) == pytest.approx(
                reference, abs=1e-9
            )


class TestKLParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n,d,k", [(80, 1, 3), (300, 5, 3), (700, 10, 5)])
    def test_matches_reference(self, backend, n, d, k):
        rng = np.random.default_rng(n + d)
        samples = rng.normal(size=(n, d)) @ rng.normal(size=(d, d))
        reference = kl_entropy_reference(samples, k=k)
        fast = kl_entropy(samples, k=k, backend=backend)
        assert fast == pytest.approx(reference, abs=1e-9)

    def test_chunked_distances_match(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(size=(250, 4))
        whole = kth_neighbor_distances(samples, k=3, backend="scipy", chunk_size=10_000)
        chunked = kth_neighbor_distances(samples, k=3, backend="scipy", chunk_size=19)
        np.testing.assert_array_equal(whole, chunked)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_k_out_of_range_rejected(self, backend):
        # k >= N would read uninitialised selection state in the C kernel
        # (and silent infs from scipy); both must refuse instead.
        rng = np.random.default_rng(8)
        samples = rng.normal(size=(4, 2))
        with pytest.raises(EstimatorError):
            kth_neighbor_distances(samples, k=6, backend=backend)
        with pytest.raises(EstimatorError):
            kth_neighbor_distances(samples, k=0, backend=backend)

    @needs_kernel
    def test_kernel_distances_match_scipy(self):
        rng = np.random.default_rng(6)
        samples = rng.normal(size=(400, 7))
        scipy_eps = kth_neighbor_distances(samples, k=4, backend="scipy")
        kernel_eps = kth_neighbor_distances(samples, k=4, backend="c")
        np.testing.assert_allclose(kernel_eps, scipy_eps, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_entropy_sum_mi_matches_reference_composition(self, backend):
        x, y = paired(400, 5, seed=21)
        fast = entropy_sum_mi(x, y, k=3, backend=backend)
        # Reference composition built from the reference entropy terms on
        # the same standardised inputs the estimator uses internally.
        from repro.privacy.mutual_information import _paired

        xs, ys = _paired(x, y, 3)
        joint = np.concatenate([xs, ys], axis=1)
        reference = max(
            kl_entropy_reference(xs, k=3)
            + kl_entropy_reference(ys, k=3)
            - kl_entropy_reference(joint, k=3),
            0.0,
        )
        assert fast == pytest.approx(reference, abs=1e-9)


@needs_kernel
class TestKernelInternals:
    def test_radius_bitwise_vs_scipy(self):
        from scipy.spatial import cKDTree

        x, y = paired(500, 8, seed=9)
        radius, nx, ny = _fastknn.ksg_counts(x, y, k=3)
        joint = np.concatenate([x, y], axis=1)
        tree = cKDTree(joint)
        expected = tree.query(joint, k=4, p=np.inf)[0][:, 3]
        np.testing.assert_array_equal(radius, expected)
        x_tree = cKDTree(x)
        expected_nx = (
            x_tree.query_ball_point(
                x, expected - 1e-12, p=np.inf, return_length=True
            )
            - 1
        )
        np.testing.assert_array_equal(nx, expected_nx)

    def test_invalid_k_rejected(self):
        x, y = paired(100, 2)
        with pytest.raises(ValueError):
            _fastknn.ksg_counts(x, y, k=0)
        with pytest.raises(ValueError):
            _fastknn.euclidean_kth_distance(x, k=_fastknn.MAX_K + 1)
