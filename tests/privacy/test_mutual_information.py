"""Tests for the MI estimators against closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimatorError
from repro.privacy import (
    awgn_capacity_bits,
    awgn_vector_mi_bits,
    correlated_gaussian_mi_bits,
    discrete_mutual_information,
    entropy_sum_mi,
    ksg_mutual_information,
    mi_to_ex_vivo_privacy,
    multivariate_gaussian_mi_bits,
    snr_to_in_vivo_privacy,
)


def correlated_pairs(rho: float, n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    cov = np.array([[1.0, rho], [rho, 1.0]])
    xy = rng.multivariate_normal([0, 0], cov, size=n)
    return xy[:, :1], xy[:, 1:]


class TestKSG:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.9])
    def test_matches_gaussian_closed_form(self, rho):
        x, y = correlated_pairs(rho, 1500)
        expected = correlated_gaussian_mi_bits(rho)
        assert ksg_mutual_information(x, y, k=4) == pytest.approx(expected, abs=0.12)

    def test_independent_variables_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(800, 2))
        y = rng.normal(size=(800, 2))
        assert ksg_mutual_information(x, y) < 0.1

    def test_deterministic_relation_large(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(500, 1))
        y = x + 1e-4 * rng.normal(size=(500, 1))
        assert ksg_mutual_information(x, y) > 3.0

    def test_non_negative(self):
        rng = np.random.default_rng(3)
        for seed in range(5):
            x = np.random.default_rng(seed).normal(size=(100, 1))
            y = np.random.default_rng(seed + 50).normal(size=(100, 1))
            assert ksg_mutual_information(x, y) >= 0.0

    def test_symmetry(self):
        x, y = correlated_pairs(0.7, 600)
        forward = ksg_mutual_information(x, y, k=3)
        backward = ksg_mutual_information(y, x, k=3)
        assert forward == pytest.approx(backward, abs=0.05)

    def test_unpaired_lengths_rejected(self):
        with pytest.raises(EstimatorError):
            ksg_mutual_information(np.zeros((10, 1)), np.zeros((11, 1)))

    def test_invalid_k(self):
        x, y = correlated_pairs(0.5, 50)
        with pytest.raises(EstimatorError):
            ksg_mutual_information(x, y, k=50)

    def test_invariance_to_marginal_scaling(self):
        # MI is invariant under invertible per-variable transforms.
        x, y = correlated_pairs(0.8, 1200)
        base = ksg_mutual_information(x, y, k=4)
        scaled = ksg_mutual_information(x * 100.0, y * 0.01, k=4)
        assert scaled == pytest.approx(base, abs=0.1)


class TestEntropySumMI:
    @pytest.mark.parametrize("rho", [0.4, 0.8])
    def test_matches_gaussian_closed_form(self, rho):
        x, y = correlated_pairs(rho, 1500)
        expected = correlated_gaussian_mi_bits(rho)
        assert entropy_sum_mi(x, y, k=4) == pytest.approx(expected, abs=0.15)

    def test_agrees_with_ksg(self):
        x, y = correlated_pairs(0.6, 1200)
        a = ksg_mutual_information(x, y, k=4)
        b = entropy_sum_mi(x, y, k=4)
        assert a == pytest.approx(b, abs=0.15)

    def test_non_negative_clamp(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(60, 3))
        y = rng.normal(size=(60, 3))
        assert entropy_sum_mi(x, y) >= 0.0


class TestDiscreteMI:
    def test_identical_labels(self):
        labels = np.array([0, 1, 2, 3] * 25)
        assert discrete_mutual_information(labels, labels) == pytest.approx(2.0)

    def test_independent_labels(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert discrete_mutual_information(a, b) < 0.01

    def test_empty_rejected(self):
        with pytest.raises(EstimatorError):
            discrete_mutual_information(np.array([]), np.array([]))

    def test_length_mismatch(self):
        with pytest.raises(EstimatorError):
            discrete_mutual_information(np.zeros(3), np.zeros(4))


class TestGaussianChannel:
    def test_capacity_zero_at_zero_snr(self):
        assert awgn_capacity_bits(0.0) == 0.0

    def test_capacity_monotone_in_snr(self):
        snrs = [0.1, 1.0, 10.0, 100.0]
        caps = [awgn_capacity_bits(s) for s in snrs]
        assert caps == sorted(caps)

    def test_capacity_value(self):
        assert awgn_capacity_bits(3.0) == pytest.approx(1.0)  # 0.5 log2 4

    def test_vector_channel_sums(self):
        mi = awgn_vector_mi_bits(np.array([3.0, 3.0]), 1.0)
        assert mi == pytest.approx(2.0)

    def test_vector_channel_validation(self):
        with pytest.raises(EstimatorError):
            awgn_vector_mi_bits(np.array([1.0]), 0.0)

    def test_multivariate_partition_matches_pairwise(self):
        rho = 0.6
        cov = np.array([[1.0, rho], [rho, 1.0]])
        assert multivariate_gaussian_mi_bits(cov, 1) == pytest.approx(
            correlated_gaussian_mi_bits(rho)
        )

    def test_ksg_matches_awgn_capacity(self):
        # I(X; X+N) for unit signal, sigma^2 noise — the exact setting the
        # paper's in-vivo/ex-vivo proxy argument relies on.
        rng = np.random.default_rng(10)
        x = rng.normal(size=(2000, 1))
        noise_var = 0.5
        y = x + rng.normal(0, np.sqrt(noise_var), size=(2000, 1))
        expected = awgn_capacity_bits(1.0 / noise_var)
        assert ksg_mutual_information(x, y, k=4) == pytest.approx(expected, abs=0.15)


class TestPrivacyNotions:
    def test_in_vivo_is_reciprocal_snr(self):
        assert snr_to_in_vivo_privacy(4.0) == 0.25

    def test_in_vivo_rejects_nonpositive(self):
        with pytest.raises(EstimatorError):
            snr_to_in_vivo_privacy(0.0)

    def test_ex_vivo_is_reciprocal_mi(self):
        assert mi_to_ex_vivo_privacy(10.0) == pytest.approx(0.1)

    def test_ex_vivo_floored_at_zero_mi(self):
        assert np.isfinite(mi_to_ex_vivo_privacy(0.0))
