"""Property-based tests (hypothesis) for the autograd engine.

These check algebraic identities of the Tensor ops and the linearity /
adjointness structure the backward passes rely on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.im2col import extract_windows, fold_windows
from repro.nn.tensor import Tensor, unbroadcast

FLOATS = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=32
)


def arrays(shape) -> st.SearchStrategy[np.ndarray]:
    return hnp.arrays(np.float64, shape, elements=FLOATS)


@st.composite
def matching_pairs(draw):
    shape = draw(hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4))
    return draw(arrays(shape)), draw(arrays(shape))


class TestAlgebraicIdentities:
    @given(matching_pairs())
    @settings(max_examples=40, deadline=None)
    def test_add_commutes(self, pair):
        a, b = pair
        lhs = (Tensor(a) + Tensor(b)).numpy()
        rhs = (Tensor(b) + Tensor(a)).numpy()
        np.testing.assert_allclose(lhs, rhs)

    @given(matching_pairs())
    @settings(max_examples=40, deadline=None)
    def test_mul_matches_numpy(self, pair):
        a, b = pair
        np.testing.assert_allclose((Tensor(a) * Tensor(b)).numpy(), a * b)

    @given(arrays((3, 4)))
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).numpy(), a)

    @given(arrays((2, 5)))
    @settings(max_examples=40, deadline=None)
    def test_sum_of_parts_equals_total(self, a):
        t = Tensor(a)
        np.testing.assert_allclose(
            t.sum(axis=0).sum().item(), t.sum().item(), rtol=1e-6, atol=1e-6
        )

    @given(arrays((4, 3)))
    @settings(max_examples=40, deadline=None)
    def test_relu_idempotent(self, a):
        t = Tensor(a)
        np.testing.assert_allclose(t.relu().relu().numpy(), t.relu().numpy())

    @given(arrays((4, 3)))
    @settings(max_examples=40, deadline=None)
    def test_softmax_invariant_to_shift(self, a):
        p1 = F.softmax(Tensor(a)).numpy()
        p2 = F.softmax(Tensor(a + 3.0)).numpy()
        np.testing.assert_allclose(p1, p2, atol=1e-6)


class TestGradientLinearity:
    @given(arrays((3, 3)))
    @settings(max_examples=25, deadline=None)
    def test_backward_scales_linearly_with_seed(self, a):
        # d(c*f)/dx == c * df/dx, exercised through the seed gradient.
        x1 = Tensor(a, requires_grad=True)
        (x1 * x1).sum().backward()
        x2 = Tensor(a, requires_grad=True)
        ((x2 * x2).sum() * 3.0).backward()
        np.testing.assert_allclose(x2.grad, 3.0 * x1.grad, rtol=1e-6, atol=1e-6)

    @given(matching_pairs())
    @settings(max_examples=25, deadline=None)
    def test_grad_of_sum_is_sum_of_grads(self, pair):
        a, b = pair
        x = Tensor(a, requires_grad=True)
        y = Tensor(b, requires_grad=True)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, b, rtol=1e-6, atol=1e-6)
        np.testing.assert_allclose(y.grad, a, rtol=1e-6, atol=1e-6)


class TestUnbroadcast:
    @given(arrays((4, 3)))
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_preserves_total_mass(self, grad):
        reduced = unbroadcast(grad, (3,))
        np.testing.assert_allclose(reduced.sum(), grad.sum(), rtol=1e-6)

    @given(arrays((2, 3, 4)))
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_identity_when_shapes_match(self, grad):
        np.testing.assert_allclose(unbroadcast(grad, (2, 3, 4)), grad)


class TestWindowAdjointness:
    @given(
        arrays((1, 2, 6, 6)),
        st.sampled_from([(2, 1), (2, 2), (3, 1), (3, 2)]),
    )
    @settings(max_examples=25, deadline=None)
    def test_fold_is_adjoint(self, x, geometry):
        kernel, stride = geometry
        windows = extract_windows(x, (kernel, kernel), (stride, stride), (0, 0))
        rng = np.random.default_rng(0)
        y = rng.standard_normal(windows.shape)
        lhs = float((windows * y).sum())
        folded = fold_windows(y, x.shape, (kernel, kernel), (stride, stride), (0, 0))
        rhs = float((x * folded).sum())
        np.testing.assert_allclose(lhs, rhs, rtol=1e-8, atol=1e-8)

    @given(arrays((1, 1, 5, 5)))
    @settings(max_examples=25, deadline=None)
    def test_conv_linearity_in_input(self, x):
        w = np.ones((1, 1, 3, 3))
        out1 = F.conv2d(Tensor(2.0 * x), Tensor(w)).numpy()
        out2 = 2.0 * F.conv2d(Tensor(x), Tensor(w)).numpy()
        np.testing.assert_allclose(out1, out2, rtol=1e-6, atol=1e-6)
