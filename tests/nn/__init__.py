"""Test package."""
