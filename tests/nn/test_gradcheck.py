"""Tests for the public gradient-checking utility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GradientError
from repro.nn import Conv2d, Linear, ReLU, Sequential, Tensor, gradcheck, gradcheck_all
from repro.nn.gradcheck import analytic_gradient, numeric_gradient


def param(values) -> Tensor:
    return Tensor(np.asarray(values, dtype=np.float64), requires_grad=True)


class TestGradcheck:
    def test_square_sum(self):
        x = param([[1.0, -2.0, 3.0]])
        result = gradcheck(lambda t: (t * t).sum(), x)
        assert result.passed
        assert result.max_abs_error < 1e-4

    def test_affine_chain(self):
        x = param([[0.5, -1.5], [2.0, 0.25]])
        result = gradcheck(lambda t: ((t * 3.0 + 1.0) * t).sum(), x)
        assert result.passed

    def test_broken_gradient_detected(self):
        """A wrong backward must fail the check."""
        x = param([1.0, 2.0, 3.0])

        def wrong(t: Tensor) -> Tensor:
            out = (t * t).sum()
            # Sabotage: double the analytic gradient via an extra use whose
            # numeric effect we cancel by subtracting constant data.
            return out + (t.detach() * t).sum() - (t.detach() * t.detach()).sum()

        result = gradcheck(wrong, x)
        assert not result.passed

    def test_requires_grad_enforced(self):
        x = Tensor(np.ones(3))
        with pytest.raises(GradientError):
            gradcheck(lambda t: (t * t).sum(), x)

    def test_nonscalar_objective_rejected(self):
        x = param([1.0, 2.0])
        with pytest.raises(GradientError):
            gradcheck(lambda t: t * t, x)

    def test_unused_parameter_rejected(self):
        x = param([1.0])
        with pytest.raises(GradientError):
            gradcheck(lambda t: Tensor(np.zeros(1), requires_grad=True).sum(), x)

    def test_bad_eps(self):
        x = param([1.0])
        with pytest.raises(GradientError):
            numeric_gradient(lambda: (x * x).sum(), x, eps=0.0)


class TestGradcheckAll:
    def test_linear_layer_parameters(self, rng):
        layer = Linear(4, 3, rng=rng)
        # Promote to float64 for finite-difference precision.
        for p in layer.parameters():
            p.data = p.data.astype(np.float64)
        x = Tensor(rng.normal(size=(5, 4)))

        results = gradcheck_all(
            lambda: (layer(x) * layer(x)).sum(), list(layer.parameters())
        )
        assert all(r.passed for r in results.values())

    def test_conv_relu_stack(self, rng):
        model = Sequential(Conv2d(1, 2, 3, rng=rng), ReLU())
        for p in model.parameters():
            p.data = p.data.astype(np.float64)
        x = Tensor(rng.normal(size=(2, 1, 6, 6)))
        results = gradcheck_all(lambda: model(x).sum(), list(model.parameters()))
        assert all(r.passed for r in results.values())

    def test_empty_parameters_rejected(self):
        with pytest.raises(GradientError):
            gradcheck_all(lambda: Tensor(np.zeros(1)), [])


class TestNumericGradient:
    def test_matches_closed_form(self):
        x = param([2.0, -3.0])
        grad = numeric_gradient(lambda: (x * x * x).sum(), x)
        np.testing.assert_allclose(grad, 3.0 * x.data**2, rtol=1e-5)

    def test_restores_parameter(self):
        x = param([1.0, 2.0])
        before = x.data.copy()
        numeric_gradient(lambda: (x * x).sum(), x)
        np.testing.assert_array_equal(x.data, before)

    def test_analytic_matches_numeric_on_mixed_graph(self):
        x = param([[0.3, 0.7]])
        objective = lambda: ((x * 2.0).sum() * (x * x).sum())  # noqa: E731
        np.testing.assert_allclose(
            analytic_gradient(objective, x),
            numeric_gradient(objective, x),
            rtol=1e-4,
        )
