"""Tests for Module/Parameter registration and state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn import Linear, Module, Parameter, ReLU, Sequential, Tensor


class TinyBlock(Module):
    def __init__(self):
        super().__init__()
        self.fc = Linear(2, 2, rng=np.random.default_rng(0))
        self.scale = Parameter(np.ones(1))
        self.register_buffer("calls", np.zeros(1))

    def forward(self, x):
        self.calls += 1
        return self.fc(x) * self.scale


class TestRegistration:
    def test_parameters_discovered(self):
        block = TinyBlock()
        names = dict(block.named_parameters())
        assert set(names) == {"fc.weight", "fc.bias", "scale"}

    def test_buffers_discovered(self):
        assert dict(TinyBlock().named_buffers()).keys() == {"calls"}

    def test_num_parameters(self):
        assert TinyBlock().num_parameters() == 2 * 2 + 2 + 1

    def test_children(self):
        block = TinyBlock()
        assert block.children() == [block.fc]

    def test_named_modules_includes_self(self):
        block = TinyBlock()
        names = [name for name, _ in block.named_modules()]
        assert "" in names and "fc" in names


class TestModes:
    def test_freeze_unfreeze(self):
        block = TinyBlock()
        block.freeze()
        assert all(not p.requires_grad for p in block.parameters())
        block.unfreeze()
        assert all(p.requires_grad for p in block.parameters())

    def test_frozen_backbone_receives_no_grad(self):
        block = TinyBlock().freeze()
        out = block(Tensor(np.ones((1, 2))))
        assert not out.requires_grad

    def test_zero_grad_clears(self):
        block = TinyBlock()
        out = block(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert block.fc.weight.grad is not None
        block.zero_grad()
        assert block.fc.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        a, b = TinyBlock(), TinyBlock()
        a.scale.data[...] = 5.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.scale.numpy(), [5.0])

    def test_state_dict_copies(self):
        block = TinyBlock()
        state = block.state_dict()
        state["scale"][...] = 99.0
        np.testing.assert_allclose(block.scale.numpy(), [1.0])

    def test_strict_missing_key_raises(self):
        block = TinyBlock()
        state = block.state_dict()
        del state["scale"]
        with pytest.raises(SerializationError):
            block.load_state_dict(state)

    def test_strict_unexpected_key_raises(self):
        block = TinyBlock()
        state = block.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(SerializationError):
            block.load_state_dict(state)

    def test_non_strict_ignores_extras(self):
        block = TinyBlock()
        state = block.state_dict()
        state["bogus"] = np.zeros(1)
        block.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        block = TinyBlock()
        state = block.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(SerializationError):
            block.load_state_dict(state)

    def test_nested_sequential_names(self):
        model = Sequential(
            ("features", Sequential(("fc", Linear(2, 2, rng=np.random.default_rng(0))))),
            ("act", ReLU()),
        )
        assert "features.fc.weight" in model.state_dict()
