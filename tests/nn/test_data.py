"""Tests for Dataset / DataLoader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.nn import DataLoader, Subset, TensorDataset, random_split


@pytest.fixture()
def dataset(rng):
    images = rng.standard_normal((20, 1, 4, 4)).astype(np.float32)
    labels = rng.integers(0, 3, size=20)
    return TensorDataset(images, labels)


class TestTensorDataset:
    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 20
        image, label = dataset[3]
        assert image.shape == (1, 4, 4)
        assert isinstance(label, int)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(DatasetError):
            TensorDataset(np.zeros((3, 2)), np.zeros(4))


class TestSubset:
    def test_indexing_remaps(self, dataset):
        subset = Subset(dataset, [5, 7])
        np.testing.assert_allclose(subset[0][0], dataset[5][0])
        assert len(subset) == 2


class TestRandomSplit:
    def test_disjoint_and_exhaustive(self, dataset, rng):
        train, test = random_split(dataset, [0.8, 0.2], rng)
        indices = set(train.indices) | set(test.indices)
        assert len(train) + len(test) == 20
        assert indices == set(range(20))

    def test_partial_split_allowed(self, dataset, rng):
        (train,) = random_split(dataset, [0.5], rng)
        assert len(train) == 10

    def test_overcommitted_fractions_rejected(self, dataset, rng):
        with pytest.raises(DatasetError):
            random_split(dataset, [0.8, 0.4], rng)

    def test_nonpositive_fraction_rejected(self, dataset, rng):
        with pytest.raises(DatasetError):
            random_split(dataset, [0.5, -0.1], rng)

    def test_deterministic_given_rng(self, dataset):
        a, _ = random_split(dataset, [0.5, 0.5], np.random.default_rng(3))
        b, _ = random_split(dataset, [0.5, 0.5], np.random.default_rng(3))
        assert a.indices == b.indices


class TestDataLoader:
    def test_batch_shapes(self, dataset):
        loader = DataLoader(dataset, batch_size=8)
        images, labels = next(iter(loader))
        assert images.shape == (8, 1, 4, 4)
        assert labels.shape == (8,)
        assert labels.dtype == np.int64

    def test_covers_all_samples(self, dataset):
        loader = DataLoader(dataset, batch_size=8)
        total = sum(len(labels) for _, labels in loader)
        assert total == 20

    def test_len_matches_iteration(self, dataset):
        loader = DataLoader(dataset, batch_size=8)
        assert len(loader) == len(list(loader)) == 3

    def test_drop_last(self, dataset):
        loader = DataLoader(dataset, batch_size=8, drop_last=True)
        batches = list(loader)
        assert len(batches) == 2
        assert all(len(labels) == 8 for _, labels in batches)

    def test_shuffle_changes_order_between_epochs(self, dataset):
        loader = DataLoader(dataset, batch_size=20, shuffle=True, rng=np.random.default_rng(0))
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self, dataset):
        loader = DataLoader(dataset, batch_size=20)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, dataset.labels)

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(DatasetError):
            DataLoader(dataset, batch_size=0)
