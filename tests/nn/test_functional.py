"""Gradient and value tests for the NN kernels."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn.im2col import conv_output_size, extract_windows, fold_windows
from repro.nn.tensor import Tensor
from tests.helpers import assert_gradcheck, tensor64


class TestIm2col:
    def test_output_size(self):
        assert conv_output_size(28, 5, 1, 0) == 24
        assert conv_output_size(32, 3, 2, 1) == 16

    def test_output_size_invalid(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)

    def test_extract_windows_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        windows = extract_windows(x, (3, 3), (2, 2), (1, 1))
        assert windows.shape == (2, 3, 3, 3, 4, 4)

    def test_extract_windows_values(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        windows = extract_windows(x, (2, 2), (1, 1), (0, 0))
        np.testing.assert_allclose(windows[0, 0, :, :, 1, 2], x[0, 0, 1:3, 2:4])

    def test_extract_windows_requires_nchw(self):
        with pytest.raises(ShapeError):
            extract_windows(np.zeros((4, 4)), (2, 2), (1, 1), (0, 0))

    def test_fold_is_adjoint_of_extract(self, rng):
        # <W(x), y> == <x, W^T(y)> for random x, y: the defining property.
        x = rng.standard_normal((2, 2, 6, 6))
        windows = extract_windows(x, (3, 3), (2, 2), (1, 1))
        y = rng.standard_normal(windows.shape)
        lhs = float((windows * y).sum())
        folded = fold_windows(y, x.shape, (3, 3), (2, 2), (1, 1))
        rhs = float((x * folded).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def test_matches_scipy_correlate(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w))
        expected = signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out.numpy()[0, 0], expected, rtol=1e-5, atol=1e-6)

    def test_multichannel_sums_over_input_channels(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((1, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w))
        expected = signal.correlate2d(x[0, 0], w[0, 0], mode="valid") + signal.correlate2d(
            x[0, 1], w[0, 1], mode="valid"
        )
        np.testing.assert_allclose(out.numpy()[0, 0], expected, rtol=1e-5, atol=1e-6)

    def test_bias_broadcasts_per_channel(self, rng):
        x = rng.standard_normal((2, 1, 4, 4))
        w = rng.standard_normal((3, 1, 3, 3))
        b = np.array([1.0, 2.0, 3.0])
        with_bias = F.conv2d(Tensor(x), Tensor(w), Tensor(b))
        without = F.conv2d(Tensor(x), Tensor(w))
        np.testing.assert_allclose(
            with_bias.numpy() - without.numpy(),
            np.broadcast_to(b.reshape(1, 3, 1, 1), with_bias.shape).astype(np.float32),
            rtol=1e-5,
        )

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), ((1, 2), (2, 0))])
    def test_gradcheck_geometries(self, rng, stride, padding):
        x = tensor64(rng.standard_normal((2, 2, 6, 7)))
        w = tensor64(rng.standard_normal((3, 2, 3, 3)) * 0.5)
        b = tensor64(rng.standard_normal(3) * 0.5)

        def loss():
            return (F.conv2d(x, w, b, stride, padding) ** 2).sum()

        assert_gradcheck(loss, x)
        assert_gradcheck(loss, w)
        assert_gradcheck(loss, b)

    def test_gradient_flows_through_additive_noise(self, rng):
        # The property Shredder depends on (paper section 2.1): d(out)/d(noise)
        # exists and equals the gradient w.r.t. the activation itself.
        a = Tensor(rng.standard_normal((1, 2, 5, 5)).astype(np.float64))
        noise = tensor64(np.zeros((1, 2, 5, 5)))
        w = Tensor(rng.standard_normal((2, 2, 3, 3)).astype(np.float64))
        out = (F.conv2d(a + noise, w) ** 2).sum()
        out.backward()
        assert noise.grad is not None
        assert np.abs(noise.grad).max() > 0

        a2 = tensor64(a.numpy())
        out2 = (F.conv2d(a2, w) ** 2).sum()
        out2.backward()
        np.testing.assert_allclose(noise.grad, a2.grad, rtol=1e-10)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2, 2)
        np.testing.assert_allclose(out.numpy()[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_overlapping_gradcheck(self, rng):
        x = tensor64(rng.standard_normal((2, 2, 6, 6)))
        assert_gradcheck(lambda: (F.max_pool2d(x, 3, 2) ** 2).sum(), x)

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2, 2)
        np.testing.assert_allclose(out.numpy()[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self, rng):
        x = tensor64(rng.standard_normal((1, 2, 5, 5)))
        assert_gradcheck(lambda: (F.avg_pool2d(x, 3, 2) ** 2).sum(), x)

    def test_pool_default_stride_equals_kernel(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 6, 6)))
        assert F.max_pool2d(x, 3).shape == (1, 1, 2, 2)


class TestSoftmaxLosses:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        probs = F.softmax(x).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), rtol=1e-5)
        assert (probs >= 0).all()

    def test_softmax_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        p1 = F.softmax(Tensor(x)).numpy()
        p2 = F.softmax(Tensor(x + 100.0)).numpy()
        np.testing.assert_allclose(p1, p2, atol=1e-6)

    def test_log_softmax_stable_at_large_logits(self):
        x = Tensor(np.array([[1000.0, 0.0]]))
        out = F.log_softmax(x).numpy()
        assert np.isfinite(out).all()

    def test_log_softmax_gradcheck(self, rng):
        x = tensor64(rng.standard_normal((3, 4)))
        assert_gradcheck(lambda: (F.log_softmax(x) ** 2).sum(), x)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((6, 4))
        targets = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_cross_entropy_gradcheck(self, rng):
        logits = tensor64(rng.standard_normal((5, 3)))
        targets = rng.integers(0, 3, size=5)
        assert_gradcheck(lambda: F.cross_entropy(logits, targets), logits)

    def test_cross_entropy_shape_checks(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(5, dtype=int))

    def test_nll_matches_cross_entropy(self, rng):
        logits = rng.standard_normal((4, 3))
        targets = rng.integers(0, 3, size=4)
        ce = F.cross_entropy(Tensor(logits), targets).item()
        nll = F.nll_loss(F.log_softmax(Tensor(logits)), targets).item()
        assert ce == pytest.approx(nll, rel=1e-5)

    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0])).item()
        assert loss == pytest.approx(2.5)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ShapeError):
            F.mse_loss(Tensor([1.0]), Tensor([1.0, 2.0]))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.02)

    def test_zeroed_fraction(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        zero_fraction = (out.numpy() == 0).mean()
        assert zero_fraction == pytest.approx(0.3, abs=0.02)

    def test_invalid_probability(self, rng):
        with pytest.raises(ShapeError):
            F.dropout(Tensor([1.0]), 1.0, training=True, rng=rng)


class TestNormalisation:
    def test_lrn_reduces_magnitude(self, rng):
        x = Tensor(np.abs(rng.standard_normal((1, 8, 4, 4))) + 1.0)
        out = F.local_response_norm(x)
        assert (np.abs(out.numpy()) <= np.abs(x.numpy())).all()

    def test_lrn_gradcheck(self, rng):
        x = tensor64(rng.standard_normal((1, 6, 3, 3)))
        assert_gradcheck(lambda: (F.local_response_norm(x, size=3) ** 2).sum(), x)

    def test_lrn_requires_nchw(self):
        with pytest.raises(ShapeError):
            F.local_response_norm(Tensor(np.zeros((3, 4))))

    def test_batch_norm_normalises_training_batch(self, rng):
        x = Tensor(rng.standard_normal((8, 3, 5, 5)).astype(np.float64) * 4 + 2)
        gamma = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        beta = Tensor(np.zeros(3, dtype=np.float64), requires_grad=True)
        mean = np.zeros(3)
        var = np.ones(3)
        out = F.batch_norm2d(x, gamma, beta, mean, var, training=True)
        np.testing.assert_allclose(out.numpy().mean(axis=(0, 2, 3)), 0, atol=1e-6)
        np.testing.assert_allclose(out.numpy().std(axis=(0, 2, 3)), 1, atol=1e-4)

    def test_batch_norm_updates_running_stats(self, rng):
        x = Tensor(rng.standard_normal((8, 2, 4, 4)) + 5.0)
        gamma = Tensor(np.ones(2), requires_grad=True)
        beta = Tensor(np.zeros(2), requires_grad=True)
        mean = np.zeros(2, dtype=np.float32)
        var = np.ones(2, dtype=np.float32)
        F.batch_norm2d(x, gamma, beta, mean, var, training=True, momentum=0.5)
        assert (mean > 1.0).all()

    def test_batch_norm_eval_uses_running_stats(self, rng):
        x = Tensor(np.full((2, 1, 2, 2), 3.0))
        gamma = Tensor(np.ones(1), requires_grad=True)
        beta = Tensor(np.zeros(1), requires_grad=True)
        mean = np.array([3.0], dtype=np.float32)
        var = np.array([1.0], dtype=np.float32)
        out = F.batch_norm2d(x, gamma, beta, mean, var, training=False)
        np.testing.assert_allclose(out.numpy(), 0.0, atol=1e-3)
