"""Tests for optimisers and schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import SGD, Adam, CosineAnnealingLR, StepLR, Tensor, clip_grad_norm
from repro.nn.module import Parameter


def quadratic_descent(optimizer_factory, steps: int = 200) -> float:
    """Minimise ||p - target||^2 and return the final distance."""
    target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
    p = Parameter(np.zeros(3, dtype=np.float32))
    opt = optimizer_factory([p])
    for _ in range(steps):
        loss = ((p - Tensor(target)) ** 2).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float(np.abs(p.numpy() - target).max())


class TestSGD:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(lambda ps: SGD(ps, lr=0.1)) < 1e-3

    def test_momentum_converges(self):
        assert quadratic_descent(lambda ps: SGD(ps, lr=0.05, momentum=0.9)) < 1e-3

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.ones(4, dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        loss = (p * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert (p.numpy() < 1.0).all()

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        SGD([p], lr=0.1).step()  # p.grad is None; must not crash
        np.testing.assert_allclose(p.numpy(), 1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(lambda ps: Adam(ps, lr=0.1), steps=400) < 1e-2

    def test_first_step_magnitude_is_lr(self):
        # With bias correction the first Adam step is ~lr * sign(grad).
        p = Parameter(np.zeros(3, dtype=np.float32))
        opt = Adam([p], lr=0.01)
        loss = (p * Tensor(np.array([1.0, -1.0, 2.0], dtype=np.float32))).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        np.testing.assert_allclose(np.abs(p.numpy()), 0.01, rtol=1e-3)

    def test_weight_decay_applied(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        loss = (p * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert (p.numpy() < 1.0).all()


class TestSchedulers:
    def test_step_lr_decays(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-8)

    def test_cosine_monotone_decrease(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=8)
        previous = opt.lr
        for _ in range(8):
            sched.step()
            assert opt.lr <= previous + 1e-12
            previous = opt.lr

    def test_invalid_step_size(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ConfigurationError):
            StepLR(opt, step_size=0)


class TestClipGradNorm:
    def test_norm_reported(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 3.0, dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=100.0)
        assert norm == pytest.approx(6.0)
        np.testing.assert_allclose(p.grad, 3.0)  # under the cap: untouched

    def test_clipping_scales_down(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 3.0, dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        total = float(np.sqrt((p.grad**2).sum()))
        assert total == pytest.approx(1.0, rel=1e-5)

    def test_none_grads_ignored(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0
