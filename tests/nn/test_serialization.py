"""Tests for npz state-dict persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn import (
    Linear,
    Sequential,
    load_module,
    load_state_dict,
    save_module,
    save_state_dict,
)


def make_model(seed: int = 0) -> Sequential:
    return Sequential(("fc", Linear(4, 2, rng=np.random.default_rng(seed))))


class TestStateDictIO:
    def test_roundtrip(self, tmp_path):
        state = {"a": np.arange(4.0), "b.c": np.ones((2, 2))}
        path = save_state_dict(state, tmp_path / "state.npz")
        loaded = load_state_dict(path)
        assert set(loaded) == {"a", "b.c"}
        np.testing.assert_allclose(loaded["a"], state["a"])

    def test_extension_appended(self, tmp_path):
        path = save_state_dict({"x": np.zeros(1)}, tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_state_dict(tmp_path / "nope.npz")

    def test_parent_dirs_created(self, tmp_path):
        path = save_state_dict({"x": np.zeros(1)}, tmp_path / "deep" / "dir" / "w.npz")
        assert path.exists()


class TestModuleIO:
    def test_module_roundtrip(self, tmp_path):
        source = make_model(seed=1)
        target = make_model(seed=2)
        path = save_module(source, tmp_path / "model.npz")
        load_module(target, path)
        np.testing.assert_allclose(
            target["fc"].weight.numpy(), source["fc"].weight.numpy()
        )

    def test_loaded_model_same_outputs(self, tmp_path, rng):
        from repro.nn import Tensor

        source = make_model(seed=1)
        target = make_model(seed=2)
        load_module(target, save_module(source, tmp_path / "m.npz"))
        x = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
        np.testing.assert_allclose(source(x).numpy(), target(x).numpy(), rtol=1e-6)
