"""Unit tests for the autograd Tensor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GradientError, ShapeError
from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    ones,
    stack,
    unbroadcast,
    zeros,
)
from tests.helpers import assert_gradcheck, tensor64


class TestConstruction:
    def test_default_dtype_is_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_int_input_cast_to_float(self):
        t = Tensor(np.arange(4))
        assert t.dtype == np.float32

    def test_shape_ndim_size(self):
        t = zeros((2, 3, 4))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_repr_mentions_grad(self):
        t = Tensor([1.0], requires_grad=True, name="noise")
        assert "requires_grad" in repr(t)
        assert "noise" in repr(t)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_item_on_vector_raises(self):
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_len(self):
        assert len(ones((5, 2))) == 5


class TestArithmetic:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.numpy(), [4.0, 6.0])

    def test_radd_scalar(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.numpy(), [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).numpy(), [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).numpy(), [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([2.0]) * 3.0).numpy(), [6.0])
        np.testing.assert_allclose((Tensor([6.0]) / 3.0).numpy(), [2.0])
        np.testing.assert_allclose((3.0 / Tensor([6.0])).numpy(), [0.5])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).numpy(), [-1.0, 2.0])

    def test_pow_scalar_only(self):
        with pytest.raises(ShapeError):
            Tensor([1.0]) ** Tensor([2.0])  # type: ignore[operator]

    def test_matmul_shape_check(self):
        with pytest.raises(ShapeError):
            Tensor(np.zeros((2, 3, 4))).matmul(Tensor(np.zeros((4, 2))))


class TestBackward:
    def test_backward_requires_grad(self):
        with pytest.raises(GradientError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            (t * 2).backward()

    def test_backward_with_explicit_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3).backward(np.array([1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(t.grad, [3.0, 3.0])

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_accumulation(self):
        # y = x*x + x*x must give dy/dx = 4x, exercising shared subgraphs.
        x = tensor64([3.0])
        a = x * x
        (a + a).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_reused_tensor_in_two_ops(self):
        x = tensor64([2.0])
        y = (x * 3) + (x * 5)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_detach_stops_gradient(self):
        x = tensor64([2.0])
        y = (x.detach() * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [2.0])


class TestBroadcasting:
    def test_unbroadcast_prepended_axes(self):
        grad = np.ones((4, 3))
        reduced = unbroadcast(grad, (3,))
        np.testing.assert_allclose(reduced, [4.0, 4.0, 4.0])

    def test_unbroadcast_stretched_axes(self):
        grad = np.ones((4, 3))
        reduced = unbroadcast(grad, (4, 1))
        np.testing.assert_allclose(reduced, np.full((4, 1), 3.0))

    def test_unbroadcast_incompatible_raises(self):
        with pytest.raises(ShapeError):
            unbroadcast(np.ones((4, 3)), (2,))

    def test_broadcast_add_gradients(self):
        a = tensor64(np.ones((2, 3)))
        b = tensor64(np.ones((3,)))
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_broadcast_mul_gradcheck(self, rng):
        a = tensor64(rng.standard_normal((2, 1, 3)))
        b = tensor64(rng.standard_normal((4, 3)))
        assert_gradcheck(lambda: (a * b).sum(), a)
        assert_gradcheck(lambda: (a * b).sum(), b)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "op",
        [
            lambda t: t.exp(),
            lambda t: (t + 3.0).log(),
            lambda t: (t + 3.0).sqrt(),
            lambda t: t.tanh(),
            lambda t: t.sigmoid(),
            lambda t: t.square(),
            lambda t: t * t * t,
            lambda t: (t * 2.0 + 1.0) ** 3,
        ],
        ids=["exp", "log", "sqrt", "tanh", "sigmoid", "square", "cube", "pow"],
    )
    def test_gradcheck_elementwise(self, rng, op):
        t = tensor64(rng.uniform(-1.0, 1.0, size=(3, 4)))
        assert_gradcheck(lambda: op(t).sum(), t)

    def test_abs_gradient_away_from_zero(self, rng):
        t = tensor64(rng.uniform(0.5, 1.5, size=(5,)) * rng.choice([-1, 1], size=5))
        assert_gradcheck(lambda: t.abs().sum(), t)

    def test_relu_masks_negative(self):
        t = tensor64([-1.0, 2.0])
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0])

    def test_clip_gradient_zero_outside(self):
        t = tensor64([-2.0, 0.5, 2.0])
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        t = tensor64(rng.standard_normal((2, 3, 4)))
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        assert_gradcheck(lambda: (t.sum(axis=1, keepdims=True) ** 2).sum(), t)

    def test_sum_tuple_axis(self, rng):
        t = tensor64(rng.standard_normal((2, 3, 4)))
        assert t.sum(axis=(0, 2)).shape == (3,)
        assert_gradcheck(lambda: (t.sum(axis=(0, 2)) ** 2).sum(), t)

    def test_mean_matches_numpy(self, rng):
        data = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            Tensor(data).mean(axis=0).numpy(), data.mean(axis=0), rtol=1e-6
        )

    def test_mean_gradcheck(self, rng):
        t = tensor64(rng.standard_normal((4, 3)))
        assert_gradcheck(lambda: (t.mean(axis=0) ** 2).sum(), t)

    def test_var_matches_numpy(self, rng):
        data = rng.standard_normal((6, 3)).astype(np.float64)
        np.testing.assert_allclose(
            Tensor(data).var(axis=0).numpy(), data.var(axis=0), rtol=1e-6, atol=1e-9
        )

    def test_max_gradient_routes_to_argmax(self):
        t = tensor64([[1.0, 5.0], [7.0, 2.0]])
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        t = tensor64([[2.0, 2.0]])
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self, rng):
        t = tensor64(rng.standard_normal((2, 6)))
        assert_gradcheck(lambda: (t.reshape(3, 4) ** 2).sum(), t)

    def test_reshape_tuple_argument(self):
        t = Tensor(np.zeros((2, 6)))
        assert t.reshape((3, 4)).shape == (3, 4)

    def test_flatten_batch(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.flatten_batch().shape == (2, 12)

    def test_transpose_gradcheck(self, rng):
        t = tensor64(rng.standard_normal((2, 3, 4)))
        assert_gradcheck(lambda: (t.transpose(2, 0, 1) ** 2).sum(), t)

    def test_t_property(self, rng):
        data = rng.standard_normal((2, 3))
        np.testing.assert_allclose(Tensor(data).T.numpy(), data.T)

    def test_getitem_gradient_scatters(self):
        t = tensor64([1.0, 2.0, 3.0])
        t[1:].sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0])

    def test_getitem_fancy_index_accumulates(self):
        t = tensor64([1.0, 2.0])
        t[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 1.0])

    def test_pad2d_shape_and_grad(self, rng):
        t = tensor64(rng.standard_normal((1, 1, 2, 2)))
        padded = t.pad2d(1)
        assert padded.shape == (1, 1, 4, 4)
        assert_gradcheck(lambda: (t.pad2d(1) ** 2).sum(), t)

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert t.pad2d(0) is t


class TestMatmul:
    def test_matmul_gradcheck(self, rng):
        a = tensor64(rng.standard_normal((3, 4)))
        b = tensor64(rng.standard_normal((4, 2)))
        assert_gradcheck(lambda: (a @ b).sum(), a)
        assert_gradcheck(lambda: (a @ b).sum(), b)

    def test_matmul_value(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b, rtol=1e-6)


class TestConcatenateStack:
    def test_concatenate_values(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((1, 3))
        out = concatenate([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.numpy(), np.concatenate([a, b]), rtol=1e-6)

    def test_concatenate_gradients(self):
        a = tensor64([[1.0], [2.0]])
        b = tensor64([[3.0]])
        (concatenate([a, b], axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [[2.0], [2.0]])
        np.testing.assert_allclose(b.grad, [[2.0]])

    def test_stack_gradients(self):
        a, b = tensor64([1.0, 2.0]), tensor64([3.0, 4.0])
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()
