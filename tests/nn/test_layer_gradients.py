"""Systematic gradient verification of every layer via the public
``gradcheck`` utility — analytic backward vs central differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    gradcheck,
    gradcheck_all,
)


def promote(module):
    """Cast a module's parameters to float64 for tight numeric checks."""
    for parameter in module.parameters():
        parameter.data = parameter.data.astype(np.float64)
    return module


def feed(shape, seed=0):
    rng = np.random.default_rng(seed)
    # Offset from zero so ReLU/pool kinks don't sit on the FD step.
    return Tensor(rng.normal(0.3, 1.0, size=shape), requires_grad=True)


class TestInputGradients:
    """d(output)/d(input) for each layer, input as the checked parameter."""

    def test_linear(self, rng):
        layer = promote(Linear(5, 4, rng=rng))
        x = feed((3, 5))
        assert gradcheck(lambda t: layer(t).sum(), x).passed

    def test_conv2d(self, rng):
        layer = promote(Conv2d(2, 3, 3, padding=1, rng=rng))
        x = feed((2, 2, 5, 5))
        assert gradcheck(lambda t: (layer(t) * layer(t)).sum(), x).passed

    def test_conv2d_strided(self, rng):
        layer = promote(Conv2d(1, 2, 3, stride=2, rng=rng))
        x = feed((1, 1, 7, 7))
        assert gradcheck(lambda t: layer(t).sum(), x).passed

    def test_maxpool(self):
        layer = MaxPool2d(2, 2)
        x = feed((2, 1, 4, 4))
        assert gradcheck(lambda t: (layer(t) * layer(t)).sum(), x).passed

    def test_avgpool(self):
        layer = AvgPool2d(2, 2)
        x = feed((2, 1, 4, 4))
        assert gradcheck(lambda t: (layer(t) * layer(t)).sum(), x).passed

    def test_relu(self):
        x = feed((4, 6))
        assert gradcheck(lambda t: (ReLU()(t) * ReLU()(t)).sum(), x).passed

    def test_tanh(self):
        x = feed((4, 6))
        assert gradcheck(lambda t: Tanh()(t).sum(), x).passed

    def test_sigmoid(self):
        x = feed((4, 6))
        assert gradcheck(lambda t: (Sigmoid()(t) * Sigmoid()(t)).sum(), x).passed

    def test_flatten(self):
        x = feed((2, 3, 2, 2))
        assert gradcheck(lambda t: (Flatten()(t) * Flatten()(t)).sum(), x).passed

    def test_local_response_norm(self):
        layer = LocalResponseNorm(size=3)
        x = feed((2, 4, 3, 3))
        assert gradcheck(lambda t: (layer(t) * layer(t)).sum(), x).passed

    def test_batchnorm_train_mode(self, rng):
        layer = promote(BatchNorm2d(3))
        layer.train()
        x = feed((4, 3, 2, 2))
        assert gradcheck(lambda t: (layer(t) * layer(t)).sum(), x).passed

    def test_batchnorm_eval_mode(self, rng):
        layer = promote(BatchNorm2d(3))
        layer.train()
        warm = feed((8, 3, 2, 2), seed=3)
        layer(warm)  # populate running statistics
        layer.eval()
        x = feed((4, 3, 2, 2))
        assert gradcheck(lambda t: (layer(t) * layer(t)).sum(), x).passed


class TestParameterGradients:
    """d(output)/d(weights) for the parameterised layers."""

    def test_linear_parameters(self, rng):
        layer = promote(Linear(4, 3, rng=rng))
        x = Tensor(np.random.default_rng(1).normal(size=(6, 4)))
        results = gradcheck_all(
            lambda: (layer(x) * layer(x)).sum(), list(layer.parameters())
        )
        assert all(r.passed for r in results.values())

    def test_conv_parameters(self, rng):
        layer = promote(Conv2d(2, 2, 3, padding=1, rng=rng))
        x = Tensor(np.random.default_rng(2).normal(size=(2, 2, 4, 4)))
        results = gradcheck_all(
            lambda: (layer(x) * layer(x)).sum(), list(layer.parameters())
        )
        assert all(r.passed for r in results.values())

    def test_batchnorm_parameters(self, rng):
        layer = promote(BatchNorm2d(2))
        layer.train()
        x = Tensor(np.random.default_rng(3).normal(size=(5, 2, 3, 3)))
        results = gradcheck_all(
            lambda: (layer(x) * layer(x)).sum(), list(layer.parameters())
        )
        assert all(r.passed for r in results.values())

    def test_deep_stack_end_to_end(self, rng):
        model = promote(
            Sequential(
                Conv2d(1, 2, 3, rng=rng),
                ReLU(),
                MaxPool2d(2, 2),
                Flatten(),
                Linear(2 * 2 * 2, 3, rng=rng),
            )
        )
        x = Tensor(np.random.default_rng(4).normal(0.3, 1.0, size=(2, 1, 6, 6)))
        results = gradcheck_all(
            lambda: (model(x) * model(x)).sum(), list(model.parameters())
        )
        assert all(r.passed for r in results.values())


class TestNoisePathGradient:
    """The paper's central derivative: d loss / d noise through R only."""

    def test_additive_noise_gradient(self, rng):
        remote = promote(
            Sequential(Flatten(), Linear(8, 4, rng=rng), ReLU(), Linear(4, 3, rng=rng))
        )
        activations = Tensor(np.random.default_rng(5).normal(size=(3, 2, 2, 2)))
        noise = Tensor(
            np.random.default_rng(6).normal(size=(1, 2, 2, 2)), requires_grad=True
        )
        result = gradcheck(
            lambda n: (remote(activations + n) * remote(activations + n)).sum(),
            noise,
        )
        assert result.passed

    def test_noise_gradient_ignores_local_half(self, rng):
        """∂y/∂n must not involve L(x): gradients w.r.t. the cached
        activations and the noise coincide element-wise up to the batch
        sum (paper §2.1)."""
        remote = promote(Sequential(Flatten(), Linear(4, 2, rng=rng)))
        activations = Tensor(
            np.random.default_rng(7).normal(size=(4, 1, 2, 2)), requires_grad=True
        )
        noise = Tensor(np.zeros((1, 1, 2, 2)), requires_grad=True)
        out = remote(activations + noise).sum()
        out.backward()
        np.testing.assert_allclose(
            noise.grad.reshape(-1),
            activations.grad.sum(axis=0).reshape(-1),
            rtol=1e-10,
        )
