"""Tests for the layer library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 3, rng=rng)
        assert layer(Tensor(rng.standard_normal((5, 8)))).shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_deterministic_init_with_seed(self):
        a = Linear(4, 2, rng=np.random.default_rng(7))
        b = Linear(4, 2, rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.weight.numpy(), b.weight.numpy())

    def test_zero_input_gives_bias(self, rng):
        layer = Linear(4, 2, rng=rng)
        out = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(out.numpy()[0], layer.bias.numpy(), rtol=1e-6)


class TestConv2dLayer:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_parameter_count(self, rng):
        layer = Conv2d(3, 8, 5, rng=rng)
        assert layer.num_parameters() == 8 * 3 * 5 * 5 + 8

    def test_repr_contains_geometry(self, rng):
        assert "k=(3, 3)" in repr(Conv2d(1, 1, 3, rng=rng))


class TestPoolingLayers:
    def test_max_pool_shape(self, rng):
        assert MaxPool2d(2)(Tensor(rng.standard_normal((1, 2, 8, 8)))).shape == (
            1,
            2,
            4,
            4,
        )

    def test_avg_pool_shape(self, rng):
        assert AvgPool2d(2)(Tensor(rng.standard_normal((1, 2, 8, 8)))).shape == (
            1,
            2,
            4,
            4,
        )

    def test_global_avg_pool(self, rng):
        out = GlobalAvgPool2d()(Tensor(np.ones((2, 3, 4, 4))))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.numpy(), 1.0)

    def test_pools_have_no_parameters(self):
        assert MaxPool2d(2).num_parameters() == 0


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, Tanh, Sigmoid])
    def test_shapes_preserved(self, rng, layer_cls):
        x = Tensor(rng.standard_normal((3, 4)))
        assert layer_cls()(x).shape == (3, 4)

    def test_relu_clamps(self):
        out = ReLU()(Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.numpy(), [0.0, 2.0])

    def test_sigmoid_range(self, rng):
        out = Sigmoid()(Tensor(rng.standard_normal(100) * 10)).numpy()
        assert ((out > 0) & (out < 1)).all()


class TestDropoutLayer:
    def test_train_vs_eval(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((10, 10)))
        train_out = layer(x)
        layer.eval()
        eval_out = layer(x)
        assert (train_out.numpy() == 0).any()
        np.testing.assert_allclose(eval_out.numpy(), 1.0)


class TestBatchNormLayer:
    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_eval_after_training_is_stable(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.standard_normal((16, 2, 4, 4)) * 3 + 1)
        for _ in range(20):
            bn(x)
        bn.eval()
        out = bn(x).numpy()
        assert abs(out.mean()) < 0.5

    def test_lrn_layer_forward(self, rng):
        lrn = LocalResponseNorm(size=5)
        x = Tensor(rng.standard_normal((1, 8, 3, 3)))
        assert lrn(x).shape == (1, 8, 3, 3)


class TestSequential:
    def test_positional_autonaming(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        assert model.layer_names() == ["0", "1", "2"]

    def test_named_layers(self, rng):
        model = Sequential(("fc1", Linear(4, 8, rng=rng)), ("act", ReLU()))
        assert model.layer_names() == ["fc1", "act"]
        assert isinstance(model["fc1"], Linear)

    def test_duplicate_names_rejected(self, rng):
        with pytest.raises(ValueError):
            Sequential(("a", ReLU()), ("a", ReLU()))

    def test_forward_composition(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU())
        x = Tensor(rng.standard_normal((2, 4)))
        manual = model[1](model[0](x))
        np.testing.assert_allclose(model(x).numpy(), manual.numpy())

    def test_slice_shares_parameters(self, rng):
        model = Sequential(("fc1", Linear(4, 4, rng=rng)), ("fc2", Linear(4, 2, rng=rng)))
        head = model.slice(0, 1)
        assert head["fc1"].weight is model["fc1"].weight

    def test_len_and_iter(self, rng):
        model = Sequential(ReLU(), ReLU())
        assert len(model) == 2
        assert len(list(model)) == 2

    def test_train_eval_propagates(self, rng):
        model = Sequential(("drop", Dropout(0.5, rng=rng)))
        model.eval()
        assert not model["drop"].training
        model.train()
        assert model["drop"].training

    def test_cnn_pipeline_shapes(self, rng):
        model = Sequential(
            ("conv0", Conv2d(1, 4, 3, padding=1, rng=rng)),
            ("relu0", ReLU()),
            ("pool0", MaxPool2d(2)),
            ("flatten", Flatten()),
            ("fc", Linear(4 * 4 * 4, 10, rng=rng)),
        )
        out = model(Tensor(rng.standard_normal((2, 1, 8, 8))))
        assert out.shape == (2, 10)
