"""Test package."""
