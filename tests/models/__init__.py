"""Test package."""
