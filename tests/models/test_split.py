"""Tests for model splitting — the core of the edge/cloud partition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import build_model
from repro.nn import Tensor, no_grad


@pytest.fixture()
def lenet():
    return build_model("lenet", np.random.default_rng(0), width=0.25).eval()


class TestSplit:
    def test_split_composition_equals_full_forward(self, lenet, rng):
        # R(L(x)) must equal f(x) exactly — Shredder never alters the model.
        x = Tensor(rng.standard_normal((3, 1, 28, 28)).astype(np.float32))
        with no_grad():
            full = lenet(x).numpy()
            for cut in lenet.cut_names():
                local, remote = lenet.split(cut)
                composed = remote(local(x)).numpy()
                np.testing.assert_allclose(composed, full, rtol=1e-5, atol=1e-6)

    def test_split_partitions_all_layers(self, lenet):
        local, remote = lenet.split("conv1")
        assert len(local) + len(remote) == len(lenet.net)

    def test_split_shares_weights(self, lenet):
        local, _ = lenet.split("conv0")
        assert local["conv0"].weight is lenet.net["conv0"].weight

    def test_local_ends_at_block_boundary(self, lenet):
        local, _ = lenet.split("conv0")
        assert local.layer_names()[-1] == "pool0"

    def test_unknown_cut_raises(self, lenet):
        with pytest.raises(ModelError):
            lenet.split("conv99")

    def test_cut_point_metadata(self, lenet):
        point = lenet.cut_point("conv1")
        assert point.conv_index == 1
        assert point.name == "conv1"

    def test_activation_shape_batch_dimension(self, lenet):
        assert lenet.activation_shape("conv0", batch=5)[0] == 5

    def test_activation_shape_restores_training_mode(self, lenet):
        lenet.train()
        lenet.activation_shape("conv0")
        assert lenet.training
        lenet.eval()

    def test_remote_accepts_noisy_activation(self, lenet, rng):
        # Injecting additive noise between the halves must flow through.
        x = Tensor(rng.standard_normal((2, 1, 28, 28)).astype(np.float32))
        local, remote = lenet.split("conv2")
        with no_grad():
            activation = local(x)
            noise = Tensor(
                rng.laplace(0, 1.0, size=activation.shape).astype(np.float32)
            )
            out = remote(activation + noise)
        assert out.shape == (2, 10)
        assert np.isfinite(out.numpy()).all()
