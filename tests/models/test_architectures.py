"""Architecture tests for the four backbones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import build_model, model_names
from repro.nn import Tensor

EXPECTED_CUTS = {
    "lenet": ["conv0", "conv1", "conv2"],
    "cifar": ["conv0", "conv1", "conv2", "conv3", "conv4"],
    "svhn": ["conv0", "conv1", "conv2", "conv3", "conv4", "conv5", "conv6"],
    "alexnet": ["conv0", "conv1", "conv2", "conv3", "conv4"],
}

EXPECTED_INPUTS = {
    "lenet": (1, 28, 28),
    "cifar": (3, 32, 32),
    "svhn": (3, 32, 32),
    "alexnet": (3, 64, 64),
}


def tiny_model(name: str):
    return build_model(name, np.random.default_rng(0), width=0.25)


class TestRegistry:
    def test_model_names(self):
        assert model_names() == ["alexnet", "cifar", "lenet", "svhn"]

    def test_unknown_model(self):
        with pytest.raises(ModelError):
            build_model("resnet", np.random.default_rng(0))


@pytest.mark.parametrize("name", sorted(EXPECTED_CUTS))
class TestPerModel:
    def test_cut_names(self, name):
        assert tiny_model(name).cut_names() == EXPECTED_CUTS[name]

    def test_input_shape(self, name):
        assert tiny_model(name).input_shape == EXPECTED_INPUTS[name]

    def test_forward_shape(self, name):
        model = tiny_model(name).eval()
        x = Tensor(np.zeros((2, *model.input_shape), dtype=np.float32))
        assert model(x).shape == (2, model.num_classes)

    def test_last_conv_cut_is_deepest(self, name):
        model = tiny_model(name)
        assert model.last_conv_cut() == EXPECTED_CUTS[name][-1]

    def test_activation_shapes_defined_at_every_cut(self, name):
        model = tiny_model(name).eval()
        for cut in model.cut_names():
            shape = model.activation_shape(cut)
            assert len(shape) == 4 and shape[0] == 1
            assert all(dim > 0 for dim in shape)

    def test_deeper_cuts_do_not_grow_spatially(self, name):
        model = tiny_model(name).eval()
        sizes = [model.activation_shape(cut)[2] for cut in model.cut_names()]
        assert sizes == sorted(sizes, reverse=True)

    def test_width_scales_parameters(self, name):
        small = build_model(name, np.random.default_rng(0), width=0.25)
        large = build_model(name, np.random.default_rng(0), width=0.5)
        assert large.num_parameters() > small.num_parameters()


class TestAlexNetSpecifics:
    def test_twenty_classes(self):
        assert tiny_model("alexnet").num_classes == 20

    def test_has_lrn_layers(self):
        model = tiny_model("alexnet")
        names = model.net.layer_names()
        assert "lrn0" in names and "lrn1" in names


class TestSvhnSpecifics:
    def test_conv6_output_smaller_than_predecessors(self):
        # The property section 3.4 exploits: conv6's bottleneck output is
        # much smaller, making it the natural cutting point.
        model = tiny_model("svhn").eval()
        sizes = {
            cut: int(np.prod(model.activation_shape(cut)[1:]))
            for cut in model.cut_names()
        }
        assert sizes["conv6"] < sizes["conv5"]
        assert sizes["conv6"] < sizes["conv4"]
        assert sizes["conv6"] <= min(sizes.values())
