"""Tests for backbone training and the pretrained zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, Config
from repro.datasets import SynthDigits, normalized_pair
from repro.errors import TrainingError
from repro.models import build_model, evaluate_accuracy, fit, get_pretrained
from repro.models.zoo import MODEL_DATASETS, _cache_path, default_width
from repro.nn import TensorDataset


@pytest.fixture()
def digit_splits():
    ds = SynthDigits(train_samples=120, test_samples=40, seed=5)
    train, test, _, _ = normalized_pair(ds.train_set(), ds.test_set())
    return train, test


class TestFit:
    def test_loss_decreases(self, digit_splits):
        train, test = digit_splits
        model = build_model("lenet", np.random.default_rng(0), width=0.5)
        history = fit(
            model, train, test, epochs=4, batch_size=32,
            rng=np.random.default_rng(1), lr=2e-3,
        )
        assert history.losses[-1] < history.losses[0]

    def test_history_lengths(self, digit_splits):
        train, test = digit_splits
        model = build_model("lenet", np.random.default_rng(0), width=0.25)
        history = fit(
            model, train, test, epochs=3, batch_size=32,
            rng=np.random.default_rng(1),
        )
        assert len(history.losses) == 3
        assert len(history.test_accuracies) == 3

    def test_sgd_optimizer(self, digit_splits):
        train, test = digit_splits
        model = build_model("lenet", np.random.default_rng(0), width=0.25)
        history = fit(
            model, train, test, epochs=2, batch_size=32,
            rng=np.random.default_rng(1), optimizer="sgd", lr=0.01,
        )
        assert len(history.losses) == 2

    def test_unknown_optimizer(self, digit_splits):
        train, test = digit_splits
        model = build_model("lenet", np.random.default_rng(0), width=0.25)
        with pytest.raises(TrainingError):
            fit(model, train, test, epochs=1, batch_size=32,
                rng=np.random.default_rng(1), optimizer="rmsprop")

    def test_final_test_accuracy_property(self, digit_splits):
        train, test = digit_splits
        model = build_model("lenet", np.random.default_rng(0), width=0.25)
        history = fit(model, train, test, epochs=1, batch_size=32,
                      rng=np.random.default_rng(1))
        assert history.final_test_accuracy == history.test_accuracies[-1]

    def test_empty_history_raises(self):
        from repro.models.train import TrainHistory

        with pytest.raises(TrainingError):
            TrainHistory().final_test_accuracy


class TestEvaluateAccuracy:
    def test_perfect_model_scores_one(self, rng):
        # A dataset the model trivially solves: label == argmax pixel block.
        images = np.zeros((20, 1, 2, 2), dtype=np.float32)
        labels = rng.integers(0, 2, size=20)
        images[np.arange(20), 0, 0, labels] = 1.0

        class Probe:
            training = False

            def train(self, mode=True):
                return self

            def eval(self):
                return self

            def __call__(self, x):
                from repro.nn import Tensor

                return Tensor(x.numpy()[:, 0, 0, :])

        accuracy = evaluate_accuracy(Probe(), TensorDataset(images, labels))
        assert accuracy == 1.0

    def test_empty_dataset_raises(self, lenet_bundle):
        empty = TensorDataset(np.zeros((0, 1, 28, 28), dtype=np.float32), np.zeros(0))
        with pytest.raises(TrainingError):
            evaluate_accuracy(lenet_bundle.model, empty)

    def test_eval_restores_training_mode(self, digit_splits, lenet_bundle):
        model = lenet_bundle.model
        model.train()
        evaluate_accuracy(model, digit_splits[1], batch_size=16)
        assert model.training
        model.eval()


class TestZoo:
    def test_pretrained_lenet_beats_chance_strongly(self, lenet_bundle):
        assert lenet_bundle.test_accuracy > 0.6

    def test_backbone_is_frozen_and_eval(self, lenet_bundle):
        model = lenet_bundle.model
        assert not model.training
        assert all(not p.requires_grad for p in model.parameters())

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = Config(scale=TINY.scaled(0.2))
        first = get_pretrained("lenet", config)
        assert first.history is not None  # trained fresh
        second = get_pretrained("lenet", config)
        assert second.history is None  # loaded from cache
        np.testing.assert_allclose(
            first.model.net["conv0"].weight.numpy(),
            second.model.net["conv0"].weight.numpy(),
        )

    def test_force_retrain_ignores_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = Config(scale=TINY.scaled(0.2))
        get_pretrained("lenet", config)
        again = get_pretrained("lenet", config, force_retrain=True)
        assert again.history is not None

    def test_cache_path_distinguishes_width(self):
        config = Config(scale=TINY)
        a = _cache_path("lenet", config.scale, config.seed, 0.25, 6)
        b = _cache_path("lenet", config.scale, config.seed, 0.5, 6)
        assert a != b

    def test_cache_path_distinguishes_epochs(self):
        config = Config(scale=TINY)
        a = _cache_path("lenet", config.scale, config.seed, 0.5, 6)
        b = _cache_path("lenet", config.scale, config.seed, 0.5, 12)
        assert a != b

    def test_default_width_known_scales(self):
        assert default_width(TINY) == 0.5
        assert default_width(TINY.scaled(0.5)) == 0.5  # derived scales inherit

    def test_model_dataset_mapping_complete(self):
        assert set(MODEL_DATASETS) == {"lenet", "cifar", "svhn", "alexnet"}

    def test_bundle_normalisation_stats_finite(self, lenet_bundle):
        assert np.isfinite(lenet_bundle.mean).all()
        assert np.isfinite(lenet_bundle.std).all()
        assert (lenet_bundle.std > 0).all()
